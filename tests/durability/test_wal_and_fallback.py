"""Unit tests for the WAL file format, fault injection at the file
layer, snapshot-corruption fallback, and crashes inside checkpoint."""

from __future__ import annotations

import os

import pytest

from repro import Database
from repro.errors import RecoveryError, SnapshotCorruptError, \
    WALCorruptError
from repro.durability.checkpoint import list_generations, snapshot_path, \
    wal_path
from repro.durability.format import pack_obj, unpack_obj, read_sections, \
    write_section
from repro.durability.snapshot import read_snapshot
from repro.durability.wal import WAL_MAGIC, WriteAheadLog, read_records

from tests.durability.faults import (
    FaultBudget,
    SimulatedCrash,
    faulting_opener,
)

URI = "doc.xml"
DOC = ("<bib><book><title>TCP/IP</title><price>65.95</price></book>"
       "<book><title>Data on the Web</title><price>39.95</price></book>"
       "</bib>")


# -- object encoding --------------------------------------------------------------


def test_pack_obj_round_trips_every_type():
    value = {
        "none": None, "true": True, "false": False,
        "int": -(2 ** 40), "float": 3.25, "str": "héllo",
        "bytes": b"\x00\xff", "list": [1, 2, 3],
        "mixed": ["a", 1, None, [2.5]],
        "tuple_key": {("a", "b"): 4},
        "empty": [], "nested": {"k": {"j": [()]}},
    }
    assert unpack_obj(pack_obj(value)) == value


def test_int_list_fast_path_preserves_types():
    packed = unpack_obj(pack_obj({"ints": [1, 2, 3], "tup": (1, 2)}))
    assert packed["ints"] == [1, 2, 3]
    assert isinstance(packed["ints"], list)
    assert packed["tup"] == (1, 2)
    assert isinstance(packed["tup"], tuple)


def test_section_crc_detects_flip(tmp_path):
    target = tmp_path / "sections.bin"
    with open(target, "wb") as out:
        write_section(out, "meta", pack_obj({"x": 1}))
    data = bytearray(target.read_bytes())
    data[-1] ^= 0x40
    with pytest.raises(SnapshotCorruptError):
        list(read_sections(bytes(data), 0))


# -- WAL format -------------------------------------------------------------------


def test_wal_truncates_torn_tail(tmp_path):
    path = tmp_path / "wal.log"
    wal, records = WriteAheadLog.open(path)
    assert records == []
    wal.append({"op": "insert", "n": 1})
    wal.append({"op": "insert", "n": 2})
    wal.close()

    _, _, boundaries = read_records(path)
    whole = path.read_bytes()
    # Tear the second record: everything between the two boundaries.
    for cut in range(boundaries[0], boundaries[1]):
        path.write_bytes(whole[:cut])
        reopened, survivors = WriteAheadLog.open(path)
        reopened.close()
        assert [r["n"] for r in survivors] == [1]
        assert path.stat().st_size == boundaries[0]  # tail gone
    # At the boundary itself both records survive.
    path.write_bytes(whole[:boundaries[1]])
    reopened, survivors = WriteAheadLog.open(path)
    reopened.close()
    assert [r["n"] for r in survivors] == [1, 2]


def test_wal_bad_magic_raises(tmp_path):
    path = tmp_path / "wal.log"
    path.write_bytes(b"NOTMAGIC" + b"junk")
    with pytest.raises(WALCorruptError):
        read_records(path)


def test_wal_torn_creation_restarts(tmp_path):
    path = tmp_path / "wal.log"
    path.write_bytes(WAL_MAGIC[:3])  # crash before the magic landed
    wal, records = WriteAheadLog.open(path)
    assert records == []
    wal.append({"op": "x"})
    wal.close()
    records2, _, _ = read_records(path)
    assert records2 == [{"op": "x"}]


def test_faulting_file_tears_append(tmp_path):
    path = tmp_path / "wal.log"
    wal, _ = WriteAheadLog.open(path)
    wal.append({"op": "keep"})
    wal.close()
    intact = path.stat().st_size

    budget = FaultBudget(fail_after_bytes=5)
    wal = WriteAheadLog(path, opener=faulting_opener(budget))
    with pytest.raises(SimulatedCrash):
        wal.append({"op": "torn"})
    # 5 extra bytes hit the disk; reopening truncates them away.
    assert path.stat().st_size == intact + 5
    reopened, records = WriteAheadLog.open(path)
    reopened.close()
    assert [r["op"] for r in records] == ["keep"]
    assert path.stat().st_size == intact


# -- snapshot corruption fallback --------------------------------------------------


def _flip_byte(path, offset_from_end: int = 20) -> None:
    data = bytearray(path.read_bytes())
    data[len(data) - offset_from_end] ^= 0xFF
    path.write_bytes(bytes(data))


def test_corrupt_snapshot_falls_back_to_previous_generation(tmp_path):
    live = tmp_path / "db"
    db = Database.open(live, checkpoint_every=0)
    db.load(DOC, uri=URI)                       # snapshot gen 1
    db.insert("/bib", "<book><title>New</title><price>1</price></book>")
    db.checkpoint()                             # snapshot gen 2
    db.delete("/bib/book[title = 'New']")       # logged in wal gen 2
    db.close()
    generations = list_generations(live)
    assert generations["snapshots"] == [1, 2]

    # A flipped byte inside generation 2 fails its section CRC ...
    _flip_byte(snapshot_path(live, 2))
    with pytest.raises(SnapshotCorruptError):
        read_snapshot(snapshot_path(live, 2))

    # ... so recovery falls back to generation 1 and replays both WALs
    # (the insert from wal 1 and the delete from wal 2).
    recovered = Database.open(live, debug_checks=True)
    try:
        report = recovered.durability.last_recovery
        assert report["snapshot_generation"] == 1
        assert report["corrupt_generations"] == [2]
        assert report["wal_records_replayed"] == 2
        titles = recovered.query("/bib/book/title").values()
        assert titles == ["TCP/IP", "Data on the Web"]
        # The next checkpoint must not collide with the corrupt file.
        checkpoint = recovered.checkpoint()
        assert checkpoint["generation"] == 3
    finally:
        recovered.close()


def test_all_snapshots_corrupt_refuses_partial_recovery(tmp_path):
    live = tmp_path / "db"
    db = Database.open(live, checkpoint_every=2)
    db.load(DOC, uri=URI)
    for index in range(4):   # force pruning past generation 0
        db.insert("/bib", f"<extra{index}>x</extra{index}>")
    db.close()
    generations = list_generations(live)
    assert 0 not in generations["wals"]  # history pruned
    for generation in generations["snapshots"]:
        _flip_byte(snapshot_path(live, generation))
    with pytest.raises(RecoveryError):
        Database.open(live)


def test_unknown_wal_record_raises(tmp_path):
    live = tmp_path / "db"
    db = Database.open(live, checkpoint_every=0)
    db.load(DOC, uri=URI)
    db.close()
    wal, _ = WriteAheadLog.open(wal_path(live, 1))
    wal.append({"op": "mystery"})
    wal.close()
    with pytest.raises(RecoveryError):
        Database.open(live)


# -- crash inside checkpoint -------------------------------------------------------


def test_crash_mid_snapshot_write_keeps_previous_generation(tmp_path):
    live = tmp_path / "db"
    db = Database.open(live, checkpoint_every=0)
    db.load(DOC, uri=URI)
    db.insert("/bib", "<book><title>New</title><price>1</price></book>")
    db.close()

    # Re-open with a snapshot opener that dies after 100 bytes: the
    # checkpoint crashes before publication (no rename happens).
    budget = FaultBudget(fail_after_bytes=100)
    crashing = Database.open(live, checkpoint_every=0,
                             snapshot_opener=faulting_opener(budget))
    with pytest.raises(SimulatedCrash):
        crashing.checkpoint()

    leftovers = [p.name for p in live.iterdir()
                 if p.name.endswith(".snap.tmp")]
    assert leftovers  # the torn temp file is lying around ...
    assert list_generations(live)["snapshots"] == [1]

    recovered = Database.open(live, debug_checks=True)
    try:
        # ... recovery ignores it and state is intact.
        titles = recovered.query("/bib/book/title").values()
        assert titles == ["TCP/IP", "Data on the Web", "New"]
        # The next successful checkpoint cleans the temp file up.
        recovered.checkpoint()
        assert not [p for p in live.iterdir()
                    if p.name.endswith(".snap.tmp")]
    finally:
        recovered.close()


def test_dropped_fsync_is_observable(tmp_path):
    """drop_fsync hands os.fsync a throwaway descriptor — the append
    still lands via flush (this harness can't drop page cache), but the
    budget records that durability was *not* guaranteed."""
    budget = FaultBudget(drop_fsync=True)
    wal = WriteAheadLog(tmp_path / "wal.log",
                        opener=faulting_opener(budget))
    wal.append({"op": "maybe"})
    wal.close()
    assert budget.drop_fsync
    records, _, _ = read_records(tmp_path / "wal.log")
    assert records == [{"op": "maybe"}]


# -- report plumbing ---------------------------------------------------------------


def test_storage_report_includes_durability(tmp_path):
    db = Database.open(tmp_path / "db")
    db.load(DOC, uri=URI)
    report = db.storage_report(URI)
    assert report["durability"]["generation"] == 1
    assert report["durability"]["checkpoints_written"] == 1
    db.close()
    memory = Database()
    memory.load(DOC, uri=URI)
    assert "durability" not in memory.storage_report(URI)
    assert memory.durability_report() is None
    with pytest.raises(Exception):
        memory.checkpoint()


def test_hashseed_independence_of_snapshot_bytes(tmp_path):
    """Snapshot decoding is insensitive to dict iteration details: two
    loads of the same document recover identically (the CI durability
    job runs the whole suite under PYTHONHASHSEED=0 and 1)."""
    db = Database.open(tmp_path / "db")
    db.load(DOC, uri=URI)
    db.close()
    recovered = Database.open(tmp_path / "db", debug_checks=True)
    state = read_snapshot(snapshot_path(tmp_path / "db", 1))
    assert state["documents"][0]["header"]["uri"] == URI
    recovered.close()

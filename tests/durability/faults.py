"""Fault-injection plumbing for the durability tests.

:class:`FaultingFile` wraps a real file object and simulates the two
crash modes that matter for a WAL:

* **torn write** — after ``fail_after_bytes`` bytes have been written
  through the wrapper, every further ``write`` raises
  :class:`SimulatedCrash` *after* persisting only the prefix that fits
  (a short write, exactly what a power cut mid-``write(2)`` leaves);
* **lost fsync** — ``drop_fsync=True`` turns ``os.fsync`` into a no-op
  flush, so "durable" bytes can still sit in the (simulated) page
  cache when the crash happens.

:func:`faulting_opener` builds an injectable opener for
``Database.open(wal_opener=...)`` / ``snapshot_opener=...`` from one
shared :class:`FaultBudget`, so a test can say "crash the process after
the next N bytes of WAL traffic" and observe recovery.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["SimulatedCrash", "FaultBudget", "FaultingFile",
           "faulting_opener"]


class SimulatedCrash(RuntimeError):
    """Raised by a FaultingFile when its write budget is exhausted."""


class FaultBudget:
    """A mutable byte budget shared by every file a test opens."""

    def __init__(self, fail_after_bytes=None, drop_fsync: bool = False):
        self.remaining = fail_after_bytes  # None = unlimited
        self.drop_fsync = drop_fsync
        self.crashed = False

    def consume(self, want: int) -> int:
        """Bytes allowed for this write; mark crash on exhaustion."""
        if self.remaining is None:
            return want
        allowed = min(want, self.remaining)
        self.remaining -= allowed
        if allowed < want:
            self.crashed = True
        return allowed


class FaultingFile:
    """A binary file wrapper that dies after a byte budget runs out."""

    def __init__(self, path, mode: str, budget: FaultBudget):
        self._fh = open(path, mode)
        self._budget = budget
        self._null_fd = None

    def write(self, data: bytes) -> int:
        if self._budget.crashed:
            raise SimulatedCrash("process already crashed")
        allowed = self._budget.consume(len(data))
        if allowed:
            self._fh.write(data[:allowed])
        if allowed < len(data):
            # Persist the short prefix (the kernel had already accepted
            # it) and then die: exactly a torn write.
            self._fh.flush()
            self._fh.close()
            raise SimulatedCrash(
                f"simulated crash after {allowed} of {len(data)} bytes")
        return allowed

    def flush(self) -> None:
        if not self._fh.closed:
            self._fh.flush()

    def fileno(self) -> int:
        if self._budget.drop_fsync:
            # Hand out a throwaway scratch-file descriptor so the
            # caller's ``os.fsync`` succeeds without making anything
            # about *this* file durable.
            if self._null_fd is None:
                self._null_fd, scratch = tempfile.mkstemp()
                os.unlink(scratch)
            return self._null_fd
        return self._fh.fileno()

    def close(self) -> None:
        if self._null_fd is not None:
            os.close(self._null_fd)
            self._null_fd = None
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "FaultingFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._fh.closed


def faulting_opener(budget: FaultBudget):
    """An injectable ``(path, mode) -> file`` opener bound to one
    budget."""

    def opener(path: Path, mode: str) -> FaultingFile:
        return FaultingFile(path, mode, budget)

    return opener

"""Per-structure snapshot round-trip tests.

Every storage structure exports plain data through ``to_snapshot()`` and
rebuilds verbatim through ``from_snapshot()`` / ``restore()``.  These
tests push each one through the *real wire format*
(:func:`repro.durability.format.pack_obj` / :func:`unpack_obj`), so they
also pin the binary encoding's array fast paths (homogeneous int / str /
float lists) to exact round-trip semantics.

Covered per the durability spec: the BP bitvector, the tag index
(restored postings must alias the live interval records), the value
indexes **with live tombstones** and **after self-compaction**, document
statistics, and the empty-document / empty-database boundary cases.
"""

from __future__ import annotations

import random

import pytest

from repro.durability.format import pack_obj, unpack_obj
from repro.engine.database import Database
from repro.storage.bitvector import BitVector
from repro.storage.content import ContentStore
from repro.storage.stats import DocumentStatistics
from repro.storage.tagindex import TagIndex
from repro.storage.valueindex import ContentIndex

DOC = """<bib>
  <book year="1994"><title>TCP/IP</title><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title><price>39.95</price></book>
  <book year="1999"><title>Economics</title><price>29.95</price></book>
  <misc note="x"><!-- c --><?pi data?><empty/></misc>
</bib>"""


def _wire(state):
    """Push a to_snapshot() payload through the binary format."""
    return unpack_obj(pack_obj(state))


def _loaded_database() -> Database:
    database = Database(debug_checks=True)
    database.load(DOC, uri="bib.xml")
    return database


# -- bitvector ----------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("length", [0, 1, 63, 64, 65, 1000])
def test_bitvector_roundtrip(seed, length):
    rng = random.Random(seed * 1000 + length)
    bits = [rng.randint(0, 1) for _ in range(length)]
    vector = BitVector.from_bits(bits)
    restored = BitVector.from_snapshot(_wire(vector.to_snapshot()))
    assert len(restored) == length
    assert list(restored) == bits
    assert restored.ones == vector.ones
    for index in range(length):
        assert restored.rank1(index) == vector.rank1(index)
    for k in range(vector.ones):
        assert restored.select1(k) == vector.select1(k)
    for k in range(vector.zeros):
        assert restored.select0(k) == vector.select0(k)


def test_bitvector_roundtrip_from_live_document():
    database = _loaded_database()
    bits = database.document().succinct.bp.bits
    restored = BitVector.from_snapshot(_wire(bits.to_snapshot()))
    assert list(restored) == list(bits)
    assert restored.ones == bits.ones


# -- tag index ----------------------------------------------------------------


def test_tag_index_roundtrip_aliases_interval_records():
    database = _loaded_database()
    document = database.document()
    postings = _wire(document.tag_index.postings_snapshot())
    restored = TagIndex.restore(document.interval, postings)
    assert restored.postings_snapshot() == \
        document.tag_index.postings_snapshot()
    # The restored posting lists must reference the *same* record
    # objects as the interval store, so in-place relabelling after
    # future updates keeps the index current.
    for tag, pres in postings.items():
        for position, pre in enumerate(pres):
            assert restored._postings[tag][position] \
                is document.interval.nodes[pre]


# -- value indexes ------------------------------------------------------------


def test_value_index_roundtrip_with_live_tombstones():
    database = _loaded_database()
    database.delete("/bib/book[title = 'Economics']")
    document = database.document()
    for index in (document.value_index, document.numeric_index):
        assert document.succinct.content.dead_entries > 0
        store = ContentStore.from_snapshot(
            _wire(document.succinct.content.to_snapshot()))
        restored = ContentIndex.restore(store, _wire(index.to_snapshot()))
        assert restored.numeric == index.numeric
        assert restored.entries() == index.entries()
        assert restored.dead_entries == index.dead_entries
        assert restored._live_entries == index._live_entries
        assert restored.compactions == index.compactions
    assert database.query("//book[price = '65.95']/title").values() \
        == ["TCP/IP"]


def test_value_index_roundtrip_after_compaction():
    store = ContentStore()
    for owner in range(200):
        store.append(str(owner), owner)
    index = ContentIndex(store, numeric=True)
    # Tombstone enough entries to cross the self-compaction threshold
    # (dead > 64 and dead > live).
    for content_id in range(150):
        store.mark_dead(content_id)
    index.note_dead(150)
    assert index.compactions >= 1
    restored = ContentIndex.restore(
        ContentStore.from_snapshot(_wire(store.to_snapshot())),
        _wire(index.to_snapshot()))
    assert restored.entries() == index.entries()
    assert restored.compactions == index.compactions
    assert restored.dead_entries == index.dead_entries
    for owner in range(150, 200):
        assert restored.search(float(owner)) == [owner]


# -- statistics ---------------------------------------------------------------


def test_statistics_roundtrip():
    database = _loaded_database()
    database.insert("/bib", "<book year='2024'><title>New</title></book>")
    stats = database.document().statistics
    restored = DocumentStatistics.from_snapshot(_wire(stats.to_snapshot()))
    assert restored.node_count == stats.node_count
    assert restored.tag_counts == stats.tag_counts
    assert restored.edge_counts == stats.edge_counts
    assert restored.descendant_counts == stats.descendant_counts
    assert restored.depth_histogram == stats.depth_histogram
    assert restored.distinct_values == stats.distinct_values
    assert restored.max_depth == stats.max_depth
    assert restored.fragmented_value_tags == stats.fragmented_value_tags
    assert restored.generation == stats.generation
    # Tuple keys must come back as tuples, not lists.
    for key in restored.edge_counts:
        assert isinstance(key, tuple) and len(key) == 2


def test_statistics_roundtrip_empty_counters():
    database = Database()
    database.load("<r/>", uri="tiny.xml")
    stats = database.document().statistics
    restored = DocumentStatistics.from_snapshot(_wire(stats.to_snapshot()))
    assert restored.tag_counts == stats.tag_counts
    assert restored.distinct_values == stats.distinct_values
    assert restored.edge_counts == stats.edge_counts


# -- whole-database boundary cases --------------------------------------------


def test_empty_document_checkpoint_roundtrip(tmp_path):
    database = Database.open(tmp_path, checkpoint_every=0)
    database.load("<r/>", uri="tiny.xml")
    before = database.query("/r").values()
    database.close()
    recovered = Database.open(tmp_path, checkpoint_every=0,
                              debug_checks=True)
    assert list(recovered.documents) == ["tiny.xml"]
    assert recovered.query("/r").values() == before
    recovered.close()


def test_empty_database_checkpoint_roundtrip(tmp_path):
    database = Database.open(tmp_path, checkpoint_every=0)
    database.checkpoint()
    database.close()
    recovered = Database.open(tmp_path, checkpoint_every=0)
    assert recovered.documents == {}
    report = recovered.durability_report()["last_recovery"]
    assert report["snapshot_generation"] is not None
    assert report["wal_records_replayed"] == 0
    recovered.close()

"""Crash-injection property test: recovery at *every* WAL offset.

For each randomized schedule we

1. run a **twin** in-memory database through the ops, capturing the
   observable state (serialized tree + probe query answers) after every
   prefix;
2. run a durable database through the same ops (one checkpoint at
   load, every op WAL-logged), then enumerate every crash point of the
   op WAL: each record boundary *and* torn offsets inside each record;
3. for each crash point, materialise the directory a crash at that
   byte would leave (snapshot files intact, WAL truncated), reopen it
   with ``debug_checks=True`` (recovery replay is cross-checked against
   full rebuilds), and assert the recovered state equals the twin's
   state at the corresponding prefix — a torn record must roll back to
   the previous boundary, never surface partially.

The schedule count satisfies the acceptance bar (>= 200) and can be
raised via the ``DURABILITY_SCHEDULES`` environment variable.
"""

from __future__ import annotations

import os
import random
import shutil
from pathlib import Path

import pytest

from repro import Database
from repro.xml import model
from repro.xml.serializer import serialize
from repro.durability.wal import WAL_MAGIC, read_records

SCHEDULES = int(os.environ.get("DURABILITY_SCHEDULES", "200"))
OPS_PER_SCHEDULE = 3
URI = "doc.xml"

_VALUES = ["alpha", "beta", "7", "3.5", "omega", "42"]


# -- schedule generation ---------------------------------------------------------


def _elements(node, out):
    for child in node.children():
        if isinstance(child, model.Element):
            out.append(child)
            _elements(child, out)
    return out


def _make_document(rng: random.Random, counter: list[int]) -> str:
    parts = []
    for _ in range(rng.randint(2, 4)):
        tag = f"n{counter[0]}"
        counter[0] += 1
        parts.append(f"<{tag}>{rng.choice(_VALUES)}</{tag}>")
    return "<r>" + "".join(parts) + "</r>"


def _make_fragment(rng: random.Random, counter: list[int]) -> str:
    tag = f"n{counter[0]}"
    counter[0] += 1
    value = rng.choice(_VALUES)
    if rng.random() < 0.3:
        inner_tag = f"n{counter[0]}"
        counter[0] += 1
        inner = f"<{inner_tag}>{rng.choice(_VALUES)}</{inner_tag}>"
        return f"<{tag} a=\"{rng.choice(_VALUES)}\">{value}{inner}</{tag}>"
    return f"<{tag}>{value}</{tag}>"


def _generate_schedule(seed: int):
    """(document_xml, ops, probe_tags, expected_states).

    ``expected_states[i]`` is the twin's observable state after the
    first ``i`` ops (index 0 = right after load).
    """
    rng = random.Random(seed)
    counter = [0]
    document_xml = _make_document(rng, counter)
    twin = Database()
    twin.load(document_xml, uri=URI)

    ops = []
    probe_tags = set()
    while len(ops) < OPS_PER_SCHEDULE:
        tree = twin.document(URI).tree
        root = next(iter(tree.children()))
        elements = _elements(root, [root])
        deletable = [e for e in elements
                     if isinstance(e.parent, model.Element)]
        if deletable and rng.random() < 0.4:
            victim = rng.choice(deletable)
            op = ("delete", f"//{victim.tag}")
            twin.delete(op[1])
        else:
            parent = rng.choice(elements)
            fragment = _make_fragment(rng, counter)
            path = "/r" if parent is root else f"//{parent.tag}"
            op = ("insert", path, fragment)
            twin.insert(path, fragment)
        ops.append(op)

    # Probe everything any prefix ever contained.
    final_rng = random.Random(seed + 1)
    probe_tags = {f"n{i}" for i in
                  final_rng.sample(range(counter[0]),
                                   min(4, counter[0]))} | {"r"}

    # Re-run the twin from scratch capturing per-prefix states.
    twin = Database()
    twin.load(document_xml, uri=URI)
    states = [_observe(twin, probe_tags)]
    for op in ops:
        _apply(twin, op)
        states.append(_observe(twin, probe_tags))
    return document_xml, ops, sorted(probe_tags), states


def _apply(db: Database, op) -> None:
    if op[0] == "insert":
        db.insert(op[1], op[2])
    else:
        db.delete(op[1])


def _observe(db: Database, probe_tags) -> dict:
    state = {"xml": serialize(db.document(URI).tree)}
    for tag in sorted(probe_tags):
        result = db.query(f"//{tag}")
        state[tag] = (len(result), result.values())
    return state


# -- crash-point enumeration ------------------------------------------------------


def _crash_offsets(boundaries: list[int]):
    """(wal_byte_length, expected_prefix_index) pairs covering every
    record boundary plus torn offsets inside every record."""
    points = [(len(WAL_MAGIC), 0)]
    previous = len(WAL_MAGIC)
    for index, boundary in enumerate(boundaries):
        # Torn crashes inside record ``index`` roll back to prefix
        # ``index`` (the record is truncated away).
        torn = {previous + 1, (previous + boundary) // 2, boundary - 1}
        for offset in sorted(torn):
            if previous < offset < boundary:
                points.append((offset, index))
        points.append((boundary, index + 1))
        previous = boundary
    return points


def _materialise_crash(live: Path, crash: Path, wal_name: str,
                       offset: int) -> None:
    if crash.exists():
        shutil.rmtree(crash)
    crash.mkdir(parents=True)
    for entry in live.iterdir():
        if entry.name == wal_name:
            crash.joinpath(entry.name).write_bytes(
                entry.read_bytes()[:offset])
        else:
            shutil.copy2(entry, crash / entry.name)


# -- the property test ------------------------------------------------------------


@pytest.mark.parametrize("seed", range(SCHEDULES))
def test_recovery_matches_never_crashed_twin(seed, tmp_path):
    document_xml, ops, probe_tags, expected = _generate_schedule(seed)

    live = tmp_path / "live"
    db = Database.open(live, checkpoint_every=0)
    db.load(document_xml, uri=URI)
    for op in ops:
        _apply(db, op)
    db.close()

    # The load checkpointed into generation 1; every op is in its WAL.
    wal_name = "wal-00000001.log"
    records, _, boundaries = read_records(live / wal_name)
    assert len(records) == len(ops)

    crash = tmp_path / "crash"
    for offset, prefix in _crash_offsets(boundaries):
        _materialise_crash(live, crash, wal_name, offset)
        recovered = Database.open(crash, debug_checks=True)
        try:
            assert _observe(recovered, probe_tags) == expected[prefix], \
                f"seed={seed} crash at wal byte {offset} != prefix {prefix}"
        finally:
            recovered.close()


def test_reopen_after_clean_close(tmp_path):
    """No crash at all: close + reopen restores the final state."""
    document_xml, ops, probe_tags, expected = _generate_schedule(10_001)
    db = Database.open(tmp_path / "db")
    db.load(document_xml, uri=URI)
    for op in ops:
        _apply(db, op)
    final = _observe(db, probe_tags)
    db.close()
    assert final == expected[-1]

    again = Database.open(tmp_path / "db", debug_checks=True)
    try:
        assert _observe(again, probe_tags) == final
    finally:
        again.close()


def test_recovery_across_checkpoints(tmp_path):
    """Auto-checkpoints mid-schedule: crashing after the last op (torn
    nothing) still recovers the final state through snapshot + suffix
    replay, and old generations are pruned."""
    document_xml, ops, probe_tags, expected = _generate_schedule(10_002)
    live = tmp_path / "db"
    db = Database.open(live, checkpoint_every=2)
    db.load(document_xml, uri=URI)
    for op in ops:
        _apply(db, op)
    report = db.durability_report()
    assert report["checkpoints_written"] >= 2  # load + at least one auto
    db.close()

    recovered = Database.open(live, debug_checks=True)
    try:
        assert _observe(recovered, probe_tags) == expected[-1]
    finally:
        recovered.close()


def test_crash_during_initial_load(tmp_path):
    """A crash while logging the load record itself recovers to either
    the empty database (torn record truncated) or the full load."""
    live = tmp_path / "db"
    db = Database.open(live, checkpoint_every=0)
    db.load("<r><a>x</a></r>", uri=URI)
    db.close()

    wal0 = live / "wal-00000000.log"
    payload = wal0.read_bytes()
    records, _, boundaries = read_records(wal0)
    assert len(records) == 1

    crash = tmp_path / "crash"
    for offset in (len(WAL_MAGIC), len(WAL_MAGIC) + 5,
                   boundaries[0] - 1, boundaries[0]):
        if crash.exists():
            shutil.rmtree(crash)
        crash.mkdir()
        # Only the WAL existed at that instant (snapshot publication
        # happens after the load record): simulate by omitting it.
        crash.joinpath(wal0.name).write_bytes(payload[:offset])
        recovered = Database.open(crash, debug_checks=True)
        try:
            if offset == boundaries[0]:
                assert recovered.query("//a", uri=URI).values() == ["x"]
            else:
                assert recovered.documents == {}
        finally:
            recovered.close()

"""Unit tests for the XML tree model: structure, order, and axes."""

import pytest

from repro.xml.model import (
    Attribute,
    Comment,
    Document,
    Element,
    ProcessingInstruction,
    Text,
)


def build_sample():
    """<bib><book year="1994"><title>TCP/IP</title><author>Stevens</author>
    </book><book><title>Data</title></book></bib>"""
    doc = Document(uri="sample")
    bib = doc.append(Element("bib"))
    book1 = bib.append(Element("book"))
    book1.set_attribute("year", "1994")
    title1 = book1.append(Element("title"))
    title1.append_text("TCP/IP")
    author1 = book1.append(Element("author"))
    author1.append_text("Stevens")
    book2 = bib.append(Element("book"))
    title2 = book2.append(Element("title"))
    title2.append_text("Data")
    return doc, bib, book1, title1, author1, book2, title2


class TestConstruction:
    def test_append_sets_parent(self):
        doc, bib, book1, *_ = build_sample()
        assert book1.parent is bib
        assert bib.parent is doc

    def test_append_attached_node_rejected(self):
        doc, bib, book1, *_ = build_sample()
        with pytest.raises(ValueError):
            doc.append(book1)

    def test_document_cannot_be_child(self):
        outer = Document()
        with pytest.raises(TypeError):
            outer.append(Document())

    def test_attribute_cannot_be_child(self):
        root = Element("a")
        with pytest.raises(TypeError):
            root.append(Attribute("x", "1"))

    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError):
            Element("")

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute("", "v")

    def test_root_property(self):
        doc, bib, *_ = build_sample()
        assert doc.root is bib

    def test_root_missing(self):
        with pytest.raises(ValueError):
            Document().root

    def test_append_text_merges_adjacent(self):
        el = Element("p")
        el.append_text("hello ")
        el.append_text("world")
        assert len(el) == 1
        assert el.string_value() == "hello world"

    def test_insert_and_remove(self):
        doc, bib, book1, _, _, book2, _ = build_sample()
        extra = Element("book")
        bib.insert(1, extra)
        assert list(bib.children())[1] is extra
        bib.remove(extra)
        assert extra.parent is None
        assert list(bib.child_elements("book")) == [book1, book2]

    def test_remove_absent_raises(self):
        doc, bib, *_ = build_sample()
        with pytest.raises(ValueError):
            bib.remove(Element("ghost"))


class TestDocumentOrder:
    def test_preorder_ranks(self):
        doc, bib, book1, title1, author1, book2, title2 = build_sample()
        pres = [doc.pre, bib.pre, book1.pre, title1.pre, author1.pre,
                book2.pre, title2.pre]
        assert doc.pre == 0
        assert pres == sorted(pres)
        assert bib.pre == 1 and book1.pre == 2 and title1.pre == 3

    def test_levels(self):
        doc, bib, book1, title1, *_ = build_sample()
        assert (doc.level, bib.level, book1.level, title1.level) == (0, 1, 2, 3)

    def test_sizes(self):
        doc, bib, book1, *_ = build_sample()
        # doc: doc + bib + 2 books + 3 title/author + 3 texts = 10
        assert doc.size == 10
        assert book1.size == 5  # book + title + text + author + text

    def test_post_order_consistent_with_containment(self):
        doc, bib, book1, title1, *_ = build_sample()
        assert title1.post < book1.post < bib.post < doc.post

    def test_is_ancestor_of(self):
        doc, bib, book1, title1, _, book2, _ = build_sample()
        assert bib.is_ancestor_of(title1)
        assert not book2.is_ancestor_of(title1)
        assert not title1.is_ancestor_of(title1)

    def test_before(self):
        doc, _, book1, _, _, book2, _ = build_sample()
        assert book1.before(book2)
        assert not book2.before(book1)

    def test_mutation_invalidates_index(self):
        doc, bib, *_ = build_sample()
        first = doc.size
        bib.append(Element("book"))
        assert doc.size == first + 1

    def test_detached_node_order_undefined(self):
        el = Element("loose")
        with pytest.raises(ValueError):
            el.pre


class TestAxes:
    def test_children(self):
        doc, bib, book1, _, _, book2, _ = build_sample()
        assert list(bib.children()) == [book1, book2]

    def test_descendants_in_document_order(self):
        doc, *_ = build_sample()
        nodes = list(doc.descendants())
        assert [n.pre for n in nodes] == sorted(n.pre for n in nodes)
        assert len(nodes) == 9

    def test_ancestors_nearest_first(self):
        doc, bib, book1, title1, *_ = build_sample()
        assert list(title1.ancestors()) == [book1, bib, doc]

    def test_following_siblings(self):
        doc, _, book1, _, _, book2, _ = build_sample()
        assert list(book1.following_siblings()) == [book2]
        assert list(book2.following_siblings()) == []

    def test_preceding_siblings_reverse_order(self):
        doc, bib, book1, _, _, book2, _ = build_sample()
        extra = bib.append(Element("note"))
        assert list(extra.preceding_siblings()) == [book2, book1]

    def test_siblings_of_root_empty(self):
        doc, *_ = build_sample()
        assert list(doc.following_siblings()) == []
        assert list(doc.preceding_siblings()) == []

    def test_attribute_axis(self):
        _, _, book1, *_ = build_sample()
        attrs = list(book1.attributes())
        assert [(a.attr_name, a.value) for a in attrs] == [("year", "1994")]
        assert attrs[0].parent is book1

    def test_set_attribute_replaces(self):
        _, _, book1, *_ = build_sample()
        book1.set_attribute("year", "1995")
        assert book1.get_attribute("year") == "1995"
        assert len(list(book1.attributes())) == 1

    def test_get_missing_attribute(self):
        _, _, book1, *_ = build_sample()
        assert book1.get_attribute("isbn") is None


class TestContent:
    def test_string_value_concatenates_descendant_text(self):
        doc, bib, book1, *_ = build_sample()
        assert book1.string_value() == "TCP/IPStevens"
        assert doc.string_value() == "TCP/IPStevensData"

    def test_leaf_string_values(self):
        assert Text("abc").string_value() == "abc"
        assert Comment("c").string_value() == "c"
        assert ProcessingInstruction("t", "d").string_value() == "d"
        assert Attribute("n", "v").string_value() == "v"

    def test_names(self):
        assert Element("book").name == "book"
        assert Attribute("year", "x").name == "year"
        assert ProcessingInstruction("php").name == "php"
        assert Text("t").name is None

    def test_find(self):
        _, _, book1, title1, *_ = build_sample()
        assert book1.find("title") is title1
        assert book1.find("missing") is None

    def test_identity_semantics(self):
        a, b = Element("x"), Element("x")
        assert a != b
        assert a == a
        assert len({a, b}) == 2


class TestDeepTrees:
    def test_reindex_handles_deep_chains(self):
        doc = Document()
        node = doc.append(Element("n0"))
        for depth in range(1, 3000):
            node = node.append(Element(f"n{depth}"))
        assert doc.size == 3001
        assert node.level == 3000

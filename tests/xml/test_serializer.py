"""Unit and property tests for the serializer (round-trips with the parser)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xml.model import Document, Element
from repro.xml.parser import parse
from repro.xml.serializer import escape_attribute, escape_text, serialize


class TestEscaping:
    def test_escape_text(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_escape_attribute(self):
        assert escape_attribute('a"b&<') == "a&quot;b&amp;&lt;"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(parse("<a></a>").root) == "<a/>"

    def test_attributes_preserved_in_order(self):
        text = '<a b="1" a="2"/>'
        assert serialize(parse(text).root) == text

    def test_text_escaped(self):
        doc = parse("<a>&lt;raw&amp;&gt;</a>")
        assert serialize(doc.root) == "<a>&lt;raw&amp;&gt;</a>"

    def test_declaration(self):
        out = serialize(parse("<a/>"), declaration=True)
        assert out.startswith('<?xml version="1.0"')

    def test_pretty_print_indents_element_content(self):
        doc = parse("<a><b><c/></b></a>")
        out = serialize(doc, indent="  ")
        assert "\n  <b>" in out and "\n    <c/>" in out

    def test_pretty_print_keeps_mixed_content_inline(self):
        doc = parse("<p>one<b>two</b>three</p>", keep_whitespace=True)
        out = serialize(doc, indent="  ")
        assert "one<b>two</b>three" in out

    def test_comment_and_pi(self):
        text = "<a><!--c--><?t d?></a>"
        assert serialize(parse(text).root) == text


# -- property: parse . serialize == identity on generated trees ------------

_tags = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
_texts = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'.,!?",
    min_size=1, max_size=20)
_attr_values = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'", max_size=12)


@st.composite
def random_elements(draw, depth=3):
    element = Element(draw(_tags))
    for name, value in draw(st.dictionaries(_tags, _attr_values,
                                            max_size=3)).items():
        element.set_attribute(name, value)
    if depth > 0:
        for child_kind in draw(st.lists(st.sampled_from(["el", "text"]),
                                        max_size=4)):
            if child_kind == "el":
                element.append(draw(random_elements(depth=depth - 1)))
            else:
                element.append_text(draw(_texts))
    return element


@given(random_elements())
@settings(max_examples=60, deadline=None)
def test_parse_serialize_round_trip(element):
    doc = Document()
    doc.append(element)
    text = serialize(doc)
    reparsed = parse(text, keep_whitespace=True)
    assert serialize(reparsed) == text
    assert reparsed.root.string_value() == doc.root.string_value()


@given(random_elements())
@settings(max_examples=30, deadline=None)
def test_structure_survives_round_trip(element):
    doc = Document()
    doc.append(element)
    reparsed = parse(serialize(doc), keep_whitespace=True)

    def shape(el):
        return (el.tag,
                sorted((a.attr_name, a.value) for a in el.attributes()),
                [shape(c) for c in el.child_elements()])

    assert shape(reparsed.root) == shape(doc.root)

"""Unit tests for the from-scratch XML parser (tree and event interfaces)."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xml import events as ev
from repro.xml.parser import build_tree, iterparse, parse
from repro.xml.model import Comment, Element, ProcessingInstruction, Text


class TestBasicParsing:
    def test_single_element(self):
        doc = parse("<a/>")
        assert doc.root.tag == "a"
        assert len(doc.root) == 0

    def test_nested_elements(self):
        doc = parse("<a><b><c/></b><d/></a>")
        root = doc.root
        assert [e.tag for e in root.child_elements()] == ["b", "d"]
        assert root.find("b").find("c") is not None

    def test_text_content(self):
        doc = parse("<a>hello</a>")
        assert doc.root.string_value() == "hello"

    def test_mixed_content(self):
        doc = parse("<p>one<b>two</b>three</p>")
        kinds = [type(c).__name__ for c in doc.root.children()]
        assert kinds == ["Text", "Element", "Text"]
        assert doc.root.string_value() == "onetwothree"

    def test_attributes(self):
        doc = parse('<a x="1" y=\'two\'/>')
        assert doc.root.get_attribute("x") == "1"
        assert doc.root.get_attribute("y") == "two"

    def test_whitespace_only_text_dropped_by_default(self):
        doc = parse("<a>\n  <b/>\n</a>")
        assert all(isinstance(c, Element) for c in doc.root.children())

    def test_whitespace_kept_on_request(self):
        doc = parse("<a>\n  <b/>\n</a>", keep_whitespace=True)
        assert any(isinstance(c, Text) for c in doc.root.children())

    def test_xml_declaration(self):
        doc = parse('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert doc.root.tag == "a"

    def test_doctype_skipped(self):
        doc = parse('<!DOCTYPE bib [ <!ELEMENT bib (book*)> ]><bib/>')
        assert doc.root.tag == "bib"

    def test_comment(self):
        doc = parse("<a><!-- note --></a>")
        children = list(doc.root.children())
        assert isinstance(children[0], Comment)
        assert children[0].value == " note "

    def test_processing_instruction(self):
        doc = parse('<a><?target some data?></a>')
        pi = next(iter(doc.root.children()))
        assert isinstance(pi, ProcessingInstruction)
        assert pi.target == "target"
        assert pi.data == "some data"

    def test_cdata(self):
        doc = parse("<a><![CDATA[<not> & parsed]]></a>")
        assert doc.root.string_value() == "<not> & parsed"

    def test_names_with_punctuation(self):
        doc = parse("<ns:a-b.c_1/>")
        assert doc.root.tag == "ns:a-b.c_1"


class TestEntities:
    def test_predefined_entities(self):
        doc = parse("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert doc.root.string_value() == "<>&'\""

    def test_numeric_character_references(self):
        doc = parse("<a>&#65;&#x42;</a>")
        assert doc.root.string_value() == "AB"

    def test_entities_in_attributes(self):
        doc = parse('<a t="&amp;&#x3C;"/>')
        assert doc.root.get_attribute("t") == "&<"

    def test_undefined_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&nbsp;</a>")

    def test_bad_character_reference_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&#xZZ;</a>")

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&amp</a>")


class TestWellFormednessErrors:
    @pytest.mark.parametrize("text", [
        "",
        "   ",
        "<a>",
        "<a></b>",
        "<a><b></a></b>",
        "</a>",
        "<a/><b/>",
        "<a x=1/>",
        '<a x="1" x="2"/>',
        "<a><!-- -- --></a>",
        "<1tag/>",
        "<a b='<'/>",
        "text only",
        "<a>bad<a>",
        '<a y="no end>',
        "<a><![CDATA[never closed</a>",
    ])
    def test_rejected(self, text):
        with pytest.raises(XMLSyntaxError):
            parse(text)

    def test_error_location_reported(self):
        try:
            parse("<a>\n  <b></c>\n</a>")
        except XMLSyntaxError as err:
            assert err.line == 2
        else:  # pragma: no cover
            pytest.fail("expected XMLSyntaxError")


class TestEventStream:
    def test_event_sequence(self):
        stream = list(iterparse('<a x="1">t<b/></a>'))
        assert stream == [
            ev.StartDocument(),
            ev.StartElement("a", (("x", "1"),)),
            ev.Characters("t"),
            ev.StartElement("b", ()),
            ev.EndElement("b"),
            ev.EndElement("a"),
            ev.EndDocument(),
        ]

    def test_events_from_tree_round_trip(self):
        text = '<a x="1"><!--c-->t1<b>t2</b><?pi d?></a>'
        doc = parse(text, keep_whitespace=True)
        replayed = list(ev.events_from_tree(doc))
        direct = list(iterparse(text))
        assert replayed == direct

    def test_build_tree_from_events(self):
        stream = [
            ev.StartDocument(uri="u"),
            ev.StartElement("r", ()),
            ev.Characters("x"),
            ev.EndElement("r"),
            ev.EndDocument(),
        ]
        doc = build_tree(iter(stream))
        assert doc.uri == "u"
        assert doc.root.string_value() == "x"


class TestScale:
    def test_many_siblings(self):
        text = "<r>" + "<i/>" * 5000 + "</r>"
        doc = parse(text)
        assert len(doc.root) == 5000

    def test_deep_nesting(self):
        depth = 2000
        text = "".join(f"<n{i}>" for i in range(depth))
        text += "".join(f"</n{i}>" for i in reversed(range(depth)))
        doc = parse(text)
        assert doc.size == depth + 1


class TestLexerExtras:
    def test_shift_symbols_tokenize(self):
        from repro.xpath.lexer import tokenize
        values = [t.value for t in tokenize("a << b >> c")]
        assert values == ["a", "<<", "b", ">>", "c", ""]

    def test_error_classes_carry_positions(self):
        from repro.errors import QuerySyntaxError, XMLSyntaxError
        xml_error = XMLSyntaxError("bad", line=3, column=7)
        assert "line 3" in str(xml_error)
        assert (xml_error.line, xml_error.column) == (3, 7)
        query_error = QuerySyntaxError("bad", position=12)
        assert "offset 12" in str(query_error)
        assert query_error.position == 12

"""Tests for the vectorized columnar execution path.

The load-bearing guarantee: for every eligible pattern the batch
kernels return *identical, order-sensitive* results to the
node-at-a-time strategies (navigational, TwigStack, partitioned NoK)
and to the reference evaluator — across a fixture document, randomized
documents, and the documented edge cases (empty postings, root-only
matches, text-predicate windows, sibling edges).  Plus the engine
wiring: the ``columnar`` knob, strategy-memo keying, update
invalidation of the cached column view, and the observability surface.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.errors import ExecutionError
from repro.algebra.cost import CostModel
from repro.algebra.pattern_graph import compile_path
from repro.physical.columnar import ColumnarMatcher, columnar_eligible
from repro.physical.navigational import NavigationalMatcher
from repro.physical.partition import PartitionedMatcher
from repro.physical.planner import STRATEGIES, PhysicalPlanner
from repro.physical.twigstack import TwigStackJoin
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import evaluate_xpath

SAMPLE = """
<site>
  <regions>
    <europe>
      <item id="i1"><name>Alpha</name><price>10</price>
        <desc><b>bold</b> text</desc></item>
      <item id="i2"><name>Beta</name><price>25</price></item>
    </europe>
    <asia>
      <item id="i3"><name>Gamma</name><price>10</price>
        <related><item id="i9"><name>Nested</name></item></related>
      </item>
    </asia>
  </regions>
  <people>
    <person id="p1"><name>Ann</name><watches><watch/></watches></person>
    <person id="p2"><name>Bob</name></person>
  </people>
</site>
"""

QUERIES = [
    "/site/regions",
    "/site/regions/europe/item",
    "/site/regions/europe/item/name",
    "/site/*/europe/item/price",
    "//item",
    "//item/name",
    "//item//name",
    "/site//item[name]",
    "//item[price]",
    "//item[price = 10]/name",
    "/site/regions//item[@id = 'i3']",
    "//person[watches]/name",
    "//item[name][price]",
    "/site/people/person/@id",
    "//@id",
    "//name/text()",
    "/site/regions/europe/item[name = 'Beta']",
    "//item[price > 10]",
    "//desc/b",
    "/site//watches/watch",
    "//name/following-sibling::price",
]


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.load(SAMPLE, uri="site.xml")
    return database


def pattern_for(query):
    return compile_path(parse_xpath(query))


def expected_preorders(database, query):
    doc = database.document()
    nodes = evaluate_xpath(query, doc.tree)
    mapping = doc.preorder_map
    return sorted({mapping[node.node_id] for node in nodes})


class TestColumnarAgainstReference:
    @pytest.mark.parametrize("query", QUERIES)
    def test_matches_reference_and_navigational(self, db, query):
        pattern = pattern_for(query)
        assert columnar_eligible(pattern)
        runtime = db.document().runtime
        expected = expected_preorders(db, query)
        # Order-sensitive: exact list equality, not set equality.
        assert ColumnarMatcher(pattern).run(runtime) == expected, query
        assert NavigationalMatcher(pattern).run(runtime) == expected

    @pytest.mark.parametrize("query", [
        "//item", "//item/name", "//item//name", "//item[name][price]",
        "//item[price = 10]/name",
    ])
    def test_matches_twigstack_item_for_item(self, db, query):
        pattern = pattern_for(query)
        runtime = db.document().runtime
        assert ColumnarMatcher(pattern).run(runtime) == \
            TwigStackJoin(pattern).run(runtime)

    def test_planner_every_strategy_agrees(self, db):
        runtime = db.document().runtime
        planner = PhysicalPlanner(CostModel(db.document().statistics))
        results = {}
        for strategy in ("nok", "partitioned", "twigstack",
                         "navigational", "columnar", "auto"):
            matches, _, _ = planner.match(
                pattern_for("/site/regions/europe/item/name"), runtime,
                strategy=strategy)
            results[strategy] = tuple(matches)
        assert len(set(results.values())) == 1


class TestEdgeCases:
    def test_empty_postings(self, db):
        """A tag with no postings anywhere: every stage sees empty
        arrays and the result is empty, not an error."""
        runtime = db.document().runtime
        assert ColumnarMatcher(pattern_for("//nonexistent")).run(
            runtime) == []
        assert ColumnarMatcher(
            pattern_for("//item/nonexistent")).run(runtime) == []

    def test_root_only_match(self, db):
        """The document element itself is the only match."""
        query = "/site"
        assert ColumnarMatcher(pattern_for(query)).run(
            db.document().runtime) == expected_preorders(db, query)

    def test_branch_prunes_root_to_empty(self, db):
        """A failing branch on the root-anchored chain empties the
        result during the bottom-up pass."""
        assert ColumnarMatcher(pattern_for("/site[missing]/people")).run(
            db.document().runtime) == []

    def test_text_predicate_window(self, db):
        """Value constraints on text nodes are checked per candidate
        inside the shrunken window."""
        for query in ("//name[. = 'Beta']", "//name/text()",
                      "//item[name = 'Gamma']//name"):
            assert ColumnarMatcher(pattern_for(query)).run(
                db.document().runtime) == expected_preorders(db, query), \
                query

    def test_sibling_edges(self, db):
        query = "//name/following-sibling::price"
        assert ColumnarMatcher(pattern_for(query)).run(
            db.document().runtime) == expected_preorders(db, query)

    def test_context_window_anchoring(self, db):
        """Anchored below the document root, candidates outside the
        context subtree window never appear."""
        runtime = db.document().runtime
        # pre id of <people>: evaluate its own query first.
        people = expected_preorders(db, "/site/people")[0]
        pattern = compile_path(parse_xpath("name"),
                               root_kind="context")
        matches = ColumnarMatcher(pattern).run(runtime, root=people)
        assert matches == []  # name is not a *child* of people
        pattern = compile_path(parse_xpath(".//name"),
                               root_kind="context")
        matches = ColumnarMatcher(pattern).run(runtime, root=people)
        expected = [p for p in expected_preorders(db, "//person/name")]
        assert matches == expected


RESIDUAL_QUERIES = [
    "//item[name or price]",
    "//item[not(related)]",
    "//item[count(name) = 1]",
    "//person[name = 'Ann' or watches]/name",
]


class TestResidualPatterns:
    """Residual predicates run through the batch post-filter: each
    vertex's candidate window is checked against the engine's
    reference-evaluator callback before the semi-joins — the same
    node-local check every join strategy applies."""

    def test_residuals_are_eligible(self):
        for query in RESIDUAL_QUERIES:
            pattern = pattern_for(query)
            assert pattern.has_residuals(), query
            assert columnar_eligible(pattern), query

    @pytest.mark.parametrize("query", RESIDUAL_QUERIES)
    def test_residual_parity_against_reference(self, db, query):
        pattern = pattern_for(query)
        runtime = db.document().runtime
        expected = expected_preorders(db, query)
        assert ColumnarMatcher(pattern).run(runtime) == expected, query
        assert NavigationalMatcher(pattern).run(runtime) == expected
        assert PartitionedMatcher(pattern).run(runtime) == expected

    @pytest.mark.parametrize("query", RESIDUAL_QUERIES)
    def test_residual_parity_through_database(self, db, query):
        """Forced columnar through Database.query answers exactly like
        the reference interpreter, item for item."""
        columnar = db.query(query, strategy="columnar")
        reference = db.reference_query(query)
        assert [getattr(i, "node_id", i) for i in columnar.items] == \
            [getattr(i, "node_id", i) for i in reference], query

    def test_residual_filter_is_accounted(self, db):
        pattern = pattern_for("//item[name or price]")
        matcher = ColumnarMatcher(pattern)
        matcher.run(db.document().runtime)
        detail = matcher.stats.detail
        assert detail.get("columnar.residual_checked", 0) > 0

    def test_residual_cost_penalty(self, db):
        """The cost model charges residual vertices the per-candidate
        evaluator price, so auto mode stays conservative."""
        model = CostModel(db.document().statistics)
        plain = model.columnar_cost(pattern_for("//item[name]"))
        residual = model.columnar_cost(
            pattern_for("//item[name or price]"))
        assert residual.cpu > plain.cpu


class TestEligibilityAndFallback:
    def test_residual_without_checker_falls_back(self, db):
        """A bare runtime (no engine residual callback) cannot check
        residuals in *any* strategy; the matcher raises so the planner
        (and the engine above it) can react."""
        from repro.physical.base import MatchRuntime

        document = db.document()
        bare = MatchRuntime(document.succinct, document.interval,
                            document.tag_index)
        pattern = pattern_for("//item[name or price]")
        assert columnar_eligible(pattern)
        with pytest.raises(ExecutionError):
            ColumnarMatcher(pattern).run(bare)

    def test_multi_output_is_ineligible(self, db):
        pattern = pattern_for("//item/name")
        pattern.vertices[1].output = True  # second output vertex
        assert not columnar_eligible(pattern)

    def test_planner_falls_back_on_ineligible(self, db):
        """Forced columnar on a pattern the kernels cannot express
        (multi-output) lands on the working fallback strategy."""
        planner = PhysicalPlanner(CostModel(db.document().statistics))
        pattern = pattern_for("//item/name")
        pattern.vertices[1].output = True
        with pytest.raises(ExecutionError):
            # match() needs a single output; the fallback path also
            # rejects it, which is the contract (use match_bindings).
            planner.match(pattern, db.document().runtime,
                          strategy="columnar")

    def test_planner_forced_columnar_handles_residuals(self, db):
        planner = PhysicalPlanner(CostModel(db.document().statistics))
        matches, _, used = planner.match(
            pattern_for("//item[name or price]"),
            db.document().runtime, strategy="columnar")
        assert used == "columnar"
        assert matches == expected_preorders(db, "//item[name or price]")

    def test_columnar_is_a_strategy(self):
        assert "columnar" in STRATEGIES


class TestKnobAndMemo:
    def test_knob_validation(self):
        with pytest.raises(ExecutionError):
            Database(columnar="sometimes")
        database = Database()
        with pytest.raises(ExecutionError):
            database.set_columnar("sometimes")

    def test_forced_on_uses_columnar(self):
        database = Database(columnar="on", result_cache_size=0)
        database.load(SAMPLE, uri="site.xml")
        assert database.query("//item/name").strategy == "columnar"

    def test_off_never_plans_columnar(self):
        database = Database(columnar="off", result_cache_size=0)
        database.load(SAMPLE, uri="site.xml")
        for query in QUERIES[:8]:
            assert database.query(query).strategy != "columnar"

    def test_memo_key_includes_knob(self):
        """Satellite fix: toggling the knob at runtime must never serve
        a stale memoized choice from the other mode."""
        database = Database(columnar="on", result_cache_size=0)
        database.load(SAMPLE, uri="site.xml")
        assert database.query("//item/name").strategy == "columnar"
        database.set_columnar("off")
        assert database.query("//item/name").strategy != "columnar"
        database.set_columnar("on")
        assert database.query("//item/name").strategy == "columnar"
        document = database.document()
        modes = {key[2] for key in document.strategy_memo}
        assert {"on", "off"} <= modes
        # Generation stays at index 1 (the serving-layer contract).
        for key in document.strategy_memo:
            assert key[1] == document.statistics.generation

    def test_explicit_strategy_overrides_off(self):
        database = Database(columnar="off", result_cache_size=0)
        database.load(SAMPLE, uri="site.xml")
        result = database.query("//item/name", strategy="columnar")
        assert result.strategy == "columnar"
        assert len(result.items) == 4


class TestViewLifecycle:
    def test_view_is_built_once_and_shared(self, db):
        runtime = db.document().runtime
        view_a = runtime.columnar_view()
        view_b = runtime.columnar_view()
        assert view_a is view_b
        assert view_a.node_count == db.document().succinct.node_count
        assert view_a.size_bytes() > 0

    def test_kindless_view_matches_kinded_view(self, db):
        """Regression: a view built without a succinct kind column used
        to cache *empty* kind arrays — wildcard/kind vertices silently
        matched zero rows.  ``kinds=None`` must now derive the column
        from the interval records and agree with the kinded view."""
        from repro.storage.columns import ColumnarView

        document = db.document()
        kinded = ColumnarView(document.interval, document.tag_index,
                              kinds=document.succinct._kinds)
        kindless = ColumnarView(document.interval, document.tag_index,
                                kinds=None)
        assert list(kindless.element_pres()) == list(kinded.element_pres())
        assert list(kindless.attribute_pres()) == \
            list(kinded.attribute_pres())
        assert list(kindless.text_pres()) == list(kinded.text_pres())
        # The fixture has elements, attributes (@id) and text nodes —
        # none of these may be empty (the old bug's symptom).
        assert len(kindless.element_pres()) > 0
        assert len(kindless.attribute_pres()) > 0
        assert len(kindless.text_pres()) > 0

    def test_kindless_runtime_queries_match(self):
        """End-to-end: a runtime whose succinct store exposes no
        ``_kinds`` attribute (``physical/base.py`` probes it with
        ``getattr``) still answers kind-probing columnar queries
        correctly — the view derives the column instead of silently
        matching zero rows."""
        database = Database(result_cache_size=0)
        database.load(SAMPLE, uri="site.xml")
        reference = database.query("//@id",
                                   strategy="navigational").values()
        document = database.document()
        original = document.succinct._kinds
        try:
            del document.succinct._kinds
            result = database.query("//@id", strategy="columnar")
        finally:
            document.succinct._kinds = original
        assert result.values() == reference and reference

    def test_update_invalidates_view(self):
        database = Database(columnar="on", result_cache_size=0)
        database.load("<r><a><b/></a></r>", uri="u.xml")
        runtime = database.document().runtime
        before = database.query("//b").items
        assert len(before) == 1
        assert runtime.column_builds == 1
        database.insert("/r/a", "<b/>")
        after = database.query("//b")
        assert after.strategy == "columnar"
        assert len(after.items) == 2
        # MVCC: the insert published a successor version with its own
        # runtime; the new version builds its own view once, while the
        # pinned version's view stays valid for readers still on it.
        new_runtime = database.document().runtime
        assert new_runtime is not runtime
        assert new_runtime.column_builds == 1
        assert runtime.column_builds == 1

    def test_delete_invalidates_view(self):
        database = Database(columnar="on", result_cache_size=0)
        database.load("<r><a><b/></a><a><b/></a></r>", uri="u.xml")
        assert len(database.query("//b").items) == 2
        database.delete("/r/a[2]")
        assert len(database.query("//b").items) == 1

    def test_observability_counters(self):
        database = Database(columnar="on", result_cache_size=0)
        database.load(SAMPLE, uri="site.xml")
        database.query("//item/name")
        text = database.metrics_text()
        assert "repro_columnar_view_builds_total" in text
        assert "repro_columnar_view_bytes" in text
        assert 'repro_queries_total{strategy="columnar"' in text

    def test_explain_analyze_reports_columnar(self):
        database = Database(columnar="on", result_cache_size=0)
        database.load(SAMPLE, uri="site.xml")
        analysis = database.explain("//item/name", analyze=True)
        rendered = str(analysis)
        assert "columnar" in rendered
        records = [r for r in analysis.operators
                   if r.strategy == "columnar"]
        assert records and records[0].est_pages is not None


# -- randomized differential testing ------------------------------------------

_TAGS = ["a", "b", "c", "d"]


@st.composite
def random_documents(draw):
    def subtree(depth):
        tag = draw(st.sampled_from(_TAGS))
        attrs = ""
        if draw(st.booleans()):
            attrs = f' k="{draw(st.integers(0, 3))}"'
        if depth == 0:
            return f"<{tag}{attrs}>{draw(st.integers(0, 5))}</{tag}>"
        inner = "".join(subtree(depth - 1)
                        for _ in range(draw(st.integers(0, 3))))
        return f"<{tag}{attrs}>{inner}</{tag}>"
    return f"<root>{subtree(3)}{subtree(3)}</root>"


_RANDOM_QUERIES = [
    "/root/a", "//a", "//a/b", "//a//b", "/root//c", "//b[c]",
    "//a[b][c]", "//a[@k]", "//a[@k = '1']", "//*/b", "//a/*",
    "//b/text()", "//a[b = 3]", "//a[b]//c", "//a/b/following-sibling::c",
]


@given(random_documents(), st.sampled_from(_RANDOM_QUERIES))
@settings(max_examples=60, deadline=None)
def test_random_differential(text, query):
    """Property: on arbitrary documents every supported pattern returns
    identical (order-sensitive) results to the node-at-a-time
    strategies and the reference evaluator."""
    database = Database()
    database.load(text, uri="random.xml")
    runtime = database.document().runtime
    expected = expected_preorders(database, query)
    pattern = pattern_for(query)
    assert columnar_eligible(pattern)

    assert ColumnarMatcher(pattern).run(runtime) == expected, query
    assert NavigationalMatcher(pattern).run(runtime) == expected
    if not pattern.is_nok():
        assert PartitionedMatcher(pattern).run(runtime) == expected

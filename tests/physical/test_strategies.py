"""Differential tests: every physical strategy == the reference evaluator.

This is the load-bearing correctness suite of the reproduction: NoK,
partitioned NoK, binary structural joins, PathStack, TwigStack,
navigational, and index-scan must all agree with the specification
(:mod:`repro.xpath.semantics`) on a fixture document and on randomized
documents × queries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.engine.mapping import storage_preorder_map
from repro.errors import ExecutionError
from repro.algebra.pattern_graph import compile_path
from repro.physical.indexscan import IndexScanMatcher
from repro.physical.navigational import NavigationalMatcher
from repro.physical.nok import NoKMatcher
from repro.physical.partition import PartitionedMatcher
from repro.physical.pathstack import PathStackJoin
from repro.physical.structural_join import BinaryJoinMatcher
from repro.physical.twigstack import TwigStackJoin
from repro.xml.parser import parse
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import evaluate_xpath

SAMPLE = """
<site>
  <regions>
    <europe>
      <item id="i1"><name>Alpha</name><price>10</price>
        <desc><b>bold</b> text</desc></item>
      <item id="i2"><name>Beta</name><price>25</price></item>
    </europe>
    <asia>
      <item id="i3"><name>Gamma</name><price>10</price>
        <related><item id="i9"><name>Nested</name></item></related>
      </item>
    </asia>
  </regions>
  <people>
    <person id="p1"><name>Ann</name><watches><watch/></watches></person>
    <person id="p2"><name>Bob</name></person>
  </people>
</site>
"""

QUERIES = [
    "/site/regions",
    "/site/regions/europe/item",
    "/site/regions/europe/item/name",
    "/site/*/europe/item/price",
    "//item",
    "//item/name",
    "//item//name",
    "/site//item[name]",
    "//item[price]",
    "//item[price = 10]/name",
    "/site/regions//item[@id = 'i3']",
    "//person[watches]/name",
    "//item[name][price]",
    "/site/people/person/@id",
    "//@id",
    "//name/text()",
    "/site/regions/europe/item[name = 'Beta']",
    "//item[price > 10]",
    "//desc/b",
    "/site//watches/watch",
]


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.load(SAMPLE, uri="site.xml")
    return database


def expected_preorders(db, query):
    doc = db.document()
    nodes = evaluate_xpath(query, doc.tree)
    mapping = doc.preorder_map
    return sorted({mapping[node.node_id] for node in nodes})


def pattern_for(query):
    return compile_path(parse_xpath(query))


MATCHER_FACTORIES = {
    "nok/partitioned": lambda p: (NoKMatcher(p) if p.is_nok()
                                  else PartitionedMatcher(p)),
    "structural-join": BinaryJoinMatcher,
    "twigstack": TwigStackJoin,
    "navigational": NavigationalMatcher,
}


class TestStrategiesAgainstReference:
    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("name", sorted(MATCHER_FACTORIES))
    def test_strategy_matches_reference(self, db, query, name):
        pattern = pattern_for(query)
        expected = expected_preorders(db, query)
        runtime = db.document().runtime
        matcher = MATCHER_FACTORIES[name](pattern)
        if isinstance(matcher, NoKMatcher):
            output = pattern.output_vertices()[0].vertex_id
            bindings = matcher.run(runtime)
            actual = sorted({b[output] for b in bindings if output in b})
        else:
            actual = matcher.run(runtime)
        assert actual == expected, f"{name} diverged on {query}"

    @pytest.mark.parametrize("query", [
        "/site/regions/europe/item/name",
        "//item",
        "//item/name",
        "/site//item//name",
        "//name/text()",
    ])
    def test_pathstack_on_linear_queries(self, db, query):
        pattern = pattern_for(query)
        actual = PathStackJoin(pattern).run(db.document().runtime)
        assert actual == expected_preorders(db, query)

    @pytest.mark.parametrize("query", [
        "//item[price = 10]/name",
        "/site/regions/europe/item[name = 'Beta']",
        "/site/regions//item[@id = 'i3']",
    ])
    def test_indexscan_on_value_queries(self, db, query):
        pattern = pattern_for(query)
        actual = IndexScanMatcher(pattern).run(db.document().runtime)
        assert actual == expected_preorders(db, query)

    def test_pathstack_rejects_twigs(self, db):
        with pytest.raises(ExecutionError):
            PathStackJoin(pattern_for("//item[name][price]"))

    def test_indexscan_needs_equality(self, db):
        with pytest.raises(ExecutionError):
            IndexScanMatcher(pattern_for("//item"))

    def test_nok_rejects_descendant_edges(self, db):
        with pytest.raises(ExecutionError):
            NoKMatcher(pattern_for("//item"))

    def test_sibling_query_via_partition(self, db):
        query = "//name/following-sibling::price"
        pattern = pattern_for(query)
        assert not pattern.is_nok()
        actual = PartitionedMatcher(pattern).run(db.document().runtime)
        assert actual == expected_preorders(db, query)

    def test_residual_predicates_supported(self, db):
        query = "//item[name or price]"
        pattern = pattern_for(query)
        actual = PartitionedMatcher(pattern).run(db.document().runtime)
        assert actual == expected_preorders(db, query)


class TestStats:
    def test_nok_counts_one_pass(self, db):
        pattern = pattern_for("/site/regions/europe/item/name")
        matcher = NoKMatcher(pattern)
        matcher.run(db.document().runtime)
        assert matcher.stats.nodes_visited == \
            db.document().succinct.node_count

    def test_joins_count_postings(self, db):
        pattern = pattern_for("//item/name")
        matcher = BinaryJoinMatcher(pattern)
        matcher.run(db.document().runtime)
        assert matcher.stats.postings_scanned > 0
        assert matcher.stats.structural_joins >= 2

    def test_partitioned_counts_cut_joins(self, db):
        pattern = pattern_for("/site//item//name")
        matcher = PartitionedMatcher(pattern)
        matcher.run(db.document().runtime)
        assert matcher.join_count() == 2
        assert matcher.stats.structural_joins == 2

    def test_twigstack_intermediate_bounded(self, db):
        pattern = pattern_for("//item[name][price]")
        twig = TwigStackJoin(pattern)
        twig.run(db.document().runtime)
        binary = BinaryJoinMatcher(pattern)
        binary.run(db.document().runtime)
        assert twig.stats.intermediate_results <= \
            binary.stats.intermediate_results + \
            binary.stats.postings_scanned


# -- randomized differential testing ------------------------------------------

_TAGS = ["a", "b", "c", "d"]


@st.composite
def random_documents(draw):
    def subtree(depth):
        tag = draw(st.sampled_from(_TAGS))
        attrs = ""
        if draw(st.booleans()):
            attrs = f' k="{draw(st.integers(0, 3))}"'
        if depth == 0:
            return f"<{tag}{attrs}>{draw(st.integers(0, 5))}</{tag}>"
        inner = "".join(subtree(depth - 1)
                        for _ in range(draw(st.integers(0, 3))))
        return f"<{tag}{attrs}>{inner}</{tag}>"
    return f"<root>{subtree(3)}{subtree(3)}</root>"


_RANDOM_QUERIES = [
    "/root/a", "//a", "//a/b", "//a//b", "/root//c", "//b[c]",
    "//a[b][c]", "//a[@k]", "//a[@k = '1']", "//*/b", "//a/*",
    "//b/text()", "//a[b = 3]", "//a[b]//c",
]


@given(random_documents(), st.sampled_from(_RANDOM_QUERIES))
@settings(max_examples=60, deadline=None)
def test_random_differential(text, query):
    database = Database()
    database.load(text, uri="random.xml")
    doc = database.document()
    expected = expected_preorders(database, query)
    pattern = compile_path(parse_xpath(query))
    runtime = doc.runtime

    strategies = {
        "joins": BinaryJoinMatcher(pattern),
        "twig": TwigStackJoin(pattern),
        "nav": NavigationalMatcher(pattern),
    }
    if pattern.is_nok():
        nok = NoKMatcher(pattern)
        output = pattern.output_vertices()[0].vertex_id
        bindings = nok.run(runtime)
        assert sorted({b[output] for b in bindings
                       if output in b}) == expected
    else:
        assert PartitionedMatcher(pattern).run(runtime) == expected
    for name, matcher in strategies.items():
        assert matcher.run(runtime) == expected, name


class TestJoinOrderSelection:
    """Reference [5] of the paper: structural join order selection —
    joining against the smallest candidate list first shrinks the
    intermediates of every later join."""

    def test_selective_branch_first_reduces_work(self):
        # Many items have <common/>, almost none have <rare/>: joining
        # rare first reduces the item list before the big common join.
        parts = ["<r>"]
        for index in range(300):
            rare = "<rare/>" if index == 7 else ""
            parts.append(f"<item><common/>{rare}</item>")
        parts.append("</r>")
        database = Database()
        database.load("".join(parts), uri="skew.xml")
        runtime = database.document().runtime
        pattern = pattern_for("//item[common][rare]")

        ordered = BinaryJoinMatcher(pattern, reorder=True)
        result_ordered = ordered.run(runtime)
        naive = BinaryJoinMatcher(pattern, reorder=False)
        result_naive = naive.run(runtime)

        assert result_ordered == result_naive
        assert len(result_ordered) == 1
        assert ordered.stats.postings_scanned < \
            naive.stats.postings_scanned

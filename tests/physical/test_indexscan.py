"""Tests for the index-scan strategy: equality probes and numeric ranges."""

import pytest

from repro.engine.database import Database
from repro.errors import ExecutionError
from repro.algebra.pattern_graph import compile_path
from repro.physical.indexscan import IndexScanMatcher
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import evaluate_xpath

SHOP = """
<shop>
  <item sku="a1"><name>anvil</name><price>9</price></item>
  <item sku="a2"><name>rope</name><price>10</price></item>
  <item sku="a3"><name>rocket</name><price>150</price></item>
  <item sku="a4"><name>bird seed</name><price>25</price></item>
  <item sku="a5"><name>magnet</name><price>7.5</price></item>
  <note>price</note>
</shop>
"""


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.load(SHOP, uri="shop.xml")
    return database


def run(db, query):
    pattern = compile_path(parse_xpath(query))
    return IndexScanMatcher(pattern).run(db.document().runtime)


def expected(db, query):
    doc = db.document()
    nodes = evaluate_xpath(query, doc.tree)
    return sorted({doc.preorder_map[n.node_id] for n in nodes})


class TestEqualityProbe:
    def test_element_value(self, db):
        assert run(db, "//item[name = 'rope']") == \
            expected(db, "//item[name = 'rope']")

    def test_attribute_value(self, db):
        assert run(db, "//item[@sku = 'a3']/name") == \
            expected(db, "//item[@sku = 'a3']/name")

    def test_no_match(self, db):
        assert run(db, "//item[name = 'unobtainium']") == []

    def test_numeric_equality_probes_canonical_text(self, db):
        assert run(db, "//item[price = 10]") == \
            expected(db, "//item[price = 10]")


class TestNumericRanges:
    @pytest.mark.parametrize("query", [
        "//item[price > 10]",
        "//item[price >= 10]",
        "//item[price < 10]",
        "//item[price <= 10]",
        "//item[price > 8][price < 30]" if False else "//item[price > 8]",
    ])
    def test_ranges_match_reference(self, db, query):
        assert run(db, query) == expected(db, query)

    def test_string_order_trap(self, db):
        # "9" > "10" lexicographically; the numeric index must not fall
        # for it: price > 10 excludes 9 and 7.5.
        result = run(db, "//item[price > 10]/name")
        doc = db.document()
        names = {doc.succinct.string_value(p) for p in result}
        assert names == {"rocket", "bird seed"}

    def test_combined_bounds(self, db):
        query = "//item[price > 8 and price < 30]"
        assert run(db, query) == expected(db, query)

    def test_range_through_engine(self, db):
        result = db.query("//item[price > 10]", strategy="index-scan")
        assert result.strategy == "index-scan"
        assert len(result) == 2

    def test_rejects_unconstrained_pattern(self, db):
        with pytest.raises(ExecutionError):
            IndexScanMatcher(compile_path(parse_xpath("//item")))

    def test_rejects_string_range(self, db):
        # A string-literal range cannot use the numeric index.
        with pytest.raises(ExecutionError):
            IndexScanMatcher(compile_path(parse_xpath(
                "//item[name > 'm']")))


class TestVerification:
    def test_mixed_content_verified(self):
        # The text hit "price" lives under <note>; an element-vertex
        # probe must verify the full string value and the tag.
        database = Database()
        database.load(SHOP, uri="shop.xml")
        result = run(database, "//note[. = 'price']")
        assert len(result) == 1

    def test_nested_text_reached_via_ancestors(self):
        # <a><b>foo</b></a>: the text's parent is b, but //a[. = 'foo']
        # must find a — candidates climb the ancestor chain.
        database = Database()
        database.load("<r><a><b>foo</b></a><a><b>bar</b></a></r>",
                      uri="n.xml")
        query = "//a[. = 'foo']"
        assert run(database, query) == expected(database, query) != []

    def test_fragmented_values_refused_not_wrong(self):
        # <a>foo<b/>bar</a> has string value "foobar" spread over two
        # text runs — no index entry equals it, so a probe would miss
        # the element.  The matcher must refuse (lossy), and the engine
        # must still answer correctly by falling back to a scan.
        database = Database()
        database.load("<r><a>foo<b/>bar</a><a>foobar</a></r>", uri="m.xml")
        query = "//a[. = 'foobar']"
        with pytest.raises(ExecutionError):
            run(database, query)
        result = database.query(query, strategy="index-scan")
        assert len(result) == len(expected(database, query)) == 2
        assert result.strategy in ("partitioned", "nok")

    def test_cost_model_avoids_fragmented_index(self):
        from repro.algebra.cost import CostModel
        database = Database()
        database.load("<r><a>foo<b/>bar</a></r>", uri="m.xml")
        model = CostModel(database.document().statistics)
        pattern = compile_path(parse_xpath("//a[. = 'foobar']"))
        assert model.index_scan_cost(pattern).total == float("inf")

"""Differential testing over randomly *generated* pattern graphs.

String queries only exercise the shapes the XPath grammar can spell; this
suite builds arbitrary Definition-1 pattern graphs (random tree shapes,
mixed ``/``/``//``/``@`` edges, value constraints, random output vertex)
and checks every physical strategy against the logical τ operator on
random documents.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.algebra.operators import TreePatternMatch
from repro.algebra.pattern_graph import (
    REL_ATTRIBUTE,
    REL_CHILD,
    REL_DESCENDANT,
    PatternGraph,
)
from repro.physical.navigational import NavigationalMatcher
from repro.physical.nok import NoKMatcher
from repro.physical.partition import PartitionedMatcher
from repro.physical.structural_join import BinaryJoinMatcher
from repro.physical.twigstack import TwigStackJoin

_TAGS = ["a", "b", "c"]
_ATTRS = ["k", "m"]


@st.composite
def random_documents(draw):
    def subtree(depth):
        tag = draw(st.sampled_from(_TAGS))
        attr = ""
        if draw(st.booleans()):
            attr = (f' {draw(st.sampled_from(_ATTRS))}='
                    f'"{draw(st.integers(0, 2))}"')
        if depth == 0:
            return f"<{tag}{attr}>{draw(st.integers(0, 4))}</{tag}>"
        inner = "".join(subtree(depth - 1)
                        for _ in range(draw(st.integers(0, 3))))
        return f"<{tag}{attr}>{inner}</{tag}>"
    return f"<root>{subtree(2)}{subtree(2)}{subtree(2)}</root>"


@st.composite
def random_patterns(draw):
    """A pattern graph: context root, then a random tree of element
    vertices (with occasional attribute leaves and value constraints)."""
    graph = PatternGraph()
    graph.add_vertex(None, kind="any")  # the context root
    element_vertices = [0]
    count = draw(st.integers(1, 4))
    for _ in range(count):
        parent = draw(st.sampled_from(element_vertices))
        vertex = graph.add_vertex(draw(st.sampled_from(_TAGS)),
                                  kind="element")
        relation = draw(st.sampled_from([REL_CHILD, REL_DESCENDANT]))
        graph.add_edge(parent, vertex.vertex_id, relation)
        element_vertices.append(vertex.vertex_id)
        if draw(st.integers(0, 3)) == 0:
            graph.add_value_constraint(
                vertex.vertex_id,
                draw(st.sampled_from(["=", ">", "<"])),
                float(draw(st.integers(0, 4))))
    if draw(st.booleans()):
        owner = draw(st.sampled_from(element_vertices[1:]))
        attribute = graph.add_vertex(draw(st.sampled_from(_ATTRS)),
                                     kind="attribute")
        graph.add_edge(owner, attribute.vertex_id, REL_ATTRIBUTE)
        element_vertices_for_output = element_vertices[1:] + \
            [attribute.vertex_id]
    else:
        element_vertices_for_output = element_vertices[1:]
    output = draw(st.sampled_from(element_vertices_for_output))
    graph.vertices[output].output = True
    return graph


def logical_matches(database, pattern):
    """Ground truth: the logical τ over the model tree, mapped to
    storage pre-order ids."""
    document = database.document()
    output = pattern.output_vertices()[0].vertex_id
    nested = TreePatternMatch().apply(document.tree, pattern)
    mapping = document.preorder_map
    return sorted({mapping[node.node_id] for node in nested})


@given(random_documents(), random_patterns())
@settings(max_examples=80, deadline=None)
def test_all_strategies_match_logical_tau(text, pattern):
    database = Database()
    database.load(text, uri="r.xml")
    runtime = database.document().runtime
    expected = logical_matches(database, pattern)

    assert BinaryJoinMatcher(pattern).run(runtime) == expected, "joins"
    assert NavigationalMatcher(pattern).run(runtime) == expected, "nav"
    if len(pattern.children_of(pattern.root)) == 1:
        assert TwigStackJoin(pattern).run(runtime) == expected, "twig"
    else:
        # Multi-rooted twigs are outside TwigStack's shape; the planner
        # falls back (documented), so here we just assert the rejection.
        from repro.errors import ExecutionError
        import pytest
        with pytest.raises(ExecutionError):
            TwigStackJoin(pattern)
    if pattern.is_nok():
        output = pattern.output_vertices()[0].vertex_id
        bindings = NoKMatcher(pattern).run(runtime)
        nok = sorted({b[output] for b in bindings if output in b})
        assert nok == expected, "nok"
    else:
        assert PartitionedMatcher(pattern).run(runtime) == expected, \
            "partitioned"

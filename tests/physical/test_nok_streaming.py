"""Tests for the NoK matcher's streaming mode (experiment E9's substrate).

"Pre-order of the tree nodes coincides with the streaming XML element
arrival order.  So the path query evaluation algorithm ... can also be
used in the streaming context" (Section 4.2): streaming results (over raw
parse events, no storage) must equal storage-mode results node for node.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.errors import ExecutionError
from repro.algebra.pattern_graph import compile_path
from repro.physical.nok import NoKMatcher
from repro.xml.parser import iterparse
from repro.xpath.parser import parse_xpath

SAMPLE = """
<bib>
  <book year="1994"><title>TCP/IP</title><author>Stevens</author>
    <price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author>Abiteboul</author><author>Buneman</author>
    <price>39.95</price></book>
</bib>
"""

NOK_QUERIES = [
    "/bib/book",
    "/bib/book/title",
    "/bib/book[author]/title",
    "/bib/book/@year",
    "/bib/book[@year = '1994']/title",
    "/bib/book[price > 50]",
    "/bib/book/title/text()",
    "/bib/book[author][price]",
    "/bib/*/author",
]


def storage_matches(query):
    database = Database()
    database.load(SAMPLE, uri="bib.xml")
    pattern = compile_path(parse_xpath(query))
    matcher = NoKMatcher(pattern)
    bindings = matcher.run(database.document().runtime)
    output = pattern.output_vertices()[0].vertex_id
    return sorted({b[output] for b in bindings if output in b})


def stream_matches(query):
    pattern = compile_path(parse_xpath(query))
    matcher = NoKMatcher(pattern)
    bindings = matcher.run_stream(iterparse(SAMPLE.strip()))
    output = pattern.output_vertices()[0].vertex_id
    return sorted({b[output] for b in bindings if output in b})


class TestStreamingEqualsStorage:
    @pytest.mark.parametrize("query", NOK_QUERIES)
    def test_same_preorders(self, query):
        assert stream_matches(query) == storage_matches(query)

    def test_nonempty_results(self):
        assert stream_matches("/bib/book") != []

    def test_streaming_rejects_residuals(self):
        pattern = compile_path(parse_xpath("/bib/book[author or title]"))
        with pytest.raises(ExecutionError):
            NoKMatcher(pattern).run_stream(iterparse(SAMPLE.strip()))

    def test_streaming_value_constraint_on_attribute(self):
        matches = stream_matches("/bib/book[@year = '2000']/title")
        assert len(matches) == 1

    def test_streaming_counts_single_pass(self):
        pattern = compile_path(parse_xpath("/bib/book/title"))
        matcher = NoKMatcher(pattern)
        matcher.run_stream(iterparse(SAMPLE.strip()))
        database = Database()
        database.load(SAMPLE, uri="bib.xml")
        assert matcher.stats.nodes_visited == \
            database.document().succinct.node_count


_TAGS = ["x", "y", "z"]


@st.composite
def random_xml(draw):
    def subtree(depth):
        tag = draw(st.sampled_from(_TAGS))
        attr = f' a="{draw(st.integers(0, 2))}"' if draw(st.booleans()) \
            else ""
        if depth == 0:
            return f"<{tag}{attr}>{draw(st.integers(0, 9))}</{tag}>"
        inner = "".join(subtree(depth - 1)
                        for _ in range(draw(st.integers(0, 3))))
        return f"<{tag}{attr}>{inner}</{tag}>"
    return f"<r>{subtree(2)}{subtree(2)}</r>"


@given(random_xml(), st.sampled_from([
    "/r/x", "/r/x/y", "/r/*", "/r/x[@a]", "/r/x[y]", "/r/x[@a = '1']",
    "/r/x/text()",
]))
@settings(max_examples=50, deadline=None)
def test_streaming_matches_storage_random(text, query):
    pattern = compile_path(parse_xpath(query))
    output = pattern.output_vertices()[0].vertex_id

    stream = NoKMatcher(pattern)
    stream_result = sorted({b[output]
                            for b in stream.run_stream(iterparse(text))
                            if output in b})
    database = Database()
    database.load(text, uri="r.xml")
    storage = NoKMatcher(pattern)
    storage_result = sorted({
        b[output]
        for b in storage.run(database.document().runtime)
        if output in b})
    assert stream_result == storage_result


class TestKeepWhitespaceMode:
    def test_whitespace_nodes_counted_when_kept(self):
        text = "<a>\n  <b/>\n</a>"
        pattern = compile_path(parse_xpath("/a/text()"))
        dropped = NoKMatcher(pattern)
        assert dropped.run_stream(iterparse(text)) == []
        kept = NoKMatcher(pattern)
        bindings = kept.run_stream(iterparse(text),
                                   keep_whitespace=True)
        assert len(bindings) == 2  # the two whitespace runs around <b/>

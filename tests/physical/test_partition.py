"""Tests for the NoK partitioner (Section 4.2 / experiment E8)."""

import pytest

from repro.algebra.pattern_graph import compile_path
from repro.engine.database import Database
from repro.physical.partition import PartitionedMatcher, partition_pattern
from repro.xpath.parser import parse_xpath


def pattern_for(text):
    return compile_path(parse_xpath(text))


class TestPartitioning:
    def test_nok_pattern_single_partition(self):
        partitions = partition_pattern(pattern_for("/a/b/c"))
        assert len(partitions) == 1
        assert partitions[0].cut_edge is None
        assert partitions[0].pattern.is_nok()

    def test_one_cut_per_descendant_edge(self):
        partitions = partition_pattern(pattern_for("/a//b/c//d"))
        assert len(partitions) == 3
        cut_relations = [p.cut_edge.relation for p in partitions[1:]]
        assert cut_relations == ["//", "//"]

    def test_sibling_edge_cuts(self):
        partitions = partition_pattern(
            pattern_for("/a/b/following-sibling::c"))
        assert len(partitions) == 2
        assert partitions[1].cut_edge.relation == "~"

    def test_partitions_are_nok(self):
        partitions = partition_pattern(pattern_for("//a[b]//c[d]/e"))
        assert all(p.pattern.is_nok() for p in partitions)

    def test_branch_stays_in_partition(self):
        # /a[b]/c has no non-local edge: one partition with the branch.
        partitions = partition_pattern(pattern_for("/a[b]/c"))
        assert len(partitions) == 1
        assert partitions[0].pattern.vertex_count() == 4

    def test_constraints_copied(self):
        partitions = partition_pattern(
            pattern_for("//a[@k = '1']/b"))
        child = partitions[1].pattern
        constrained = [v for v in child.vertices.values()
                       if v.value_constraints]
        assert constrained and constrained[0].value_constraints == \
            (("=", "1"),)

    def test_parent_links(self):
        partitions = partition_pattern(pattern_for("/a//b//c"))
        assert partitions[1].parent_index == 0
        assert partitions[2].parent_index == 1

    def test_vertex_maps_cover_all_vertices(self):
        pattern = pattern_for("//a[b]//c")
        partitions = partition_pattern(pattern)
        mapped = set()
        for partition in partitions:
            mapped.update(partition.vertex_map.keys())
        assert mapped == set(pattern.vertices.keys())


class TestJoinSavings:
    """The E8 story: partitioning performs one join per *cut* edge,
    versus one per edge for the join-based baseline."""

    def test_join_count_equals_cut_edges(self):
        doc = "<r>" + "<a><b><c><d/></c></b></a>" * 5 + "</r>"
        database = Database()
        database.load(doc, uri="r.xml")
        pattern = pattern_for("/r/a//c/d")
        matcher = PartitionedMatcher(pattern)
        matcher.run(database.document().runtime)
        assert matcher.join_count() == 1           # one '//' cut
        assert matcher.stats.structural_joins == 1
        # Join-per-edge would pay 4 (r->a, a->c, c->d edges + root).
        assert len(pattern.edges) == 4

"""Tests for the physical planner: choice, dispatch, fallback."""

import pytest

from repro.engine.database import Database
from repro.errors import PlanError
from repro.algebra.cost import CostModel
from repro.algebra.pattern_graph import compile_path
from repro.physical.planner import STRATEGIES, PhysicalPlanner
from repro.xpath.parser import parse_xpath

DOC = ("<lib>" + "".join(
    f"<shelf id='s{i}'><book><title>t{i}</title>"
    f"<author>a{i % 7}</author></book></shelf>"
    for i in range(40)) + "</lib>")


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.load(DOC, uri="lib.xml")
    return database


def planner_for(db):
    return PhysicalPlanner(CostModel(db.document().statistics))


def pattern(text):
    return compile_path(parse_xpath(text))


class TestChoice:
    def test_local_paths_choose_nok(self, db):
        assert planner_for(db).choose(pattern("/lib/shelf/book")) == "nok"

    def test_without_cost_model_defaults(self):
        planner = PhysicalPlanner()
        assert planner.choose(pattern("/a/b")) == "nok"
        assert planner.choose(pattern("//a//b")) == "partitioned"

    def test_choice_is_a_real_strategy(self, db):
        for query in ("/lib/shelf", "//book", "//book[author]/title",
                      "//title[. = 't3']"):
            choice = planner_for(db).choose(pattern(query))
            assert choice in STRATEGIES and choice != "auto"


class TestDispatchAndFallback:
    def test_unknown_strategy_rejected(self, db):
        with pytest.raises(PlanError):
            planner_for(db).match(pattern("//book"),
                                  db.document().runtime,
                                  strategy="quantum")

    def test_pathstack_on_twig_falls_back(self, db):
        matches, stats, used = planner_for(db).match(
            pattern("//book[author]/title"), db.document().runtime,
            strategy="pathstack")
        assert used in ("partitioned", "nok")
        assert len(matches) == 40

    def test_indexscan_without_constraint_falls_back(self, db):
        matches, stats, used = planner_for(db).match(
            pattern("//book"), db.document().runtime,
            strategy="index-scan")
        assert used == "partitioned"
        assert len(matches) == 40

    def test_nok_on_general_pattern_degrades_to_partitioned(self, db):
        matches, stats, used = planner_for(db).match(
            pattern("//book/title"), db.document().runtime,
            strategy="nok")
        assert used == "partitioned"
        assert len(matches) == 40

    def test_every_strategy_agrees(self, db):
        runtime = db.document().runtime
        results = {}
        for strategy in ("nok", "partitioned", "structural-join",
                         "twigstack", "navigational", "auto"):
            matches, _, _ = planner_for(db).match(
                pattern("/lib/shelf/book/title"), runtime,
                strategy=strategy)
            results[strategy] = matches
        assert len({tuple(m) for m in results.values()}) == 1

    def test_match_bindings_multi_output(self, db):
        graph = pattern("/lib/shelf/book/title")
        # Mark both book and title as outputs.
        book_vertex = graph.edges[1].target
        graph.vertices[book_vertex].output = True
        bindings, stats = planner_for(db).match_bindings(
            graph, db.document().runtime)
        assert len(bindings) == 40
        assert all(len(binding) == 2 for binding in bindings)

    def test_match_bindings_partitioned_pattern(self, db):
        graph = pattern("//book/title")
        bindings, stats = planner_for(db).match_bindings(
            graph, db.document().runtime)
        assert len(bindings) == 40

"""Tests for PatternGraph (Definition 1) and XPath compilation."""

import pytest

from repro.algebra.pattern_graph import (
    REL_ATTRIBUTE,
    REL_CHILD,
    REL_DESCENDANT,
    REL_SIBLING,
    PatternGraph,
    UnsupportedPattern,
    compile_path,
)
from repro.xpath.parser import parse_xpath


def compiled(text, **kwargs):
    return compile_path(parse_xpath(text), **kwargs)


class TestConstruction:
    def test_paper_example(self):
        """Section 3.2: /a[b][c] has four vertices (root, a, b, c) and
        three parent-child arcs; a is the returning vertex."""
        graph = compiled("/a[b][c]")
        assert graph.vertex_count() == 4
        assert len(graph.edges) == 3
        assert all(edge.relation == REL_CHILD for edge in graph.edges)
        outputs = graph.output_vertices()
        assert len(outputs) == 1
        assert outputs[0].label_text() == "a"

    def test_add_edge_validation(self):
        graph = PatternGraph()
        v = graph.add_vertex("a")
        with pytest.raises(ValueError):
            graph.add_edge(v.vertex_id, 99, REL_CHILD)
        w = graph.add_vertex("b")
        with pytest.raises(ValueError):
            graph.add_edge(v.vertex_id, w.vertex_id, "??")

    def test_root_is_first_vertex(self):
        graph = compiled("/bib/book")
        assert graph.root == 0
        assert graph.vertices[graph.root].kind == "any"


class TestAxisCompilation:
    def test_child_chain(self):
        graph = compiled("/bib/book/title")
        relations = [e.relation for e in graph.edges]
        assert relations == [REL_CHILD, REL_CHILD, REL_CHILD]
        labels = [graph.vertices[e.target].label_text()
                  for e in graph.edges]
        assert labels == ["bib", "book", "title"]

    def test_descendant_collapses(self):
        graph = compiled("//book")
        assert [e.relation for e in graph.edges] == [REL_DESCENDANT]

    def test_internal_descendant(self):
        graph = compiled("/bib//title")
        assert [e.relation for e in graph.edges] == [REL_CHILD,
                                                     REL_DESCENDANT]

    def test_attribute_edge(self):
        graph = compiled("/book/@year")
        assert graph.edges[-1].relation == REL_ATTRIBUTE
        target = graph.vertices[graph.edges[-1].target]
        assert target.kind == "attribute"
        assert target.label_text() == "year"

    def test_descendant_attribute(self):
        graph = compiled("//@id")
        assert graph.edges[-1].relation == REL_DESCENDANT
        assert graph.vertices[graph.edges[-1].target].kind == "attribute"

    def test_following_sibling_edge(self):
        graph = compiled("/a/b/following-sibling::c")
        assert graph.edges[-1].relation == REL_SIBLING

    def test_wildcard_and_text(self):
        graph = compiled("/a/*/text()")
        middle = graph.vertices[graph.edges[1].target]
        leaf = graph.vertices[graph.edges[2].target]
        assert middle.labels is None and middle.kind == "element"
        assert leaf.kind == "text"

    def test_trailing_descendant(self):
        graph = compiled("/a//node()")
        assert graph.edges[-1].relation == REL_DESCENDANT
        assert graph.vertices[graph.edges[-1].target].kind == "any"

    def test_parent_axis_unsupported(self):
        with pytest.raises(UnsupportedPattern):
            compiled("/a/b/..")


class TestPredicateCompilation:
    def test_existence_predicate_branch(self):
        graph = compiled("/bib/book[author]/title")
        # book has two children: author (branch) and title (output).
        book_vertex = graph.edges[1].target
        children = graph.children_of(book_vertex)
        labels = sorted(graph.vertices[e.target].label_text()
                        for e in children)
        assert labels == ["author", "title"]
        author = next(graph.vertices[e.target] for e in children
                      if graph.vertices[e.target].label_text() == "author")
        assert not author.output

    def test_value_constraint_on_self(self):
        graph = compiled("/a/b[. = 'x']")
        target = graph.vertices[graph.edges[-1].target]
        assert target.value_constraints == (("=", "x"),)

    def test_value_constraint_on_attribute(self):
        graph = compiled("/book[@year = 1994]")
        attr = next(v for v in graph.vertices.values()
                    if v.kind == "attribute")
        assert attr.value_constraints == (("=", 1994.0),)

    def test_value_constraint_on_subpath(self):
        graph = compiled("/bib/book[author/last = 'Stevens']")
        last = next(v for v in graph.vertices.values()
                    if v.labels == frozenset({"last"}))
        assert last.value_constraints == (("=", "Stevens"),)

    def test_flipped_comparison(self):
        graph = compiled("/book[50 < price]")
        price = next(v for v in graph.vertices.values()
                     if v.labels == frozenset({"price"}))
        assert price.value_constraints == ((">", 50.0),)

    def test_and_distributes(self):
        graph = compiled("/book[author and price > 10]")
        price = next(v for v in graph.vertices.values()
                     if v.labels == frozenset({"price"}))
        assert price.value_constraints == ((">", 10.0),)
        assert any(v.labels == frozenset({"author"})
                   for v in graph.vertices.values())

    def test_positional_predicate_rejected(self):
        with pytest.raises(UnsupportedPattern):
            compiled("/bib/book[2]")
        with pytest.raises(UnsupportedPattern):
            compiled("/bib/book[position() = 2]")
        with pytest.raises(UnsupportedPattern):
            compiled("/bib/book[count(author)]")

    def test_positional_predicate_strict_rejected(self):
        with pytest.raises(UnsupportedPattern):
            compiled("/bib/book[2]", strict=True)

    def test_or_predicate_residual(self):
        graph = compiled("/book[author or editor]")
        book = graph.vertices[graph.edges[-1].target]
        assert len(book.residual) == 1
        assert graph.has_residuals()

    def test_boolean_function_residual(self):
        graph = compiled("/book[not(author)]")
        book = graph.vertices[graph.edges[-1].target]
        assert len(book.residual) == 1

    def test_nested_predicates(self):
        graph = compiled("/bib/book[author[last]]")
        labels = {v.label_text() for v in graph.vertices.values()}
        assert {"bib", "book", "author", "last"} <= labels


class TestClassification:
    def test_nok_detection(self):
        assert compiled("/a/b/c").is_nok()
        assert compiled("/a/b/@x").is_nok()
        assert not compiled("/a//c").is_nok()
        assert not compiled("//a").is_nok()

    def test_non_local_edges(self):
        graph = compiled("/a//b//c")
        assert len(graph.non_local_edges()) == 2

    def test_describe_mentions_structure(self):
        text = compiled("/a[b]/c[. = 'v']").describe()
        assert "root" in text and "output" in text and "-/->" in text

    def test_descendants_of(self):
        graph = compiled("/a/b/c")
        a_vertex = graph.edges[0].target
        descendants = set(graph.descendants_of(a_vertex))
        assert len(descendants) == 2

    def test_parent_edge(self):
        graph = compiled("/a/b")
        b_vertex = graph.edges[-1].target
        assert graph.parent_edge(b_vertex).relation == REL_CHILD
        assert graph.parent_edge(graph.root) is None


class TestMoreCompilation:
    def test_descendant_then_sibling_unsupported(self):
        with pytest.raises(UnsupportedPattern):
            compiled("/a//following-sibling::b")

    def test_vacuous_self_predicate_ignored(self):
        graph = compiled("/a[.]")
        assert graph.vertex_count() == 2

    def test_multi_constraint_vertex(self):
        graph = compiled("/a[. > 1][. < 9]")
        target = graph.vertices[graph.edges[-1].target]
        assert target.value_constraints == ((">", 1.0), ("<", 9.0))

    def test_self_step_narrows_labels(self):
        graph = compiled("/a/self::a")
        target = graph.vertices[graph.edges[-1].target]
        assert target.labels == frozenset({"a"})

    def test_repr(self):
        assert "outputs" in repr(compiled("/a/b"))

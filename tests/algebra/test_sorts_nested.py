"""Tests for the sort system and the NestedList sort."""

import pytest

from repro.algebra.nested import NestedList
from repro.algebra.sorts import Sort, SortError, check_signature, sort_of
from repro.xml.model import Document, Element, Text


class TestSortOf:
    def test_atomics(self):
        assert sort_of(3) is Sort.ITEM
        assert sort_of("x") is Sort.ITEM
        assert sort_of(True) is Sort.ITEM
        assert sort_of(1.5) is Sort.ITEM

    def test_nodes_and_trees(self):
        doc = Document()
        el = doc.append(Element("a"))
        assert sort_of(doc) is Sort.TREE
        assert sort_of(el) is Sort.TREE_NODE
        assert sort_of(Text("t")) is Sort.TREE_NODE

    def test_lists(self):
        assert sort_of([]) is Sort.LIST
        assert sort_of([Element("a"), Element("b")]) is Sort.LIST
        assert sort_of([[1], 2]) is Sort.NESTED_LIST
        assert sort_of(NestedList([1, 2])) is Sort.NESTED_LIST

    def test_structured_sorts(self):
        from repro.algebra.pattern_graph import PatternGraph
        from repro.algebra.schema_tree import SchemaTree
        from repro.algebra.env import Env
        assert sort_of(PatternGraph()) is Sort.PATTERN_GRAPH
        assert sort_of(SchemaTree()) is Sort.SCHEMA_TREE
        assert sort_of(Env()) is Sort.ENV

    def test_unknown_value_rejected(self):
        with pytest.raises(SortError):
            sort_of(object())

    def test_check_signature_accepts_list_for_nested(self):
        check_signature("op", (Sort.NESTED_LIST,), ([1, 2],))

    def test_check_signature_rejects_wrong_sort(self):
        with pytest.raises(SortError):
            check_signature("op", (Sort.LIST,), ("scalar",))

    def test_check_signature_arity(self):
        with pytest.raises(SortError):
            check_signature("op", (Sort.LIST,), ([], []))


class TestNestedList:
    def test_basic_container(self):
        nl = NestedList([1, 2, 3])
        assert len(nl) == 3
        assert nl[1] == 2
        assert list(nl) == [1, 2, 3]
        assert nl == [1, 2, 3]

    def test_slice_returns_nested_list(self):
        nl = NestedList([1, 2, 3])
        assert isinstance(nl[0:2], NestedList)

    def test_depth(self):
        assert NestedList().depth() == 1
        assert NestedList([1, 2]).depth() == 1
        assert NestedList([NestedList([1])]).depth() == 2
        assert NestedList([NestedList([NestedList([1])]), 2]).depth() == 3

    def test_is_flat(self):
        assert NestedList([1, 2]).is_flat()
        assert not NestedList([NestedList()]).is_flat()

    def test_flatten(self):
        nl = NestedList([1, NestedList([2, NestedList([3]), 4]), 5])
        assert nl.flatten() == [1, 2, 3, 4, 5]
        assert nl.leaf_count() == 5

    def test_map_leaves_preserves_structure(self):
        nl = NestedList([1, NestedList([2, 3])])
        doubled = nl.map_leaves(lambda x: x * 2)
        assert doubled.to_python() == [2, [4, 6]]

    def test_filter_leaves(self):
        nl = NestedList([1, NestedList([2, 3]), 4])
        odd = nl.filter_leaves(lambda x: x % 2 == 1)
        assert odd.to_python() == [1, [3]]

    def test_tuples_view(self):
        nl = NestedList.of_tuples([("t1", "a1"), ("t2", "a2")])
        assert list(nl.tuples()) == [("t1", "a1"), ("t2", "a2")]
        assert nl.depth() == 2

    def test_atomic_items_become_1_tuples(self):
        nl = NestedList(["x", NestedList(["y", "z"])])
        assert list(nl.tuples()) == [("x",), ("y", "z")]

    def test_group(self):
        grouped = NestedList.group([("a", 1), ("a", 2), ("b", 3)])
        assert grouped.to_python() == [["a", [1, 2]], ["b", [3]]]

    def test_deep_flatten_is_iterative(self):
        nl = NestedList([1])
        for _ in range(3000):
            nl = NestedList([nl])
        assert nl.flatten() == [1]
        assert nl.leaf_count() == 1

"""Soundness tests: translated plans must match the reference interpreter.

This is the paper's soundness property made executable: "the translation
of XQuery expressions into algebraic expressions must be correct".
"""

import pytest

from repro.algebra.plan import (
    EnvBuild,
    Eval,
    ExecutionContext,
    ForEach,
    Gamma,
    PiStep,
    Scan,
    SigmaV,
    Tau,
    execute_plan,
    explain_plan,
)
from repro.algebra.nested import NestedList
from repro.algebra.rewrite import (
    DEFAULT_RULES,
    FusePathsIntoTau,
    LiftEvalToTau,
    PushSelectionIntoTau,
    rewrite_plan,
)
from repro.algebra.translate import translate, translate_path_naive
from repro.xml import model
from repro.xml.parser import parse
from repro.xml.serializer import serialize
from repro.xquery import evaluate_xquery
from repro.xquery.parser import parse_xquery

BIB = """
<bib>
  <book year="1994"><title>TCP/IP</title>
    <author><last>Stevens</last></author><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author><last>Abiteboul</last></author>
    <author><last>Buneman</last></author><price>39.95</price></book>
  <book year="1999"><title>Economics</title><price>129.95</price></book>
</bib>
"""


@pytest.fixture(scope="module")
def documents():
    return {"bib.xml": parse(BIB)}


def reference(query, documents):
    return evaluate_xquery(query, documents=documents)


def run_plan(query, documents, naive_paths=False, rewrite=False):
    plan = translate(parse_xquery(query), naive_paths=naive_paths)
    if rewrite:
        plan = rewrite_plan(plan)
    context = ExecutionContext(documents)
    result = execute_plan(plan, context)
    if isinstance(result, NestedList):
        return result.flatten()
    if isinstance(result, model.Document):
        return list(result.children())
    return result


def assert_same_nodes(actual, expected):
    def key(item):
        if isinstance(item, model.Node):
            return ("node", serialize(item) if item.document is None
                    else item.pre)
        return ("atom", item)
    assert [key(a) for a in actual] == [key(e) for e in expected]


QUERIES = [
    "/bib/book/title",
    "//author/last",
    "/bib//last",
    "/bib/book[@year = '1994']/title",
    "/bib/book[price > 50]/title",
    "/bib/book[author]/title",
    "//book[author/last = 'Buneman']",
    'for $b in doc("bib.xml")/bib/book return $b/title',
    'for $b in doc("bib.xml")/bib/book where $b/price > 50 '
    "return $b/title",
    'for $b in doc("bib.xml")/bib/book order by $b/price descending '
    "return $b/price",
    'for $b in doc("bib.xml")/bib/book let $a := $b/author '
    "where count($a) > 1 return $b/title",
    "for $x in 1 to 3, $y in 1 to 2 return $x * 10 + $y",
]


class TestTranslationSoundness:
    @pytest.mark.parametrize("query", QUERIES)
    def test_plan_matches_reference(self, documents, query):
        assert_same_nodes(run_plan(query, documents),
                          reference(query, documents))

    @pytest.mark.parametrize("query", QUERIES)
    def test_naive_plan_matches_reference(self, documents, query):
        assert_same_nodes(run_plan(query, documents, naive_paths=True),
                          reference(query, documents))

    @pytest.mark.parametrize("query", QUERIES)
    def test_rewritten_plan_matches_reference(self, documents, query):
        assert_same_nodes(
            run_plan(query, documents, naive_paths=True, rewrite=True),
            reference(query, documents))

    def test_fig1_constructor_query(self, documents):
        query = ('<results>{ for $b in document("bib.xml")/bib/book '
                 "let $t := $b/title let $a := $b/author "
                 "return <result>{$t}{$a}</result> }</results>")
        plan = translate(parse_xquery(query))
        assert isinstance(plan, Gamma)
        context = ExecutionContext(documents)
        output = execute_plan(plan, context)
        expected = reference(query, documents)[0]
        assert serialize(output.root) == serialize(expected)


class TestPlanShapes:
    def test_absolute_path_becomes_tau(self, documents):
        plan = translate(parse_xquery("/bib/book/title"))
        assert isinstance(plan, Tau)
        assert isinstance(plan.inputs[0], Scan)
        assert plan.pattern.is_nok()

    def test_naive_path_becomes_pipeline(self):
        plan = translate(parse_xquery("/bib/book/title"), naive_paths=True)
        assert isinstance(plan, PiStep)
        depth = 0
        cursor = plan
        while isinstance(cursor, PiStep):
            depth += 1
            cursor = cursor.inputs[0]
        assert depth == 3
        assert isinstance(cursor, Scan)

    def test_doc_rooted_path_gets_scan_uri(self):
        plan = translate(parse_xquery('doc("bib.xml")/bib/book'))
        assert isinstance(plan, Tau)
        assert plan.inputs[0].uri == "bib.xml"

    def test_flwor_becomes_envbuild_foreach(self):
        plan = translate(parse_xquery(
            'for $b in doc("bib.xml")//book return $b/title'))
        assert isinstance(plan, ForEach)
        assert isinstance(plan.inputs[0], EnvBuild)
        style, var, source = plan.inputs[0].clauses[0]
        assert (style, var) == ("for", "b")
        assert isinstance(source, Tau)

    def test_out_of_fragment_falls_back_to_eval(self):
        plan = translate(parse_xquery("1 + 2"))
        assert isinstance(plan, Eval)

    def test_explain_renders_tree(self, documents):
        plan = translate(parse_xquery("/bib/book"), naive_paths=True)
        text = explain_plan(plan)
        assert "Pi[" in text and "Scan" in text


class TestRewriteRules:
    def test_fusion_collapses_whole_chain(self):
        plan = translate(parse_xquery("/bib/book/title"), naive_paths=True)
        fused = rewrite_plan(plan)
        assert isinstance(fused, Tau)
        assert isinstance(fused.inputs[0], Scan)
        # bib -> book -> title plus the root: 4 vertices, no Pi left.
        assert fused.pattern.vertex_count() == 4

    def test_fusion_keeps_value_selections(self):
        plan = translate(parse_xquery("/bib/book/price[. > 50]"),
                         naive_paths=True)
        fused = rewrite_plan(plan)
        assert isinstance(fused, Tau)
        price = [v for v in fused.pattern.vertices.values() if v.output][0]
        assert price.value_constraints == ((">", 50.0),)

    def test_push_selection_into_tau(self):
        base = translate(parse_xquery("/bib/book/price"))
        plan = SigmaV(op=">", literal=50.0, inputs=(base,))
        pushed = rewrite_plan(plan, rules=(PushSelectionIntoTau(),))
        assert isinstance(pushed, Tau)
        output = [v for v in pushed.pattern.vertices.values()
                  if v.output][0]
        assert ((">", 50.0)) in output.value_constraints

    def test_lift_eval(self):
        plan = Eval(expr=parse_xquery("/bib/book"))
        lifted = rewrite_plan(plan, rules=(LiftEvalToTau(),))
        assert isinstance(lifted, Tau)

    def test_lift_eval_leaves_uncompilable(self):
        plan = Eval(expr=parse_xquery("/bib/book[2]"))
        assert isinstance(rewrite_plan(plan, rules=(LiftEvalToTau(),)),
                          Eval)

    def test_fusion_no_op_without_scan(self):
        plan = Eval(expr=parse_xquery("1"))
        assert rewrite_plan(plan, rules=(FusePathsIntoTau(),)) is plan

    def test_rewrite_terminates(self):
        plan = translate(parse_xquery("//a/b/c/d/e/f"), naive_paths=True)
        rewritten = rewrite_plan(plan)
        assert isinstance(rewritten, (Tau, Eval))

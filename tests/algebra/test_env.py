"""Tests for Env (Definition 3), including the Fig. 2 example."""

from repro.algebra.env import Env


def build_fig2_env():
    """Example 1 / Fig. 2 of the paper:

        for $a in E1, $b in E2
        let $c := E3, $d := E4
        for $e in E5

    with E1 = (a1, a2, a3); E2 giving 2 items under a1, 1 under a2 and 3
    under a3; E5 giving the per-branch leaf counts of Fig. 2
    (e111..e113, e121, e122 | e211, e212 | e311, e312, e321..e323, e331).
    """
    env = Env()
    env.extend_for("a", lambda b: ["a1", "a2", "a3"])

    b_values = {"a1": ["b11", "b12"], "a2": ["b21"],
                "a3": ["b31", "b32", "b33"]}
    env.extend_for("b", lambda b: b_values[b["a"][0]])

    env.extend_let("c", lambda b: ["c-" + b["b"][0]])
    env.extend_let("d", lambda b: ["d-" + b["b"][0]])

    e_counts = {"b11": 3, "b12": 2, "b21": 2, "b31": 2, "b32": 3, "b33": 1}
    env.extend_for("e", lambda b: [f"e-{b['b'][0]}-{i}"
                                   for i in range(e_counts[b["b"][0]])])
    return env


class TestFig2Example:
    def test_thirteen_total_bindings(self):
        """The paper: "This environment actually specifies 13 possible
        value assignments ... to the five variables"."""
        env = build_fig2_env()
        assert env.binding_count() == 13

    def test_schema_string(self):
        """The nested-list schema of Example 1: ($a,($b,$c,$d,($e)))."""
        env = build_fig2_env()
        assert env.schema() == "($a,($b,$c,$d,($e)))"

    def test_layer_widths(self):
        env = build_fig2_env()
        # 3 as, 6 bs, 6 cs, 6 ds, 13 es — exactly Fig. 2.
        assert env.layer_sizes() == [3, 6, 6, 6, 13]

    def test_bindings_have_all_variables(self):
        env = build_fig2_env()
        for binding in env.total_bindings():
            assert set(binding) == {"a", "b", "c", "d", "e"}

    def test_let_binds_whole_sequence_per_branch(self):
        env = build_fig2_env()
        first = next(env.total_bindings())
        assert first["c"] == ["c-b11"]

    def test_describe(self):
        text = build_fig2_env().describe()
        assert "total bindings: 13" in text
        assert "$e" in text


class TestEnvMechanics:
    def test_empty_env_has_one_binding(self):
        env = Env()
        assert env.binding_count() == 1
        assert list(env.total_bindings()) == [{}]

    def test_for_over_empty_sequence_kills_branch(self):
        env = Env()
        env.extend_for("a", lambda b: [1, 2])
        env.extend_for("b", lambda b: [] if b["a"] == [1] else ["x"])
        assert env.binding_count() == 1
        assert next(env.total_bindings())["a"] == [2]

    def test_let_never_multiplies(self):
        env = Env()
        env.extend_for("a", lambda b: [1, 2, 3])
        env.extend_let("s", lambda b: [10, 20, 30])
        assert env.binding_count() == 3
        assert all(binding["s"] == [10, 20, 30]
                   for binding in env.total_bindings())

    def test_where_layer_prunes(self):
        env = Env()
        env.extend_for("a", lambda b: [1, 2, 3, 4])
        env.filter_where(lambda b: b["a"][0] % 2 == 0)
        assert env.binding_count() == 2
        assert [b["a"][0] for b in env.total_bindings()] == [2, 4]

    def test_growth_after_where(self):
        env = Env()
        env.extend_for("a", lambda b: [1, 2, 3])
        env.filter_where(lambda b: b["a"][0] != 2)
        env.extend_for("b", lambda b: ["x", "y"])
        assert env.binding_count() == 4

    def test_cross_product_cardinality(self):
        env = Env()
        env.extend_for("x", lambda b: list(range(4)))
        env.extend_for("y", lambda b: list(range(5)))
        assert env.binding_count() == 20

    def test_generators_see_outer_bindings(self):
        env = Env()
        env.extend_for("x", lambda b: [1, 2])
        env.extend_for("y", lambda b: list(range(b["x"][0])))
        # x=1 -> y in (0,); x=2 -> y in (0, 1): 3 bindings.
        assert env.binding_count() == 3

"""Tests for the Table-1 operators (logical reference implementations)."""

import pytest

from repro.algebra.nested import NestedList
from repro.algebra.operators import (
    Construct,
    Navigate,
    SelectTag,
    SelectValue,
    StructuralJoin,
    TreePatternMatch,
    ValueJoin,
    compare_values,
    operator_table,
    storage_tag,
)
from repro.algebra.pattern_graph import REL_CHILD, REL_DESCENDANT, compile_path
from repro.algebra.schema_tree import extract_schema_tree
from repro.algebra.sorts import Sort, SortError
from repro.xml.parser import parse
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import evaluate_xpath
from repro.xquery.parser import parse_xquery

BIB = (
    '<bib><book year="1994"><title>TCP/IP</title>'
    "<author>Stevens</author><price>65.95</price></book>"
    '<book year="2000"><title>Data on the Web</title>'
    "<author>Abiteboul</author><author>Buneman</author>"
    "<price>39.95</price></book></bib>"
)


@pytest.fixture(scope="module")
def doc():
    return parse(BIB)


def nodes_of(doc, path):
    return evaluate_xpath(path, doc)


class TestStorageTag:
    def test_tags(self, doc):
        book = nodes_of(doc, "/bib/book")[0]
        assert storage_tag(book) == "book"
        assert storage_tag(next(book.attributes())) == "@year"
        assert storage_tag(doc) == "#document"
        title_text = nodes_of(doc, "//title/text()")[0]
        assert storage_tag(title_text) == "#text"


class TestCompareValues:
    def test_numeric_literal(self):
        assert compare_values(">", "65.95", 50)
        assert not compare_values(">", "39.95", 50)
        assert not compare_values(">", "not-a-number", 50)

    def test_string_literal(self):
        assert compare_values("=", "abc", "abc")
        assert compare_values("!=", "abc", "x")
        assert compare_values("<", "abc", "abd")

    def test_unknown_op_rejected(self):
        with pytest.raises(Exception):
            compare_values("~=", "a", "b")


class TestStructureOperators:
    def test_sigma_s(self, doc):
        everything = list(doc.descendants())
        titles = SelectTag("title").apply(everything)
        assert len(titles) == 2
        both = SelectTag({"title", "author"}).apply(everything)
        assert len(both) == 5

    def test_sigma_s_signature_enforced(self, doc):
        with pytest.raises(SortError):
            SelectTag("title").apply("not-a-list")

    def test_join_s_child(self, doc):
        books = nodes_of(doc, "//book")
        titles = nodes_of(doc, "//title")
        result = StructuralJoin(REL_CHILD).apply(books, titles)
        assert result == titles

    def test_join_s_descendant(self, doc):
        bib = nodes_of(doc, "/bib")
        texts = nodes_of(doc, "//text()")
        result = StructuralJoin(REL_DESCENDANT).apply(bib, texts)
        assert len(result) == len(texts)

    def test_join_s_pairs(self, doc):
        books = nodes_of(doc, "//book")
        authors = nodes_of(doc, "//author")
        pairs = StructuralJoin(REL_CHILD, pairs=True).apply(books, authors)
        assert isinstance(pairs, NestedList)
        assert len(list(pairs.tuples())) == 3

    def test_join_s_attribute(self, doc):
        books = nodes_of(doc, "//book")
        years = nodes_of(doc, "//@year")
        assert len(StructuralJoin("@").apply(books, years)) == 2

    def test_pi_s_groups_per_input(self, doc):
        books = nodes_of(doc, "//book")
        grouped = Navigate(REL_CHILD, tags="author").apply(books)
        assert isinstance(grouped, NestedList)
        assert [len(group) for group in grouped] == [1, 2]

    def test_pi_s_descendant(self, doc):
        bib = nodes_of(doc, "/bib")
        grouped = Navigate(REL_DESCENDANT).apply(bib)
        assert grouped.leaf_count() == len(list(bib[0].descendants()))


class TestValueOperators:
    def test_sigma_v(self, doc):
        prices = nodes_of(doc, "//price")
        expensive = SelectValue(">", 50).apply(prices)
        assert [p.string_value() for p in expensive] == ["65.95"]

    def test_sigma_v_string(self, doc):
        authors = nodes_of(doc, "//author")
        match = SelectValue("=", "Buneman").apply(authors)
        assert len(match) == 1

    def test_join_v(self, doc):
        authors = nodes_of(doc, "//author")
        copies = nodes_of(doc, "//author")
        assert len(ValueJoin("=").apply(authors, copies)) == 3
        pairs = ValueJoin("=", pairs=True).apply(authors, copies)
        assert len(list(pairs.tuples())) == 3


class TestTreePatternMatch:
    def run_tpm(self, doc, path):
        pattern = compile_path(parse_xpath(path))
        return TreePatternMatch().apply(doc, pattern)

    def test_simple_path_matches_reference(self, doc):
        result = self.run_tpm(doc, "/bib/book/title")
        reference = nodes_of(doc, "/bib/book/title")
        assert list(result) == reference

    def test_descendant_path(self, doc):
        result = self.run_tpm(doc, "//author")
        assert list(result) == nodes_of(doc, "//author")

    def test_branching_pattern(self, doc):
        result = self.run_tpm(doc, "/bib/book[author]/title")
        assert list(result) == nodes_of(doc, "/bib/book[author]/title")

    def test_value_constraint(self, doc):
        result = self.run_tpm(doc, "/bib/book[@year = '1994']/title")
        assert [n.string_value() for n in result] == ["TCP/IP"]

    def test_residual_predicate(self, doc):
        result = self.run_tpm(doc, "/bib/book[author or editor]")
        assert list(result) == nodes_of(doc, "/bib/book[author or editor]")

    def test_unsatisfiable_pattern_empty(self, doc):
        assert list(self.run_tpm(doc, "/bib/magazine")) == []

    def test_output_is_deduplicated_document_order(self, doc):
        result = self.run_tpm(doc, "//book[author]")
        pres = [n.pre for n in result]
        assert pres == sorted(set(pres))


class TestConstruct:
    def test_gamma_instantiates_fig1_schema(self, doc):
        from repro.xquery.interpreter import XQueryInterpreter
        from repro.xpath.semantics import Context

        interpreter = XQueryInterpreter({"bib.xml": doc})

        def evaluate(expr, binding):
            if hasattr(expr, "parts"):  # attribute template
                from repro.xquery import ast as xq
                texts = []
                for part in expr.parts:
                    if isinstance(part, str):
                        texts.append(part)
                    else:
                        value = interpreter.evaluate(
                            part.expr, Context(doc, variables=binding))
                        texts.append(" ".join(
                            str(v) if not hasattr(v, "string_value")
                            else v.string_value() for v in value))
                return "".join(texts)
            return interpreter.evaluate(expr, Context(doc,
                                                      variables=binding))

        def expand(phi, binding):
            books = evaluate_xpath("/bib/book", doc)
            for book in books:
                yield {
                    "b": [book],
                    "t": evaluate_xpath("title", book),
                    "a": evaluate_xpath("author", book),
                }

        schema = extract_schema_tree(parse_xquery(
            '<results>{ for $b in document("bib.xml")/bib/book '
            "let $t := $b/title let $a := $b/author "
            "return <result>{$t}{$a}</result> }</results>"))
        gamma = Construct(evaluate=evaluate, expand=expand)
        output = gamma.apply(NestedList(), schema)
        results = output.root
        assert results.tag == "results"
        inner = list(results.child_elements("result"))
        assert len(inner) == 2
        assert [c.tag for c in inner[1].child_elements()] == [
            "title", "author", "author"]

    def test_gamma_signature_enforced(self):
        from repro.algebra.schema_tree import SchemaTree
        gamma = Construct(evaluate=lambda e, b: [])
        with pytest.raises(SortError):
            gamma.apply("nope", SchemaTree())


class TestOperatorTable:
    def test_table_matches_paper(self):
        rows = {row["operator"]: row for row in operator_table()}
        assert set(rows) == {"sigma_s", "join_s", "pi_s", "sigma_v",
                             "join_v", "tau", "gamma"}
        assert rows["tau"]["signature"] == \
            "Tree x PatternGraph -> NestedList"
        assert rows["gamma"]["signature"] == \
            "NestedList x SchemaTree -> Tree"
        assert rows["pi_s"]["signature"] == "List -> NestedList"
        assert rows["sigma_s"]["category"] == "structure-based"
        assert rows["tau"]["category"] == "hybrid"

"""Tests for the backward (output-to-input) analysis — Section 6's
planned work: free variables, demand propagation, dead-binding
elimination, and end-to-end equivalence of pruned plans."""

import pytest

from repro.algebra.backward import (
    analyze_schema_tree,
    backward_translate,
    free_variables,
    prune_flwor,
    required_variables,
)
from repro.algebra.plan import ExecutionContext, execute_plan
from repro.algebra.schema_tree import extract_schema_tree
from repro.xml.parser import parse
from repro.xml.serializer import serialize
from repro.xquery import evaluate_xquery
from repro.xquery.parser import parse_xquery

BIB = """
<bib>
  <book year="1994"><title>TCP/IP</title><author>Stevens</author>
    <price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author>Abiteboul</author><price>39.95</price></book>
</bib>
"""


class TestFreeVariables:
    @pytest.mark.parametrize("text,expected", [
        ("$x", {"x"}),
        ("$x + $y", {"x", "y"}),
        ("$b/title", {"b"}),
        ("/bib/book[@year = $y]", {"y"}),
        ("count($s)", {"s"}),
        ("1 + 2", set()),
        ("($a, $b, 3)", {"a", "b"}),
        ("$lo to $hi", {"lo", "hi"}),
        ("if ($c) then $t else $e", {"c", "t", "e"}),
        ("some $x in $src satisfies $x > $limit", {"src", "limit"}),
        ("<a y='{$v}'>{$w}</a>", {"v", "w"}),
    ])
    def test_expressions(self, text, expected):
        assert free_variables(parse_xquery(text)) == expected

    def test_flwor_binds_its_variables(self):
        expr = parse_xquery(
            "for $x in $src let $y := $x/t return ($y, $outer)")
        assert free_variables(expr) == {"src", "outer"}

    def test_positional_variable_bound(self):
        expr = parse_xquery("for $x at $i in $src return $i")
        assert free_variables(expr) == {"src"}

    def test_earlier_clause_shadows(self):
        expr = parse_xquery("for $x in //a for $y in $x/b return $y")
        assert free_variables(expr) == set()


class TestPruneFlwor:
    def test_dead_let_removed(self):
        expr = parse_xquery(
            "for $b in //book let $dead := //unused return $b/title")
        pruned = prune_flwor(expr)
        assert [c.variable for c in pruned.clauses] == ["b"]

    def test_live_let_kept(self):
        expr = parse_xquery(
            "for $b in //book let $t := $b/title return $t")
        assert prune_flwor(expr) is expr

    def test_let_feeding_where_kept(self):
        expr = parse_xquery(
            "for $b in //book let $p := $b/price "
            "where $p > 50 return $b/title")
        assert len(prune_flwor(expr).clauses) == 2

    def test_let_feeding_order_by_kept(self):
        expr = parse_xquery(
            "for $b in //book let $p := $b/price "
            "order by $p return $b/title")
        assert len(prune_flwor(expr).clauses) == 2

    def test_let_feeding_later_live_let_kept(self):
        expr = parse_xquery(
            "for $b in //book let $a := $b/author let $n := count($a) "
            "return $n")
        assert len(prune_flwor(expr).clauses) == 3

    def test_dead_chain_removed_entirely(self):
        expr = parse_xquery(
            "for $b in //book let $a := $b/author let $n := count($a) "
            "return $b/title")
        pruned = prune_flwor(expr)
        assert [c.variable for c in pruned.clauses] == ["b"]

    def test_for_clause_never_removed(self):
        # Unused for-clauses change cardinality (2 books x N): keep them.
        expr = parse_xquery(
            "for $b in //book for $unused in 1 to 3 return $b/title")
        assert len(prune_flwor(expr).clauses) == 2

    def test_external_demand_keeps_let(self):
        expr = parse_xquery(
            "for $b in //book let $t := $b/title return $b")
        pruned = prune_flwor(expr, demand={"t"})
        assert len(pruned.clauses) == 2


class TestSchemaAnalysis:
    def test_demand_from_placeholders(self):
        tree = extract_schema_tree(parse_xquery(
            "<r>{ for $b in //book let $t := $b/title let $a := $b/author "
            "return <i>{$t}</i> }</r>"))
        result_node = tree.root.children[0]
        assert required_variables(result_node) == {"t"}

    def test_analysis_prunes_phi(self):
        tree = extract_schema_tree(parse_xquery(
            "<r>{ for $b in //book let $t := $b/title let $a := $b/author "
            "return <i>{$t}</i> }</r>"))
        analyzed = analyze_schema_tree(tree)
        phi = analyzed.root.children[0].edge_expr
        assert [c.variable for c in phi.clauses] == ["b", "t"]

    def test_fig1_keeps_both_lets(self):
        tree = extract_schema_tree(parse_xquery(
            "<results>{ for $b in //book let $t := $b/title "
            "let $a := $b/author return <result>{$t}{$a}</result> "
            "}</results>"))
        analyzed = analyze_schema_tree(tree)
        phi = analyzed.root.children[0].edge_expr
        assert [c.variable for c in phi.clauses] == ["b", "t", "a"]


class TestEndToEndEquivalence:
    QUERIES = [
        # A constructor whose comprehension carries a dead binding.
        '<out>{ for $b in doc("bib.xml")/bib/book '
        "let $t := $b/title let $dead := $b/author "
        "return <e>{$t}</e> }</out>",
        # Plain FLWOR with dead lets.
        'for $b in doc("bib.xml")/bib/book let $x := $b/author '
        "let $y := count($x) return $b/title",
        # Nothing to prune.
        'for $b in doc("bib.xml")/bib/book return $b/title',
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_pruned_plan_equals_reference(self, query):
        documents = {"bib.xml": parse(BIB)}
        expected = evaluate_xquery(query, documents=documents)
        plan = backward_translate(parse_xquery(query))
        result = execute_plan(plan, ExecutionContext(documents))
        from repro.xml import model

        def render(items):
            out = []
            for item in (items if isinstance(items, list)
                         else list(items.children())):
                out.append(serialize(item)
                           if isinstance(item, model.Node) else item)
            return out

        assert render(result) == render(expected)

    def test_pruning_reduces_work(self):
        documents = {"bib.xml": parse(BIB)}
        query = self.QUERIES[0]
        plan = backward_translate(parse_xquery(query))
        phi = plan.schema.root.children[0].edge_expr
        assert "dead" not in [c.variable for c in phi.clauses]

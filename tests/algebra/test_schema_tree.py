"""Tests for SchemaTree (Definition 2) and the Fig. 1 extraction."""

from repro.algebra.schema_tree import (
    CONSTRUCTOR,
    IF_NODE,
    PLACEHOLDER,
    TEXT_NODE,
    extract_schema_tree,
)
from repro.xquery import ast as xq
from repro.xquery.parser import parse_xquery

FIG1_QUERY = (
    '<results> {'
    ' for $b in document("bib.xml")/bib/book'
    ' let $t := $b/title'
    ' let $a := $b/author'
    ' return <result> {$t} {$a} </result>'
    ' } </results>'
)


class TestFig1Extraction:
    def test_shape_matches_fig_1b(self):
        """Fig. 1(b): root `results`, under it `result` (zero or more,
        via the phi arc), under that the $t and $a placeholders."""
        tree = extract_schema_tree(parse_xquery(FIG1_QUERY))
        root = tree.root
        assert root.kind == CONSTRUCTOR and root.label == "results"
        assert len(root.children) == 1
        result = root.children[0]
        assert result.kind == CONSTRUCTOR and result.label == "result"
        assert result.occurrence == "*"
        assert isinstance(result.edge_expr, xq.FLWOR)
        placeholders = [c for c in result.children
                        if c.kind == PLACEHOLDER]
        assert len(placeholders) == 2
        assert [str(p.expr) for p in placeholders] == ["$t", "$a"]

    def test_phi_is_the_comprehension(self):
        tree = extract_schema_tree(parse_xquery(FIG1_QUERY))
        phi = tree.root.children[0].edge_expr
        assert [c.variable for c in phi.clauses] == ["b", "t", "a"]

    def test_describe_renders_fig_1b(self):
        text = extract_schema_tree(parse_xquery(FIG1_QUERY)).describe()
        assert "results" in text
        assert "result*" in text
        assert "{ $t }" in text and "{ $a }" in text
        assert "phi" in text


class TestOtherShapes:
    def test_plain_constructor(self):
        tree = extract_schema_tree(parse_xquery("<a><b/>hello</a>"))
        root = tree.root
        assert [c.kind for c in root.children] == [CONSTRUCTOR, TEXT_NODE]
        assert root.children[1].text == "hello"

    def test_attributes_recorded(self):
        tree = extract_schema_tree(parse_xquery('<a x="1" y="{$v}"/>'))
        assert [name for name, _ in tree.root.attributes] == ["x", "y"]

    def test_if_node(self):
        tree = extract_schema_tree(parse_xquery(
            "<out>{ if ($x) then <yes/> else <no/> }</out>"))
        branch = tree.root.children[0]
        assert branch.kind == IF_NODE
        assert [c.label for c in branch.children] == ["yes", "no"]

    def test_non_constructor_is_placeholder(self):
        tree = extract_schema_tree(parse_xquery("//book"))
        assert tree.root.kind == PLACEHOLDER

    def test_placeholders_listing(self):
        tree = extract_schema_tree(parse_xquery(
            "<a>{$x}<b>{$y}</b></a>"))
        assert len(tree.placeholders()) == 2
        assert len(tree.constructor_nodes()) == 2

    def test_nested_flwor_arcs(self):
        tree = extract_schema_tree(parse_xquery(
            "<r>{ for $a in //x return <i>{ for $b in $a/y "
            "return <j>{$b}</j> }</i> }</r>"))
        outer = tree.root.children[0]
        assert outer.occurrence == "*"
        inner = [c for c in outer.children if c.kind == CONSTRUCTOR][0]
        assert inner.occurrence == "*"
        assert isinstance(inner.edge_expr, xq.FLWOR)

"""Tests for the cost model (cardinality estimation + strategy choice)."""

import pytest

from repro.algebra.cost import CostModel
from repro.algebra.pattern_graph import compile_path
from repro.storage.interval import IntervalDocument
from repro.storage.stats import DocumentStatistics
from repro.xml.parser import parse
from repro.xpath.parser import parse_xpath


def make_doc(books=50, authors_per_book=2):
    parts = ["<bib>"]
    for index in range(books):
        parts.append(f'<book year="{1990 + index % 20}">')
        parts.append(f"<title>Title {index}</title>")
        for a in range(authors_per_book):
            parts.append(f"<author>A{index}-{a}</author>")
        parts.append("</book>")
    parts.append("</bib>")
    return parse("".join(parts))


@pytest.fixture(scope="module")
def model_():
    doc = IntervalDocument.from_document(make_doc())
    return CostModel(DocumentStatistics(doc))


def pattern(text):
    return compile_path(parse_xpath(text))


class TestCardinality:
    def test_exact_child_chain(self, model_):
        assert model_.result_cardinality(pattern("/bib/book")) == 50.0
        assert model_.result_cardinality(
            pattern("/bib/book/author")) == 100.0

    def test_descendant_estimates(self, model_):
        estimate = model_.result_cardinality(pattern("//author"))
        assert estimate == pytest.approx(100.0, rel=0.01)

    def test_missing_tag_zero(self, model_):
        assert model_.result_cardinality(pattern("/bib/magazine")) == 0.0

    def test_value_constraint_shrinks_estimate(self, model_):
        plain = model_.result_cardinality(pattern("/bib/book"))
        filtered = model_.result_cardinality(
            pattern("/bib/book[@year = '1994']"))
        assert 0 < filtered < plain

    def test_branch_does_not_inflate_output(self, model_):
        with_branch = model_.result_cardinality(
            pattern("/bib/book[title]"))
        assert with_branch == 50.0


class TestStrategyChoice:
    def test_nok_costed_only_for_nok_patterns(self, model_):
        nok = pattern("/bib/book/title")
        general = pattern("//book//author")
        nok_strategies = {e.strategy for e in model_.all_costs(nok)}
        general_strategies = {e.strategy for e in model_.all_costs(general)}
        assert "nok" in nok_strategies
        assert "nok" not in general_strategies
        assert "partitioned" in general_strategies
        assert "partitioned" not in nok_strategies

    def test_nok_beats_joins_on_local_paths(self, model_):
        choice = model_.cheapest_strategy(pattern("/bib/book/title"))
        assert choice == "nok"

    def test_index_scan_wins_with_selective_predicate(self):
        # Large doc + unique values -> very selective equality.
        doc = IntervalDocument.from_document(make_doc(books=5000))
        model = CostModel(DocumentStatistics(doc))
        selective = pattern("/bib/book[title = 'Title 17']")
        assert model.cheapest_strategy(selective) == "index-scan"

    def test_index_scan_infinite_without_constraint(self, model_):
        estimate = model_.index_scan_cost(pattern("/bib/book"))
        assert estimate.total == float("inf")

    def test_costs_are_positive_and_ordered(self, model_):
        for estimate in model_.all_costs(pattern("//book/author")):
            assert estimate.pages > 0
            assert estimate.cpu >= 0

"""Unit tests for plan-node mechanics, EXPLAIN rendering, and logical
execution corner cases not reached by the end-to-end suites."""

import pytest

from repro.errors import ExecutionError
from repro.algebra.pattern_graph import compile_path
from repro.algebra.plan import (
    ContextInput,
    EnvBuild,
    Eval,
    ExecutionContext,
    ForEach,
    Gamma,
    PiStep,
    Scan,
    SigmaS,
    SigmaV,
    Tau,
    execute_plan,
    explain_plan,
)
from repro.algebra.schema_tree import extract_schema_tree
from repro.xml.parser import parse
from repro.xpath.parser import parse_xpath
from repro.xquery.parser import parse_xquery

DOC = parse("<r><a>1</a><a>2</a><b>3</b></r>")


def ctx(**kwargs):
    return ExecutionContext({"d.xml": DOC}, **kwargs)


class TestDescribe:
    def test_node_descriptions(self):
        assert "Scan" in Scan(uri="d.xml").describe()
        assert "Context" in ContextInput().describe()
        assert "Eval" in Eval(expr=parse_xquery("1")).describe()
        pattern = compile_path(parse_xpath("/r/a"))
        tau = Tau(pattern=pattern, inputs=(Scan(),))
        assert "NoK" in tau.describe()
        general = Tau(pattern=compile_path(parse_xpath("//a")),
                      inputs=(Scan(),))
        assert "general" in general.describe()
        assert "Pi[" in PiStep(relation="/",
                               tags=frozenset({"a"})).describe()
        assert "SigmaS" in SigmaS(tags=frozenset({"a"})).describe()
        assert "SigmaV" in SigmaV(op=">", literal=1).describe()
        env = EnvBuild(clauses=(("for", "x", Eval(expr=None)),),
                       where=parse_xquery("1"))
        assert "for $x" in env.describe()
        assert "ForEach" in ForEach(
            return_expr=parse_xquery("$x")).describe()
        schema = extract_schema_tree(parse_xquery("<o>{$x}</o>"))
        assert "Gamma" in Gamma(schema=schema, inputs=(env,)).describe()

    def test_explain_indents_children(self):
        plan = SigmaV(op=">", literal=1, inputs=(
            PiStep(relation="/", tags=frozenset({"a"}),
                   inputs=(Scan(uri="d.xml"),)),))
        text = explain_plan(plan)
        lines = text.splitlines()
        assert lines[0].startswith("SigmaV")
        assert lines[1].startswith("  Pi")
        assert lines[2].startswith("    Scan")


class TestExecutionCorners:
    def test_scan_unknown_uri(self):
        with pytest.raises(ExecutionError):
            execute_plan(Scan(uri="ghost.xml"), ctx())

    def test_scan_without_context(self):
        empty = ExecutionContext({})
        with pytest.raises(ExecutionError):
            execute_plan(Scan(), empty)

    def test_context_input(self):
        result = execute_plan(ContextInput(), ctx())
        assert result == [DOC]

    def test_sigma_s_on_pi_output(self):
        plan = SigmaS(tags=frozenset({"a"}), inputs=(
            PiStep(relation="/", tags=None, kind="element",
                   inputs=(PiStep(relation="/", tags=frozenset({"r"}),
                                  inputs=(Scan(uri="d.xml"),)),)),))
        result = execute_plan(plan, ctx())
        assert [n.tag for n in result] == ["a", "a"]

    def test_sigma_v_filters(self):
        plan = SigmaV(op=">", literal=1, inputs=(
            PiStep(relation="//", tags=frozenset({"a"}),
                   inputs=(Scan(uri="d.xml"),)),))
        result = execute_plan(plan, ctx())
        assert [n.string_value() for n in result] == ["2"]

    def test_foreach_with_let_only(self):
        env = EnvBuild(clauses=(("let", "s",
                                 parse_xquery('doc("d.xml")//a')),))
        plan = ForEach(return_expr=parse_xquery("count($s)"),
                       inputs=(env,))
        assert execute_plan(plan, ctx()) == [2.0]

    def test_env_order_by_descending(self):
        query = parse_xquery(
            'for $a in doc("d.xml")//a order by $a descending return $a')
        env = EnvBuild(clauses=(("for", "a", query.clauses[0].expr),),
                       order_by=query.order_by)
        plan = ForEach(return_expr=query.return_expr, inputs=(env,))
        result = execute_plan(plan, ctx())
        assert [n.string_value() for n in result] == ["2", "1"]

    def test_unknown_plan_node_rejected(self):
        class Bogus:
            inputs = ()
        with pytest.raises(ExecutionError):
            execute_plan(Bogus(), ctx())

    def test_replace_inputs_copies(self):
        original = SigmaV(op="=", literal=1, inputs=(Scan(),))
        replaced = original.replace_inputs((Scan(uri="other"),))
        assert replaced is not original
        assert replaced.inputs[0].uri == "other"
        assert original.inputs[0].uri == ""

    def test_gamma_without_phi_arc(self):
        schema = extract_schema_tree(parse_xquery("<fixed>hi</fixed>"))
        plan = Gamma(schema=schema, inputs=(EnvBuild(clauses=()),))
        document = execute_plan(plan, ctx())
        assert document.root.tag == "fixed"
        assert document.root.string_value() == "hi"

    def test_gamma_if_node(self):
        schema = extract_schema_tree(parse_xquery(
            "<o>{ if (1 > 2) then <yes/> else <no/> }</o>"))
        plan = Gamma(schema=schema, inputs=(EnvBuild(clauses=()),))
        document = execute_plan(plan, ctx())
        assert [c.tag for c in document.root.child_elements()] == ["no"]

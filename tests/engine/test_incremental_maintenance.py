"""Incremental derived-structure maintenance: deltas must equal a fresh
rebuild after every update (the ``debug_checks`` cross-check does the
comparison inside the engine and raises on divergence)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database

SHOP = ('<shop>'
        '<item sku="s0"><name>n0</name><price>10</price></item>'
        '<item sku="s1"><name>n1</name><price>20</price></item>'
        '<box><item sku="s2"><name>n2</name><price>5</price></item></box>'
        '</shop>')


@pytest.fixture
def db():
    database = Database(debug_checks=True)
    database.load(SHOP, uri="shop.xml")
    return database


class TestIncrementalPath:
    def test_updates_do_not_full_rebuild(self, monkeypatch):
        database = Database()
        database.load(SHOP, uri="shop.xml")

        def boom(document):  # pragma: no cover - fails the test if hit
            raise AssertionError("happy path must not rebuild derived "
                                 "structures")

        monkeypatch.setattr(database, "_rebuild_derived", boom)
        database.insert("/shop", '<item sku="x"><name>nx</name>'
                                 '<price>1</price></item>')
        database.delete("/shop/item[1]")
        assert database.query("//item/name").values() == ["n1", "n2", "nx"]

    def test_insert_cross_checked(self, db):
        db.insert("/shop", '<item sku="x"><name>nx</name>'
                           '<price>42</price></item>', position=0)
        assert db.query("//item[price = 42]/name").values() == ["nx"]

    def test_delete_cross_checked(self, db):
        db.delete("/shop/box")
        assert db.query("//item").values() and \
            len(db.query("//item")) == 2

    def test_nested_insert_and_delete_cross_checked(self, db):
        db.insert("/shop/box/item", "<note>deep</note>")
        db.delete("/shop/item[1]")
        assert db.query("//item[note]/name").values() == ["n2"]

    def test_generation_counts_updates(self, db):
        document = db.document()
        assert document.generation == 0
        db.insert("/shop", "<extra/>")
        db.delete("/shop/extra")
        # MVCC: updates publish successor versions; the pinned one is
        # frozen at its generation and the current one counts both.
        assert document.generation == 0
        assert db.document().generation == 2
        assert db.document() is not document

    def test_rebuild_escape_hatch_matches_incremental(self, db):
        db.insert("/shop", '<item sku="y"><name>ny</name>'
                           '<price>7</price></item>')
        before = db.query("//item/name").values()
        db.rebuild_derived(force=True)
        db.verify_derived(db.document())
        assert db.query("//item/name").values() == before

    def test_index_scan_after_interleaved_updates(self, db):
        db.insert("/shop", '<item sku="z"><name>anvil</name>'
                           '<price>99</price></item>')
        db.delete("/shop/item[1]")
        result = db.query("//item[name = 'anvil']", strategy="index-scan")
        assert result.values() == ["anvil99"]
        ranged = db.query("//item[price > 50]", strategy="index-scan")
        assert ranged.values() == ["anvil99"]

    def test_value_index_compaction_keeps_answers(self):
        database = Database(debug_checks=True)
        items = "".join(f'<item sku="s{i}"><name>n{i}</name>'
                        f"<price>{i}</price></item>" for i in range(60))
        database.load(f"<shop>{items}</shop>", uri="shop.xml")
        rng = random.Random(1)
        for _ in range(40):
            count = len(database.query("/shop/item"))
            database.delete(f"/shop/item[{rng.randint(1, count)}]")
        survivors = database.query("//item/name").values()
        probe = survivors[0]
        result = database.query(f"//item[name = '{probe}']",
                                strategy="index-scan")
        assert result.values()[0].startswith(probe)


@st.composite
def update_scripts(draw):
    script = []
    for step in range(draw(st.integers(1, 6))):
        kind = draw(st.sampled_from(["insert", "insert_nested", "delete"]))
        if kind == "insert":
            script.append(("insert", "/shop",
                           f'<item sku="h{step}"><name>h{step}</name>'
                           f"<price>{draw(st.integers(1, 99))}</price>"
                           f"</item>", draw(st.integers(0, 3))))
        elif kind == "insert_nested":
            script.append(("insert", "/shop/box",
                           f"<gift><name>g{step}</name></gift>", 0))
        else:
            script.append(("delete", draw(st.integers(1, 4)), None, None))
    return script


@given(update_scripts())
@settings(max_examples=25, deadline=None)
def test_random_scripts_survive_debug_cross_check(script):
    database = Database(debug_checks=True)
    database.load(SHOP, uri="shop.xml")
    for action in script:
        if action[0] == "insert":
            _, path, fragment, position = action
            if not database.query(path).items:
                continue
            count = len(database.query(path + "/*"))
            database.insert(path, fragment,
                            position=min(position, count))
        else:
            _, index, _, _ = action
            count = len(database.query("/shop/item"))
            if count == 0:
                continue
            database.delete(f"/shop/item[{min(index, count)}]")
    for query in ("//item", "//item/name", "//name", "count(//item)",
                  "//item[price > 15]/name"):
        reference = [item.string_value()
                     if hasattr(item, "string_value") else item
                     for item in database.reference_query(query)]
        for strategy in ("auto", "nok", "structural-join"):
            assert database.query(query, strategy=strategy).values() \
                == reference, (query, strategy)

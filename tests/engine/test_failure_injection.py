"""Failure injection: malformed inputs, degenerate documents, and
unsatisfiable queries must fail cleanly (or return empty), never corrupt
state or crash with non-library errors."""

import pytest

from repro.engine.database import Database
from repro.errors import (
    ExecutionError,
    QuerySyntaxError,
    QueryTypeError,
    ReproError,
    XMLSyntaxError,
)


class TestMalformedInputs:
    def test_malformed_xml_raises_cleanly(self):
        database = Database()
        with pytest.raises(XMLSyntaxError):
            database.load("<a><b></a>", uri="bad.xml")
        # The failed load must not leave a half-registered document.
        with pytest.raises(ExecutionError):
            database.document("bad.xml")

    @pytest.mark.parametrize("query", [
        "", "//", "/a[", "for $x in", "<a>{</a>", "1 +", "$",
        "//a[@]", "let $x := 1", "some $x in //a",
    ])
    def test_malformed_queries_raise_syntax_errors(self, query):
        database = Database()
        database.load("<a/>", uri="a.xml")
        with pytest.raises(QuerySyntaxError):
            database.query(query)

    def test_type_errors_are_library_errors(self):
        database = Database()
        database.load("<a/>", uri="a.xml")
        with pytest.raises(ReproError):
            database.query("count(1)")
        with pytest.raises(ReproError):
            database.query("let $x := 5 return $x/y")


class TestDegenerateDocuments:
    def test_single_element_document(self):
        database = Database()
        database.load("<only/>", uri="tiny.xml")
        assert len(database.query("/only")) == 1
        assert database.query("//anything").items == []
        assert database.query("count(//only)").items == [1.0]

    def test_document_with_only_attributes(self):
        database = Database()
        database.load('<r a="1" b="2"/>', uri="attrs.xml")
        assert len(database.query("//@*")) == 2
        result = database.query("/r[@a = '1']")
        assert len(result) == 1

    def test_deep_chain_document(self):
        depth = 500
        text = "".join(f"<n{i}>" for i in range(depth))
        text += "end"
        text += "".join(f"</n{i}>" for i in reversed(range(depth)))
        database = Database()
        database.load(text, uri="deep.xml")
        assert database.query(f"//n{depth - 1}").values() == ["end"]
        assert len(database.query("//*")) == depth

    def test_wide_document(self):
        database = Database()
        database.load("<r>" + "<i/>" * 2000 + "</r>", uri="wide.xml")
        assert len(database.query("/r/i")) == 2000

    def test_unicode_content(self):
        database = Database()
        database.load("<r><t>héllo wörld 漢字</t></r>", uri="u.xml")
        assert database.query("//t").values() == ["héllo wörld 漢字"]
        assert len(database.query("//t[. = 'héllo wörld 漢字']")) == 1
        result = database.query("//t[. = 'héllo wörld 漢字']",
                                strategy="index-scan")
        assert len(result) == 1

    def test_empty_elements_everywhere(self):
        database = Database()
        database.load("<r><a/><a></a><a/></r>", uri="e.xml")
        assert len(database.query("//a")) == 3
        assert database.query("//a/text()").items == []


class TestUnsatisfiableQueries:
    @pytest.fixture
    def db(self):
        database = Database()
        database.load("<r><a><b>1</b></a></r>", uri="r.xml")
        return database

    @pytest.mark.parametrize("strategy", [
        "nok", "partitioned", "structural-join", "twigstack",
        "navigational",
    ])
    def test_missing_tag_empty_everywhere(self, db, strategy):
        assert db.query("//ghost", strategy=strategy).items == []
        assert db.query("//a/ghost", strategy=strategy).items == []
        assert db.query("//ghost//a", strategy=strategy).items == []

    def test_contradictory_value(self, db):
        assert db.query("//b[. = 'nope']").items == []
        assert db.query("//b[. > 100]").items == []

    def test_impossible_structure(self, db):
        assert db.query("//b[a]").items == []
        assert db.query("//b/b/b/b").items == []

    def test_flwor_over_empty(self, db):
        result = db.query(
            'for $x in doc("r.xml")//ghost return <hit>{$x}</hit>')
        assert result.items == []


class TestStateIsolation:
    def test_failed_query_leaves_database_usable(self):
        database = Database()
        database.load("<a><b>1</b></a>", uri="a.xml")
        with pytest.raises(ReproError):
            database.query("frobnicate(//b)")
        assert database.query("//b").values() == ["1"]

    def test_counters_reset_per_query(self):
        database = Database()
        database.load("<a>" + "<b/>" * 100 + "</a>", uri="a.xml")
        first = database.query("//b")
        second = database.query("//b")
        assert second.io["page_reads"] <= first.io["page_reads"] + 1

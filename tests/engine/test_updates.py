"""Tests for engine-level updates: every structure stays aligned."""

import pytest

from repro.engine.database import Database
from repro.errors import ExecutionError

SHOP = """
<shop>
  <item sku="a1"><name>anvil</name><price>9</price></item>
  <item sku="a2"><name>rope</name><price>10</price></item>
</shop>
"""


@pytest.fixture
def db():
    database = Database()
    database.load(SHOP, uri="shop.xml")
    return database


NEW_ITEM = ('<item sku="a9"><name>piano</name><price>500</price></item>')


class TestInsert:
    def test_insert_visible_to_all_strategies(self, db):
        db.insert("/shop", NEW_ITEM)
        for strategy in ("nok", "structural-join", "twigstack",
                         "navigational"):
            result = db.query("//item/name", strategy=strategy)
            assert "piano" in result.values(), strategy

    def test_insert_position(self, db):
        db.insert("/shop", NEW_ITEM, position=0)
        names = db.query("//item/name").values()
        assert names[0] == "piano"

    def test_value_index_sees_new_content(self, db):
        db.insert("/shop", NEW_ITEM)
        result = db.query("//item[name = 'piano']", strategy="index-scan")
        assert len(result) == 1

    def test_value_index_still_finds_old_content(self, db):
        # Insertion at the front shifts every pre-order id; the rebuilt
        # index must still resolve the old values to the right nodes.
        db.insert("/shop", NEW_ITEM, position=0)
        result = db.query("//item[name = 'rope']", strategy="index-scan")
        assert len(result) == 1
        assert result.values()[0] == "rope10"

    def test_numeric_index_updated(self, db):
        db.insert("/shop", NEW_ITEM)
        result = db.query("//item[price > 100]", strategy="index-scan")
        assert len(result) == 1

    def test_statistics_updated(self, db):
        before = db.document().statistics.count("item")
        db.insert("/shop", NEW_ITEM)
        assert db.document().statistics.count("item") == before + 1

    def test_metrics_returned(self, db):
        metrics = db.insert("/shop", NEW_ITEM)
        assert metrics["succinct"]["inserted_nodes"] == 6
        assert "relabelled" in metrics["interval"]

    def test_reference_and_engine_agree_after_insert(self, db):
        db.insert("/shop", NEW_ITEM, position=1)
        for query in ("//item", "//name", "/shop/item[2]/name",
                      "//item[price = 10]"):
            engine = db.query(query)
            reference = db.reference_query(query)
            assert [n.node_id for n in engine.items] == \
                [n.node_id for n in reference], query

    def test_multiple_inserts(self, db):
        for index in range(3):
            db.insert("/shop", f"<item sku='n{index}'>"
                               f"<name>thing{index}</name></item>")
        assert len(db.query("//item")) == 5

    def test_nested_insert_target(self, db):
        db.insert("/shop/item[1]", "<note>fragile</note>")
        result = db.query("//item[note]/name")
        assert result.values() == ["anvil"]


class TestInsertErrors:
    def test_ambiguous_target_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.insert("//item", NEW_ITEM)

    def test_missing_target_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.insert("/shop/ghost", NEW_ITEM)

    def test_bad_fragment_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.insert("/shop", "just text")
        with pytest.raises(ExecutionError):
            db.insert("/shop", "<a/><b/>")

    def test_bad_position_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.insert("/shop", NEW_ITEM, position=99)


class TestDelete:
    def test_delete_visible_to_all_strategies(self, db):
        db.delete("/shop/item[1]")
        for strategy in ("nok", "structural-join", "navigational"):
            names = db.query("//item/name", strategy=strategy).values()
            assert names == ["rope"], strategy

    def test_delete_then_insert(self, db):
        db.delete("/shop/item[2]")
        db.insert("/shop", NEW_ITEM)
        assert db.query("//item/name").values() == ["anvil", "piano"]

    def test_value_index_after_delete(self, db):
        db.delete("/shop/item[1]")
        assert db.query("//item[name = 'anvil']",
                        strategy="index-scan").items == []
        assert len(db.query("//item[name = 'rope']",
                            strategy="index-scan")) == 1

    def test_metrics(self, db):
        metrics = db.delete("/shop/item[1]")
        assert metrics["succinct"]["removed_nodes"] == 6
        assert metrics["interval"]["removed_nodes"] == 6

    def test_reference_agrees_after_delete(self, db):
        db.delete("/shop/item[2]")
        for query in ("//item", "//name", "count(//item)"):
            engine = db.query(query)
            reference = db.reference_query(query)
            assert engine.values() == [
                n.string_value() if hasattr(n, "string_value") else n
                for n in reference], query

    def test_store_invariants_after_delete(self, db):
        db.delete("/shop/item[1]")
        interval = db.document().interval
        posts = sorted(r.post for r in interval.nodes)
        assert posts == list(range(len(interval.nodes)))
        for index, record in enumerate(interval.nodes):
            assert record.pre == index
            if record.parent >= 0:
                assert interval.node(record.parent).contains(record)

    def test_cannot_delete_ambiguous(self, db):
        import pytest as _pytest
        with _pytest.raises(ExecutionError):
            db.delete("//item")

    def test_cannot_delete_missing(self, db):
        import pytest as _pytest
        with _pytest.raises(ExecutionError):
            db.delete("//ghost")

"""End-to-end tests for the Database facade: every strategy, XQuery
through the engine, EXPLAIN, reports, and error handling."""

import pytest

from repro.engine.database import Database
from repro.errors import ExecutionError
from repro.xml.model import Element

BIB = """
<bib>
  <book year="1994"><title>TCP/IP</title>
    <author><last>Stevens</last></author><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author><last>Abiteboul</last></author>
    <author><last>Buneman</last></author><price>39.95</price></book>
  <book year="1999"><title>Economics</title><price>129.95</price></book>
</bib>
"""

STRATEGIES = ["auto", "nok", "partitioned", "structural-join",
              "pathstack", "twigstack", "navigational"]

QUERIES = [
    "/bib/book/title",
    "//book[price > 50]/title",
    "//last",
    "/bib/book[@year = '1994']",
    "//book[author]/price",
]


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.load(BIB, uri="bib.xml")
    return database


class TestQueryAcrossStrategies:
    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_strategies_agree_with_reference(self, db, query, strategy):
        expected = db.reference_query(query)
        result = db.query(query, strategy=strategy)
        assert [n.node_id for n in result.items] == \
            [n.node_id for n in expected]

    def test_index_scan_strategy(self, db):
        result = db.query("//book[title = 'Economics']",
                          strategy="index-scan")
        assert result.values() == ["Economics129.95"]
        assert result.strategy == "index-scan"

    def test_result_metadata(self, db):
        result = db.query("/bib/book/title", strategy="nok")
        assert result.strategy == "nok"
        assert result.elapsed_seconds >= 0
        assert result.stats["solutions"] == 3
        assert result.io["page_reads"] >= 0
        assert len(result) == 3
        assert list(result) == result.items

    def test_values_and_serialize(self, db):
        result = db.query("/bib/book[1]/title")
        assert result.values() == ["TCP/IP"]
        assert result.serialize() == "<title>TCP/IP</title>"


class TestXQueryThroughEngine:
    def test_flwor(self, db):
        result = db.query(
            'for $b in doc("bib.xml")/bib/book where $b/price > 50 '
            "order by $b/price return $b/title")
        assert result.values() == ["TCP/IP", "Economics"]

    def test_flwor_uses_physical_tau(self, db):
        result = db.query(
            'for $b in doc("bib.xml")/bib/book return $b/title',
            strategy="nok")
        assert result.strategy == "nok"
        assert len(result) == 3

    def test_constructor_query(self, db):
        result = db.query(
            '<list>{ for $b in doc("bib.xml")/bib/book '
            "return <entry>{$b/title/text()}</entry> }</list>")
        assert len(result) == 1
        entries = list(result.items[0].child_elements("entry"))
        assert [e.string_value() for e in entries] == [
            "TCP/IP", "Data on the Web", "Economics"]

    def test_aggregation(self, db):
        result = db.query('count(doc("bib.xml")//author)')
        assert result.items == [3.0]

    def test_positional_fallback(self, db):
        # Positional predicates cannot enter patterns; the engine must
        # still answer through the interpreter fallback.
        result = db.query("/bib/book[2]/title")
        assert result.values() == ["Data on the Web"]


class TestMultipleDocuments:
    def test_two_documents(self):
        database = Database()
        database.load("<a><x/></a>", uri="one.xml")
        database.load("<b><y/></b>", uri="two.xml")
        assert len(database.query('doc("two.xml")/b/y')) == 1
        assert len(database.query("/a/x", uri="one.xml")) == 1

    def test_default_document_is_first(self):
        database = Database()
        database.load("<a/>", uri="one.xml")
        database.load("<b/>", uri="two.xml")
        assert database.document().uri == "one.xml"


class TestExplainAndReports:
    def test_explain_shows_strategy_and_pattern(self, db):
        text = db.explain("/bib/book/title")
        assert "Tau" in text
        assert "tau strategy:" in text
        assert "book" in text

    def test_explain_respects_forced_strategy(self, db):
        text = db.explain("/bib/book", strategy="navigational")
        assert "navigational" in text

    def test_storage_report(self, db):
        report = db.storage_report()
        assert report["nodes"] == db.document().succinct.node_count
        assert report["succinct"]["total"] > 0
        assert report["interval"]["total"] > 0

    def test_auto_picks_nok_for_local_paths(self, db):
        result = db.query("/bib/book/title", strategy="auto")
        assert result.strategy == "nok"


class TestErrors:
    def test_unknown_strategy(self, db):
        with pytest.raises(ExecutionError):
            db.query("/bib", strategy="warp-drive")

    def test_unknown_document(self, db):
        with pytest.raises(ExecutionError):
            db.document("nope.xml")

    def test_empty_database(self):
        with pytest.raises(ExecutionError):
            Database().query("/a")

    def test_load_tree(self):
        from repro.xml.model import Document
        tree = Document(uri="t.xml")
        tree.append(Element("root"))
        database = Database()
        database.load_tree(tree, uri="t.xml")
        assert len(database.query("/root")) == 1


class TestExplainPartitions:
    def test_partitioned_explain_lists_cuts(self, db):
        text = db.explain("//book//last", strategy="partitioned")
        assert "partitions: 3 NoK units" in text
        assert "[//, //]" in text


class TestExternalVariables:
    def test_variable_in_predicate(self, db):
        result = db.query("//book[title = $t]/price",
                          variables={"t": ["Economics"]})
        assert result.values() == ["129.95"]

    def test_variable_in_flwor(self, db):
        result = db.query(
            'for $b in doc("bib.xml")//book where $b/price > $limit '
            "return $b/title", variables={"limit": [50.0]})
        assert result.values() == ["TCP/IP", "Economics"]

    def test_undefined_variable_still_errors(self, db):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            db.query("//book[title = $missing]")


class TestMultiDocumentJoins:
    def test_flwor_join_across_documents(self):
        database = Database()
        database.load("<orders><o item='i2'/><o item='i3'/></orders>",
                      uri="orders.xml")
        database.load("<items><i id='i1'>anvil</i><i id='i2'>rope</i>"
                      "<i id='i3'>rocket</i></items>", uri="items.xml")
        result = database.query(
            'for $o in doc("orders.xml")//o, '
            '$i in doc("items.xml")//i '
            "where $o/@item = $i/@id "
            "return $i/text()")
        assert result.values() == ["rope", "rocket"]

    def test_constructor_merging_two_documents(self):
        database = Database()
        database.load("<a><x>1</x></a>", uri="a.xml")
        database.load("<b><y>2</y></b>", uri="b.xml")
        result = database.query(
            '<merged>{doc("a.xml")//x}{doc("b.xml")//y}</merged>')
        assert [c.tag for c in result.items[0].child_elements()] == \
            ["x", "y"]

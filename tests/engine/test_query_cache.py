"""Cache correctness: warm results identical to cold and to the
reference evaluator, invalidation on every update, counters exposed."""

import random

import pytest

from repro.engine.cache import LRUCache, normalize_query
from repro.engine.database import Database

BIB = """
<bib>
  <book year="1994"><title>TCP/IP Illustrated</title>
    <author><last>Stevens</last></author><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author><last>Abiteboul</last></author><price>39.95</price></book>
  <book year="1999"><title>Economics</title>
    <author><last>Varian</last></author><price>100</price></book>
</bib>
"""

QUERY_POOL = [
    "//book/title",
    "/bib/book[price > 50]/title",
    "//book[@year = '2000']",
    "//author/last",
    "count(//book)",
    "//book[author/last = 'Stevens']/price",
    "/bib/book[2]",
]


@pytest.fixture
def db():
    database = Database()
    database.load(BIB, uri="bib.xml")
    return database


class TestPlanAndResultCache:
    def test_warm_equals_cold_and_reference_randomized(self, db):
        rng = random.Random(7)
        queries = [rng.choice(QUERY_POOL) for _ in range(25)]
        cold = {}
        for query in queries:
            result = db.query(query)
            cold.setdefault(query, result.values())
        for query in queries:
            warm = db.query(query)
            assert warm.values() == cold[query], query
            reference = db.reference_query(query)
            expected = [item.string_value()
                        if hasattr(item, "string_value") else item
                        for item in reference]
            assert warm.values() == expected, query

    def test_second_run_hits_both_caches(self, db):
        db.query("//book/title")
        warm = db.query("//book/title")
        assert warm.stats["cache"]["plan"] == "hit"
        assert warm.stats["cache"]["result"] == "hit"
        # A result-cache hit does no physical work.
        assert warm.stats["nodes_visited"] == 0
        assert all(count == 0 for count in warm.io.values())

    def test_whitespace_variants_share_a_plan(self, db):
        db.query("//book/title")
        warm = db.query("  //book/title \n")
        assert warm.stats["cache"]["plan"] == "hit"
        assert normalize_query(" a  b \n c ") == "a b c"

    def test_counters_in_stats_and_report(self, db):
        db.query("//book/title")
        result = db.query("//book/title")
        info = result.stats["cache"]
        for cache_name in ("plan_cache", "result_cache"):
            for counter in ("hits", "misses", "evictions"):
                assert counter in info[cache_name], (cache_name, counter)
        report = db.cache_report()
        assert report["plan_cache"]["hits"] >= 1
        assert report["result_cache"]["hits"] >= 1
        assert report["generations"] == {"bib.xml": 0}

    def test_strategies_cached_separately(self, db):
        auto = db.query("//book/title")
        nok = db.query("//book/title", strategy="nok")
        assert auto.values() == nok.values()
        # Different strategy key -> first nok run is a result miss.
        assert nok.stats["cache"]["result"] == "miss"

    def test_variables_bypass_result_cache(self, db):
        result = db.query("//book[title = $t]/price",
                          variables={"t": ["Economics"]})
        assert result.stats["cache"]["result"] == "bypass"
        other = db.query("//book[title = $t]/price",
                         variables={"t": ["Data on the Web"]})
        assert other.values() != result.values()

    def test_caches_can_be_disabled(self):
        database = Database(plan_cache_size=0, result_cache_size=0)
        database.load(BIB, uri="bib.xml")
        database.query("//book/title")
        again = database.query("//book/title")
        assert again.stats["cache"]["plan"] == "miss"
        assert again.stats["cache"]["result"] == "miss"

    def test_lru_eviction_counted(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.stats.evictions == 1
        assert cache.get("a") is None          # evicted (LRU)
        assert cache.get("c") == 3


class TestInvalidation:
    def test_insert_invalidates_results(self, db):
        before = db.query("//book/title")
        assert len(before) == 3
        db.insert("/bib", "<book><title>New</title>"
                          "<price>1</price></book>")
        after = db.query("//book/title")
        assert after.stats["cache"]["result"] == "miss"
        assert len(after) == 4
        assert "New" in after.values()

    def test_delete_invalidates_results(self, db):
        db.query("//book/title")
        db.delete("/bib/book[1]")
        after = db.query("//book/title")
        assert after.stats["cache"]["result"] == "miss"
        assert len(after) == 2
        # And re-warms correctly.
        rewarm = db.query("//book/title")
        assert rewarm.stats["cache"]["result"] == "hit"
        assert rewarm.values() == after.values()

    def test_stale_results_impossible_after_update_storm(self, db):
        rng = random.Random(3)
        for step in range(6):
            count = len(db.query("//book"))
            if rng.random() < 0.5 or count <= 1:
                db.insert("/bib", f"<book><title>t{step}</title>"
                                  f"<price>{step}</price></book>")
            else:
                db.delete(f"/bib/book[{rng.randint(1, count)}]")
            for query in ("//book/title", "count(//book)"):
                engine = db.query(query).values()
                reference = [item.string_value()
                             if hasattr(item, "string_value") else item
                             for item in db.reference_query(query)]
                assert engine == reference, (step, query)

    def test_reload_invalidates_results(self, db):
        db.query("//book/title")
        db.load("<bib><book><title>Only</title></book></bib>",
                uri="bib.xml")
        after = db.query("//book/title")
        assert after.values() == ["Only"]


class TestPreparedQueries:
    def test_prepare_and_run(self, db):
        prepared = db.prepare("//book[price > 50]/title")
        first = prepared.run()
        second = prepared()
        assert first.values() == second.values() == \
            ["TCP/IP Illustrated", "Economics"]
        assert second.stats["cache"]["result"] == "hit"

    def test_prepared_query_sees_updates(self, db):
        prepared = db.prepare("count(//book)")
        assert prepared.run().values() == [3.0]
        db.insert("/bib", "<book><title>X</title></book>")
        assert prepared.run().values() == [4.0]

    def test_prepared_with_strategy_and_variables(self, db):
        prepared = db.prepare("//book[title = $t]")
        result = prepared.run(variables={"t": ["Economics"]})
        assert len(result) == 1
        nok = prepared.run(strategy="nok",
                           variables={"t": ["Economics"]})
        assert nok.values() == result.values()

    def test_prepared_explain(self, db):
        prepared = db.prepare("//book/title")
        assert "tau strategy" in prepared.explain()


class TestStrategyMemo:
    def test_memo_fills_and_expires_on_update(self, db):
        db.query("//book/title", strategy="auto")
        assert db.cache_report()["strategy_memo"]["bib.xml"] >= 1
        generation = db.document().statistics.generation
        db.insert("/bib", "<book><title>Y</title></book>")
        # MVCC: the insert publishes a successor version whose
        # statistics generation moved on; it starts with a fresh memo,
        # so nothing stale can be consulted.  A fresh query memoizes
        # under the new generation in the new version.
        document = db.document()
        assert document.statistics.generation > generation
        db.result_cache.clear()
        db.query("//book/title", strategy="auto")
        assert any(key[1] == document.statistics.generation
                   for key in document.strategy_memo)

    def test_io_accounting_isolated_between_queries(self, db):
        # Two interleaved prepared queries: each report only counts its
        # own touches (the seed reset the shared counters instead).
        db.clear_caches()
        total_before = db.pages.counters.snapshot()["logical_touches"]
        first = db.query("//book/title", strategy="nok")
        second = db.query("//author/last", strategy="navigational")
        total_after = db.pages.counters.snapshot()["logical_touches"]
        assert first.io["logical_touches"] > 0
        assert second.io["logical_touches"] > 0
        assert (first.io["logical_touches"] + second.io["logical_touches"]
                == total_after - total_before)

"""Property test: random update sequences keep every structure aligned.

Random interleavings of inserts and deletes through the Database must
leave the engine agreeing with the reference evaluator on a probe query
set, and both stores' invariants intact — the strongest guarantee the
update path offers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database

BASE = ('<shop>'
        '<item sku="s0"><name>n0</name><price>10</price></item>'
        '<item sku="s1"><name>n1</name><price>20</price></item>'
        '</shop>')

PROBES = [
    "//item", "//item/name", "//item[price > 15]", "//@sku",
    "count(//item)", "//item[name = 'n1']",
]


@st.composite
def update_scripts(draw):
    """A short sequence of (op, payload) update actions."""
    script = []
    for step in range(draw(st.integers(1, 5))):
        if draw(st.booleans()):
            sku = f"x{step}"
            price = draw(st.integers(1, 99))
            script.append(("insert",
                           f'<item sku="{sku}"><name>new{step}</name>'
                           f"<price>{price}</price></item>",
                           draw(st.integers(0, 2))))
        else:
            script.append(("delete", draw(st.integers(1, 3)), None))
    return script


@given(update_scripts())
@settings(max_examples=30, deadline=None)
def test_updates_keep_engine_and_reference_aligned(script):
    database = Database()
    database.load(BASE, uri="shop.xml")
    for action in script:
        if action[0] == "insert":
            _, fragment, position = action
            count = len(database.query("/shop/item"))
            database.insert("/shop", fragment,
                            position=min(position, count))
        else:
            _, index, _ = action
            count = len(database.query("/shop/item"))
            if count == 0:
                continue
            database.delete(f"/shop/item[{min(index, count)}]")

    # Engine vs reference on every probe, via two different strategies.
    for query in PROBES:
        reference = database.reference_query(query)
        for strategy in ("nok", "structural-join"):
            result = database.query(query, strategy=strategy)
            assert result.values() == [
                item.string_value() if hasattr(item, "string_value")
                else item for item in reference], (query, strategy)

    # Store invariants.
    interval = database.document().interval
    posts = sorted(record.post for record in interval.nodes)
    assert posts == list(range(len(interval.nodes)))
    for index, record in enumerate(interval.nodes):
        assert record.pre == index
        assert record.pre <= record.end < len(interval.nodes)
    succinct = database.document().succinct
    assert succinct.node_count == len(interval.nodes)
    for preorder in range(succinct.node_count):
        assert succinct.tag(preorder) == interval.node(preorder).tag

"""Tests for model↔storage alignment and the physical executor plumbing."""

import pytest

from repro.engine.database import Database
from repro.engine.mapping import storage_node_list, storage_preorder_map
from repro.xml.model import Document, Element, Text
from repro.xml.parser import parse


class TestMapping:
    def test_alignment_with_succinct_numbering(self):
        text = ('<a x="1" y="2">t1<b z="3">t2</b>t3<!--c--><?p d?></a>')
        tree = parse(text, keep_whitespace=True)
        database = Database()
        document = database.load_tree(tree, uri="m.xml")
        node_list = storage_node_list(tree)
        assert len(node_list) == document.succinct.node_count
        from repro.algebra.operators import storage_tag
        for preorder, node in enumerate(node_list):
            assert storage_tag(node) == document.succinct.tag(preorder), \
                preorder

    def test_adjacent_texts_merge_to_one_storage_node(self):
        tree = Document()
        root = tree.append(Element("r"))
        first = root.append(Text("a"))
        second = root.append(Text("b"))  # bypasses append_text merging
        mapping = storage_preorder_map(tree)
        assert mapping[first.node_id] == mapping[second.node_id]
        node_list = storage_node_list(tree)
        assert len(node_list) == 3  # document, r, merged text

    def test_map_round_trips(self):
        tree = parse("<a><b/><c><d/></c></a>")
        mapping = storage_preorder_map(tree)
        node_list = storage_node_list(tree)
        for node_id, preorder in mapping.items():
            assert node_list[preorder].node_id == node_id


class TestSharedScan:
    def test_multiple_matchers_one_pass(self):
        from repro.algebra.pattern_graph import compile_path
        from repro.physical.nok import NoKMatcher, run_shared_scan
        from repro.xpath.parser import parse_xpath

        database = Database()
        database.load(
            "<r><a><x>1</x></a><b><x>2</x></b><a><y/></a></r>",
            uri="s.xml")
        runtime = database.document().runtime

        anchored = NoKMatcher(compile_path(parse_xpath("/r/a")),
                              anchored=True)
        floating_pattern = compile_path(parse_xpath("/r/b"))
        # Make the b-partition unanchored at its 'b' vertex like the
        # partitioner would: take the subpattern rooted at b.
        from repro.physical.partition import partition_pattern
        floating = partition_pattern(
            compile_path(parse_xpath("//x")))[1]
        floating.pattern.vertices[floating.pattern.root].output = True
        matcher_b = NoKMatcher(floating.pattern, anchored=False)

        results = run_shared_scan(runtime, [anchored, matcher_b])
        a_output = anchored.pattern.output_vertices()[0].vertex_id
        a_matches = sorted({b[a_output] for b in results[0]
                            if a_output in b})
        x_matches = sorted({node for b in results[1]
                            for node in b.values()})
        assert len(a_matches) == 2
        assert len(x_matches) == 2
        # Both matchers saw exactly one scan's worth of nodes.
        assert anchored.stats.nodes_visited == \
            database.document().succinct.node_count
        assert matcher_b.stats.nodes_visited == \
            anchored.stats.nodes_visited

    def test_shared_scan_charges_one_structure_read(self):
        from repro.algebra.pattern_graph import compile_path
        from repro.physical.nok import NoKMatcher, run_shared_scan
        from repro.xpath.parser import parse_xpath

        database = Database(pool_pages=4, page_size=256)
        database.load("<r>" + "<a><b/></a>" * 200 + "</r>", uri="x.xml")
        runtime = database.document().runtime
        database.pages.reset()
        matchers = [NoKMatcher(compile_path(parse_xpath("/r/a")))
                    for _ in range(4)]
        run_shared_scan(runtime, matchers)
        one_scan_reads = database.pages.counters.page_reads
        database.pages.reset()
        NoKMatcher(compile_path(parse_xpath("/r/a"))).run(runtime)
        single_reads = database.pages.counters.page_reads
        assert one_scan_reads == single_reads


class TestExecutorPlumbing:
    def test_strategy_propagates_from_nested_tau(self):
        database = Database()
        database.load("<r><a>1</a><a>2</a></r>", uri="r.xml")
        result = database.query(
            'for $a in doc("r.xml")/r/a return $a', strategy="nok")
        assert result.strategy == "nok"

    def test_stats_accumulate_across_taus(self):
        database = Database()
        database.load("<r><a>1</a></r>", uri="r.xml")
        result = database.query(
            'for $a in doc("r.xml")/r/a for $b in doc("r.xml")//a '
            "return 1", strategy="auto")
        assert result.stats["solutions"] >= 2

    def test_gamma_output_through_engine_is_detached_tree(self):
        database = Database()
        database.load("<r><a>x</a></r>", uri="r.xml")
        result = database.query(
            '<out>{ for $a in doc("r.xml")//a return <i>{$a/text()}</i> '
            "}</out>")
        out = result.items[0]
        assert out.tag == "out"
        assert [c.string_value() for c in out.child_elements()] == ["x"]

"""EXPLAIN ANALYZE tests: instrumented execution reports per-operator
actuals (rows, nodes, postings, pages, time) next to the cost model's
estimates, across the join strategies the paper compares."""

import pytest

from repro.engine.database import Database
from repro.observability.analyze import ExplainAnalysis, OperatorRecord

BIB = """
<bib>
  <book year="1994"><title>TCP/IP</title>
    <author><last>Stevens</last></author><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author><last>Abiteboul</last></author>
    <author><last>Buneman</last></author><price>39.95</price></book>
  <book year="1999"><title>Economics</title><price>129.95</price></book>
</bib>
"""

QUERY = "//book[price > 50]/title"


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.load(BIB, uri="bib.xml")
    return database


class TestExplainWithoutAnalyze:
    def test_still_returns_plain_text(self, db):
        text = db.explain(QUERY)
        assert isinstance(text, str)
        assert "tau strategy:" in text


class TestExplainAnalyze:
    @pytest.mark.parametrize("strategy",
                             ["nok", "twigstack", "structural-join"])
    def test_actuals_next_to_estimates(self, db, strategy):
        analysis = db.explain(QUERY, strategy=strategy, analyze=True)
        assert isinstance(analysis, ExplainAnalysis)
        assert analysis.result_rows == 2  # 65.95 and 129.95
        assert analysis.operators, "at least one tau instrumented"
        record = analysis.operators[0]
        assert isinstance(record, OperatorRecord)
        # Actuals.
        assert record.actual_rows == 2
        assert record.elapsed_seconds > 0
        assert record.pages_read >= 0
        assert record.postings_scanned + record.nodes_visited > 0
        # Estimates from the cost model, next to the actuals.
        assert record.est_rows > 0
        assert record.rows_drift == pytest.approx(
            record.actual_rows / record.est_rows)
        # The strategy actually used is reported per operator.
        assert record.strategy
        if strategy != "nok":  # nok falls back (non-local // edge)
            assert record.strategy == strategy

    def test_est_pages_present_for_costed_strategy(self, db):
        analysis = db.explain(QUERY, strategy="twigstack", analyze=True)
        record = analysis.operators[0]
        assert record.est_pages is not None
        assert record.est_pages >= 0

    def test_join_strategy_reports_join_actuals(self, db):
        analysis = db.explain(QUERY, strategy="structural-join",
                              analyze=True)
        record = analysis.operators[0]
        assert record.structural_joins > 0
        assert record.intermediate_results > 0

    def test_detail_counters_surface(self, db):
        analysis = db.explain(QUERY, strategy="twigstack", analyze=True)
        record = analysis.operators[0]
        # The twig evaluator notes its per-vertex stream sizes.
        assert any(key.startswith("stream.") for key in record.detail)

    def test_rendered_table(self, db):
        analysis = db.explain(QUERY, strategy="structural-join",
                              analyze=True)
        rendered = str(analysis)
        assert "EXPLAIN ANALYZE" in rendered
        for header in ("operator", "est.rows", "rows", "drift",
                       "pages", "time"):
            assert header in rendered
        assert "total: 2 rows" in rendered

    def test_to_dict_round_trip(self, db):
        analysis = db.explain(QUERY, strategy="twigstack", analyze=True)
        as_dict = analysis.to_dict()
        assert as_dict["result_rows"] == 2
        assert as_dict["operators"][0]["actual_rows"] == 2
        assert "rows_drift" in as_dict["operators"][0]

    def test_counts_into_metric(self, db):
        before = db.observability.registry.value(
            "repro_explain_analyze_total")
        db.explain(QUERY, analyze=True)
        after = db.observability.registry.value(
            "repro_explain_analyze_total")
        assert after == before + 1

    def test_analyze_bypasses_result_cache(self, db):
        db.query(QUERY)  # prime the result cache
        analysis = db.explain(QUERY, analyze=True)
        # A cached result would report no operator work at all.
        assert analysis.operators
        assert analysis.operators[0].elapsed_seconds > 0

    def test_multi_tau_query(self, db):
        analysis = db.explain(
            "for $b in //book where $b/price > 50 return $b/title",
            analyze=True)
        assert analysis.result_rows == 2
        assert len(analysis.operators) >= 1
        for record in analysis.operators:
            assert record.actual_rows >= 0
            assert record.est_rows >= 0


class TestOperatorRecordUnits:
    def test_rows_drift_infinity_safe(self):
        record = OperatorRecord(
            operator="tau[x]", strategy="nok", est_rows=0.0,
            est_pages=None, actual_rows=3, nodes_visited=0,
            postings_scanned=0, intermediate_results=0,
            structural_joins=0, pages_read=0, pool_hits=0,
            elapsed_seconds=0.001)
        assert record.rows_drift == float("inf")
        record.actual_rows = 0
        assert record.rows_drift == 1.0

    def test_render_handles_missing_estimates(self):
        record = OperatorRecord(
            operator="tau[x]", strategy="nok", est_rows=0.0,
            est_pages=None, actual_rows=1, nodes_visited=2,
            postings_scanned=3, intermediate_results=0,
            structural_joins=0, pages_read=0, pool_hits=0,
            elapsed_seconds=0.001)
        analysis = ExplainAnalysis(
            plan_text="plan", operators=[record], result_rows=1,
            elapsed_seconds=0.002)
        rendered = str(analysis)
        assert "inf" in rendered
        assert "-" in rendered  # est.pages placeholder

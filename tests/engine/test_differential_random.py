"""Randomized end-to-end differential testing through the Database.

Random documents × random query shapes, executed through the full engine
pipeline (parse → translate → backward analysis → rewrite → physical
lowering) under every strategy, must match the reference interpreter.
This is the highest-level safety net in the suite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.xml import model

_TAGS = ["a", "b", "c"]


@st.composite
def documents(draw):
    def subtree(depth):
        tag = draw(st.sampled_from(_TAGS))
        attr = f' k="{draw(st.integers(0, 2))}"' if draw(st.booleans()) \
            else ""
        if depth == 0 or draw(st.integers(0, 3)) == 0:
            return f"<{tag}{attr}>{draw(st.integers(0, 9))}</{tag}>"
        inner = "".join(subtree(depth - 1)
                        for _ in range(draw(st.integers(1, 3))))
        return f"<{tag}{attr}>{inner}</{tag}>"
    return f"<root>{''.join(subtree(2) for _ in range(3))}</root>"


_XPATH_QUERIES = [
    "/root/a", "//a", "//a/b", "//a//c", "//a[b]", "//a[@k]",
    "//a[@k = '1']", "//*[b]/c", "//b[. = 3]", "//a[b][c]",
    "//a/b/following-sibling::c",
]

_XQUERY_QUERIES = [
    'for $x in doc("d.xml")//a return $x/b',
    'for $x in doc("d.xml")//a where $x/@k = "1" return $x',
    'for $x in doc("d.xml")//a let $c := $x/c return count($c)',
    'count(doc("d.xml")//b)',
    '<o>{ for $x in doc("d.xml")//a let $dead := $x/b '
    'return <i>{count($x/c)}</i> }</o>',
]


def keys(items):
    out = []
    for item in items:
        if isinstance(item, model.Node):
            if item.document is None:
                from repro.xml.serializer import serialize
                out.append(("detached", serialize(item)))
            else:
                from repro.xpath.semantics import document_order_key
                out.append(("node", document_order_key(item)))
        else:
            out.append(("atom", item))
    return out


@given(documents(), st.sampled_from(_XPATH_QUERIES),
       st.sampled_from(["nok", "structural-join", "twigstack",
                        "navigational", "auto"]))
@settings(max_examples=60, deadline=None)
def test_xpath_differential(text, query, strategy):
    database = Database()
    database.load(text, uri="d.xml")
    expected = database.reference_query(query)
    result = database.query(query, strategy=strategy)
    assert keys(result.items) == keys(expected)


@given(documents(), st.sampled_from(_XQUERY_QUERIES))
@settings(max_examples=40, deadline=None)
def test_xquery_differential(text, query):
    database = Database()
    database.load(text, uri="d.xml")
    expected = database.reference_query(query)
    result = database.query(query)
    assert keys(result.items) == keys(expected)

"""Regression tests for three serving-layer correctness bugs.

1. ``normalize_query`` collapsed whitespace *inside string literals*,
   so ``//book[title="a  b"]`` and ``//book[title="a b"]`` collided to
   one plan-cache and result-cache key — the second query silently
   returned the first query's cached result.
2. ``ResultCache.lookup`` returned the cached ``items`` list by
   reference (while ``store`` defensively copied on the way in), so a
   caller mutating the returned list corrupted every later hit.
3. ``PageManager.reset()`` reached into ``pool._pages.clear()``
   directly, dropping dirty pages without counting ``page_writes``.
"""

from repro.engine.cache import ResultCache, normalize_query
from repro.engine.database import Database
from repro.storage.pages import PageManager


BIB = """
<bib>
  <book><title>a  b</title><price>1</price></book>
  <book><title>a b</title><price>2</price></book>
</bib>
"""


class TestLiteralAwareNormalization:
    def test_whitespace_inside_literals_is_significant(self):
        assert (normalize_query('//book[title="a  b"]')
                != normalize_query('//book[title="a b"]'))
        assert (normalize_query("//book[title='a  b']")
                != normalize_query("//book[title='a b']"))

    def test_whitespace_outside_literals_still_collapses(self):
        assert (normalize_query('  //book [ title = "a  b" ] \n')
                == normalize_query('//book [ title = "a  b" ]'))
        assert normalize_query(" a  b \n c ") == "a b c"

    def test_doubled_quote_escape_stays_inside_the_literal(self):
        # "a""  b" is ONE literal (doubled-quote escape); the run of
        # spaces inside it must survive.
        text = '//book[title="a""  b"]'
        assert normalize_query(text) == text
        # ...and the quote does not leak: whitespace after the literal
        # still collapses.
        assert (normalize_query('//book[title="a""b"  ]')
                == '//book[title="a""b" ]')

    def test_unterminated_literal_is_deterministic(self):
        # The lexer rejects it later; the key just must not crash and
        # must preserve the tail verbatim.
        assert normalize_query('//a[t="x  y') == '//a[t="x  y'

    def test_mixed_quotes(self):
        assert (normalize_query("//a[t=\"it's  here\"]")
                == "//a[t=\"it's  here\"]")

    def test_end_to_end_no_cache_collision(self):
        """The second query must NOT be served the first one's result."""
        db = Database()
        db.load(BIB, uri="bib.xml")
        first = db.query('//book[title="a  b"]/price')
        second = db.query('//book[title="a b"]/price')
        assert first.values() == ["1"]
        assert second.values() == ["2"]
        # Distinct keys: the second query cannot be a result-cache hit.
        assert second.stats["cache"]["result"] == "miss"
        # Both now cached under their own keys.
        assert db.query('//book[title="a  b"]/price').values() == ["1"]
        assert db.query('//book[title="a b"]/price').values() == ["2"]

    def test_result_cache_key_uses_corrected_form(self):
        db = Database()
        db.load(BIB, uri="bib.xml")
        db.query('//book[title  =  "a  b"]/price')
        # Outside-literal whitespace *runs* share the corrected key...
        warm = db.query(' //book[title = "a  b"]/price ')
        assert warm.stats["cache"]["plan"] == "hit"
        assert warm.stats["cache"]["result"] == "hit"
        assert warm.values() == ["1"]


class TestResultCacheAliasing:
    def test_lookup_returns_a_copy(self):
        cache = ResultCache(capacity=8)
        key = ResultCache.key("//book", "auto", "bib.xml")
        stamp = (0,)
        cache.store(key, stamp, ["x", "y"], "nok")
        first, _ = cache.lookup(key, stamp)
        first.append("junk")       # caller mutates its result list
        first.pop(0)
        again, strategy = cache.lookup(key, stamp)
        assert again == ["x", "y"]  # cache unharmed
        assert strategy == "nok"

    def test_store_copies_on_the_way_in_too(self):
        cache = ResultCache(capacity=8)
        key = ResultCache.key("//book", "auto", None)
        items = ["x"]
        cache.store(key, (0,), items, None)
        items.append("mutated-later")
        cached, _ = cache.lookup(key, (0,))
        assert cached == ["x"]

    def test_end_to_end_result_items_mutation_is_isolated(self):
        db = Database()
        db.load(BIB, uri="bib.xml")
        db.query("//book/title")
        warm = db.query("//book/title")
        assert warm.stats["cache"]["result"] == "hit"
        warm.items.clear()          # abuse the returned list
        rewarm = db.query("//book/title")
        assert rewarm.stats["cache"]["result"] == "hit"
        assert rewarm.values() == ["a  b", "a b"]


class TestResetWriteBackAccounting:
    def test_reset_counts_dirty_write_backs(self):
        pages = PageManager(page_size=64, pool_pages=16)
        segment = pages.segment("seg", 64 * 8)
        # Dirty three distinct pages.
        for page in range(3):
            segment.touch(page * 64, 1, write=True)
        assert len(pages.pool) == 3
        pages.reset()
        # The pool is empty (cold start) AND the write-backs of the
        # three dirty pages were counted — the seed silently lost them.
        assert len(pages.pool) == 0
        assert pages.counters.page_writes == 3
        assert pages.counters.page_reads == 0

    def test_reset_with_clean_pages_counts_nothing(self):
        pages = PageManager(page_size=64)
        segment = pages.segment("seg", 64 * 4)
        segment.touch(0, 1)                   # clean read
        pages.reset()
        assert pages.counters.snapshot() == {
            "page_reads": 0, "page_writes": 0,
            "pool_hits": 0, "logical_touches": 0}

    def test_reset_zeroes_per_thread_counters_too(self):
        pages = PageManager(page_size=64)
        segment = pages.segment("seg", 64 * 4)
        segment.touch(0, 1, write=True)
        assert pages.thread_snapshot()["page_reads"] == 1
        pages.reset()
        snap = pages.thread_snapshot()
        assert snap["page_reads"] == 0
        # The flushed dirty page is credited to the resetting thread.
        assert snap["page_writes"] == 1
        assert pages.threads_total() == pages.counters.snapshot()

"""Concurrent serving-layer tests.

* :class:`repro.engine.concurrency.RWLock` unit tests (exclusion,
  writer preference, reentrancy, upgrade refusal);
* thread-safety of the LRU caches under a multi-threaded hammer;
* ``Database.query_many`` batch semantics;
* the stress suite the CI job runs: N reader threads executing mixed
  prepared/ad-hoc queries while a writer thread inserts and deletes,
  cross-checked item-for-item against serial execution, with the
  per-thread I/O accounting invariant (per-query totals sum to the
  manager's cumulative counters) checked at the end.

``REPRO_STRESS_WORKERS`` (default 8) sets the reader thread count.
"""

import os
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine.cache import LRUCache
from repro.engine.concurrency import RWLock
from repro.engine.database import Database

STRESS_WORKERS = int(os.environ.get("REPRO_STRESS_WORKERS", "8"))


# -- RWLock ---------------------------------------------------------------------


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        entered = []

        def reader():
            with lock.read_locked():
                entered.append(threading.get_ident())
                time.sleep(0.02)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Four 20ms readers sharing must finish far quicker than the
        # 80ms a serialized schedule needs.
        assert time.perf_counter() - started < 0.08
        assert len(entered) == 4

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        log = []

        def writer():
            with lock.write_locked():
                log.append("w-in")
                time.sleep(0.03)
                log.append("w-out")

        def reader():
            with lock.read_locked():
                log.append("r")

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        while not lock.write_held:      # wait for the writer to enter
            time.sleep(0.001)
        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        writer_thread.join()
        reader_thread.join()
        assert log.index("w-out") < log.index("r")

    def test_writer_waits_for_readers(self):
        lock = RWLock()
        assert lock.acquire_read()
        attempts = []

        def try_write(timeout: float) -> None:
            got = lock.acquire_write(timeout=timeout)
            attempts.append(got)
            if got:
                lock.release_write()

        blocked = threading.Thread(target=try_write, args=(0.02,))
        blocked.start()
        blocked.join()
        lock.release_read()
        allowed = threading.Thread(target=try_write, args=(2.0,))
        allowed.start()
        allowed.join()
        assert attempts == [False, True]

    def test_writer_preference_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()              # main thread holds the read side
        writer_done = threading.Event()

        def writer():
            with lock.write_locked():
                writer_done.set()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        while lock.waiting_writers == 0:
            time.sleep(0.001)
        # A NEW reader must now queue behind the waiting writer...
        late_reader_result = []

        def late_reader():
            late_reader_result.append(lock.acquire_read(timeout=0.05))
            if late_reader_result[-1]:
                lock.release_read()

        late = threading.Thread(target=late_reader)
        late.start()
        late.join()
        assert late_reader_result == [False]   # timed out behind writer
        # ...while the original reader re-enters freely (reentrant).
        assert lock.acquire_read()
        lock.release_read()
        lock.release_read()              # outermost release
        writer_thread.join()
        assert writer_done.is_set()

    def test_write_reentrancy_and_nested_read(self):
        lock = RWLock()
        with lock.write_locked():
            with lock.write_locked():
                with lock.read_locked():     # update paths re-query
                    assert lock.held_by_me() == "write"
            assert lock.write_held
        assert not lock.write_held

    def test_upgrade_is_refused(self):
        lock = RWLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError):
                lock.acquire_write()

    def test_release_without_acquire_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestRWLockTimeoutRegressions:
    """Failing-before/passing-after tests for the timeout bugfixes."""

    def test_timed_out_writer_wakes_queued_readers(self):
        """A writer that gives up must notify, or readers queued behind
        its writer preference stay blocked until an unrelated notify
        (before the fix this reader timed out after the full 2s)."""
        lock = RWLock()
        lock.acquire_read()              # main thread blocks the writer

        def writer() -> None:
            assert lock.acquire_write(timeout=0.05) is False

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        while lock.waiting_writers == 0:
            time.sleep(0.001)
        outcome: list = []

        def late_reader() -> None:
            started = time.perf_counter()
            got = lock.acquire_read(timeout=2.0)
            outcome.append((got, time.perf_counter() - started))
            if got:
                lock.release_read()

        late = threading.Thread(target=late_reader)
        late.start()                     # queues behind the writer
        writer_thread.join()             # writer times out and exits
        late.join()
        lock.release_read()
        got, waited = outcome[0]
        assert got is True
        # Must ride the timed-out writer's notify, not the 2s deadline.
        assert waited < 1.0, f"reader stalled {waited:.3f}s"

    def test_read_timeout_is_a_deadline(self):
        """Repeated notifies must not extend the total wait: before the
        fix each wakeup restarted a full ``timeout`` wait, so a reader
        asking for 0.2s could block for as long as the writer held."""
        lock = RWLock()
        release = threading.Event()
        held = threading.Event()

        def holder() -> None:
            with lock.write_locked():
                held.set()
                release.wait()

        owner = threading.Thread(target=holder)
        owner.start()
        held.wait()
        stop = threading.Event()

        def heckler() -> None:
            # Spurious wakeups every 10ms — each one restarted the
            # 0.2s wait under the old per-iteration timeout.  Bounded
            # at ~1.5s so a regressed lock overshoots measurably
            # instead of hanging the suite.
            for _ in range(150):
                if stop.is_set():
                    break
                with lock._cond:
                    lock._cond.notify_all()
                time.sleep(0.01)

        noise = threading.Thread(target=heckler)
        noise.start()
        try:
            started = time.perf_counter()
            got = lock.acquire_read(timeout=0.2)
            waited = time.perf_counter() - started
        finally:
            stop.set()
            noise.join()
            release.set()
            owner.join()
        assert got is False
        assert waited < 0.8, f"deadline overshot: {waited:.3f}s"

    def test_write_timeout_is_a_deadline(self):
        lock = RWLock()
        release = threading.Event()
        held = threading.Event()

        def holder() -> None:
            with lock.read_locked():
                held.set()
                release.wait()

        owner = threading.Thread(target=holder)
        owner.start()
        held.wait()
        stop = threading.Event()

        def heckler() -> None:
            for _ in range(150):
                if stop.is_set():
                    break
                with lock._cond:
                    lock._cond.notify_all()
                time.sleep(0.01)

        noise = threading.Thread(target=heckler)
        noise.start()
        try:
            started = time.perf_counter()
            got = lock.acquire_write(timeout=0.2)
            waited = time.perf_counter() - started
        finally:
            stop.set()
            noise.join()
            release.set()
            owner.join()
        assert got is False
        assert waited < 0.8, f"deadline overshot: {waited:.3f}s"

    def test_observer_fires_on_reentrant_acquisitions(self):
        """Acquisition *counts* must include reentrant fast paths (the
        old code only observed first-level waits)."""
        events: list = []
        lock = RWLock(observer=lambda mode, waited:
                      events.append((mode, waited)))
        with lock.write_locked():
            with lock.write_locked():        # reentrant write
                with lock.read_locked():     # writer-nested read
                    pass
        with lock.read_locked():
            with lock.read_locked():         # reentrant read
                pass
        modes = [mode for mode, _ in events]
        assert modes == ["write", "write", "read", "read", "read"]
        assert all(waited >= 0.0 for _, waited in events)


# -- thread-safe caches ---------------------------------------------------------


class TestLRUCacheThreadSafety:
    def test_concurrent_hammer_keeps_invariants(self):
        cache = LRUCache(capacity=32)
        operations_per_thread = 2000
        threads = 8

        def hammer(seed: int) -> int:
            rng = random.Random(seed)
            gets = 0
            for _ in range(operations_per_thread):
                key = rng.randrange(64)
                if rng.random() < 0.5:
                    cache.put(key, key * 2)
                else:
                    value = cache.get(key)
                    assert value is None or value == key * 2
                    gets += 1
            return gets

        with ThreadPoolExecutor(max_workers=threads) as pool:
            gets = sum(pool.map(hammer, range(threads)))
        assert len(cache) <= 32
        stats = cache.stats
        # Counter consistency: every get was either a hit or a miss.
        assert stats.hits + stats.misses == gets


# -- query_many -----------------------------------------------------------------


BIB = """
<bib>
  <book year="1994"><title>TCP/IP Illustrated</title>
    <author><last>Stevens</last></author><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author><last>Abiteboul</last></author><price>39.95</price></book>
  <book year="1999"><title>Economics</title>
    <author><last>Varian</last></author><price>100</price></book>
</bib>
"""

QUERY_POOL = [
    "//book/title",
    "/bib/book[price > 50]/title",
    "//book[@year = '2000']",
    "//author/last",
    "count(//book)",
    "//book[author/last = 'Stevens']/price",
]


class TestQueryMany:
    def test_matches_serial_in_order(self):
        db = Database()
        db.load(BIB, uri="bib.xml")
        batch = [QUERY_POOL[i % len(QUERY_POOL)] for i in range(24)]
        serial = [db.query(q).values() for q in batch]
        db.clear_caches()
        concurrent = db.query_many(batch, max_workers=6)
        assert [r.values() for r in concurrent] == serial

    def test_prepared_queries_in_batch(self):
        db = Database()
        db.load(BIB, uri="bib.xml")
        prepared = db.prepare("//book/title")
        results = db.query_many([prepared, "count(//book)", prepared],
                                max_workers=3)
        assert results[0].values() == results[2].values()
        assert results[1].values() == [3.0]

    def test_serial_fallback(self):
        db = Database()
        db.load(BIB, uri="bib.xml")
        results = db.query_many(["//book/title"], max_workers=8)
        assert len(results) == 1
        assert db.query_many([], max_workers=4) == []


# -- the stress suite (run by the CI threaded-stress job) -----------------------


def _catalog_document(items: int = 40) -> str:
    rng = random.Random(5)
    rows = "".join(
        f"<item><name>n{i}</name><price>{rng.randrange(1, 100)}</price>"
        f"<quantity>{rng.randrange(1, 5)}</quantity></item>"
        for i in range(items))
    return f"<site><catalog>{rows}</catalog><scratch><seed/></scratch></site>"


READER_QUERIES = [
    "//item/name",
    "/site/catalog/item[price > 50]/name",
    "count(//item)",
    "//item[quantity = '1']/price",
    "/site/catalog/item[1]/name",
    "//catalog/item[price > 80]",
]


class TestConcurrentServing:
    def test_readers_with_writer_match_serial(self):
        """8 readers x mixed prepared/ad-hoc queries + 1 writer thread;
        every result must equal serial execution, and the per-thread
        I/O accounting must sum to the cumulative counters."""
        db = Database(debug_checks=True)
        db.load(_catalog_document(), uri="site.xml")

        # The writer only touches /site/scratch; the reader queries only
        # match catalog content, so their correct answers are invariant
        # under every interleaving — "identical to serial execution".
        serial = {q: db.query(q).values() for q in READER_QUERIES}
        db.clear_caches()

        readers = STRESS_WORKERS
        per_reader = max(200 // readers + 1, 8)  # >= 200 queries total
        prepared = {q: db.prepare(q) for q in READER_QUERIES[::2]}
        failures: list = []
        io_lock = threading.Lock()
        reader_io: list[dict] = []
        writer_io: dict = {}
        cumulative_before = db.pages.counters.snapshot()

        def reader(seed: int) -> None:
            rng = random.Random(seed)
            for _ in range(per_reader):
                query = rng.choice(READER_QUERIES)
                try:
                    if query in prepared and rng.random() < 0.5:
                        result = prepared[query].run()
                    else:
                        result = db.query(query)
                    if result.values() != serial[query]:
                        failures.append(
                            (query, result.values(), serial[query]))
                    with io_lock:
                        reader_io.append(result.io)
                except Exception as error:  # pragma: no cover
                    failures.append((query, repr(error)))

        def writer() -> None:
            before = db.pages.thread_snapshot()
            try:
                for step in range(12):
                    db.insert("/site/scratch",
                              f"<probe><label>p{step}</label></probe>")
                    time.sleep(0.001)
                    db.delete("/site/scratch/probe[1]")
            except Exception as error:  # pragma: no cover
                failures.append(("writer", repr(error)))
            after = db.pages.thread_snapshot()
            with io_lock:
                writer_io.update(
                    {k: after[k] - before[k] for k in after})

        threads = [threading.Thread(target=reader, args=(seed,))
                   for seed in range(readers)]
        writer_thread = threading.Thread(target=writer)
        for thread in threads + [writer_thread]:
            thread.start()
        for thread in threads + [writer_thread]:
            thread.join()

        assert not failures, failures[:5]
        assert len(reader_io) == readers * per_reader
        assert len(reader_io) >= 200

        # I/O accounting invariant: every page access was credited to
        # exactly one thread, so per-query totals (readers) plus the
        # writer's thread total equal the cumulative delta.
        cumulative_after = db.pages.counters.snapshot()
        for field in ("page_reads", "pool_hits", "logical_touches",
                      "page_writes"):
            observed = (sum(io[field] for io in reader_io)
                        + writer_io[field])
            expected = cumulative_after[field] - cumulative_before[field]
            assert observed == expected, (field, observed, expected)
        # And the per-thread ledgers agree with the cumulative ones.
        assert db.pages.threads_total() == db.pages.counters.snapshot()

        # The writer left the document as it found it.
        assert db.query("count(//probe)").values() == [0.0]
        for query in READER_QUERIES:
            assert db.query(query).values() == serial[query]

    def test_cache_counters_consistent_under_concurrency(self):
        db = Database()
        db.load(_catalog_document(16), uri="site.xml")
        batch = [READER_QUERIES[i % len(READER_QUERIES)]
                 for i in range(120)]
        db.query_many(batch, max_workers=STRESS_WORKERS)
        report = db.cache_report()["result_cache"]
        # Every lookup was counted exactly once as a hit or a miss.
        assert report["hits"] + report["misses"] == len(batch)
        assert report["entries"] <= len(READER_QUERIES)

    def test_concurrent_cold_compiles_are_safe(self):
        db = Database()
        db.load(_catalog_document(8), uri="site.xml")
        serial = {q: db.reference_query(q) for q in ("//item/name",)}
        results = db.query_many(["//item/name"] * 16,
                                max_workers=STRESS_WORKERS)
        expected = [node.string_value()
                    for node in serial["//item/name"]]
        for result in results:
            assert result.values() == expected

    def test_generation_stamp_prevents_torn_reads(self):
        """A reader sees only *consistent* snapshots: with a churner
        inserting then deleting one item, every observed count is either
        the base state or base+1 — never a torn intermediate."""
        db = Database()
        db.load(_catalog_document(12), uri="site.xml")
        stop = threading.Event()
        failures = []

        def churn():
            step = 0
            while not stop.is_set():
                db.insert("/site/catalog",
                          f"<item><name>x{step}</name>"
                          f"<price>1</price></item>")
                db.delete(f"/site/catalog/item[name = 'x{step}']")
                step += 1

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            for _ in range(60):
                engine = db.query("count(//item)").values()
                if engine not in ([12.0], [13.0]):
                    failures.append(engine)
        finally:
            stop.set()
            churner.join()
        assert not failures, failures[:3]

"""MVCC snapshot-isolation tests.

The serving contract since the copy-on-write refactor:

* queries pin one immutable :class:`DatabaseSnapshot` and never take a
  lock — the RWLock's read-mode wait histogram stays empty under pure
  query load (the E15 acceptance criterion);
* writers clone the current :class:`DocumentVersion`, splice the clone
  and publish with one atomic snapshot swap — a pinned version is
  frozen forever, however many updates land after it;
* result-cache stamps are built from per-version ids, so a cached
  result can never be served across a publish;
* durability recovery reproduces the same logical version state
  (generations and query results), and the mixed differential stress
  (8 readers / 2 writers) sees zero consistency violations.
"""

import random
import threading
import time

from repro.engine.database import Database, DocumentVersion, LoadedDocument

DOC = """
<shop>
  <item sku="a"><name>alpha</name><price>10</price></item>
  <item sku="b"><name>beta</name><price>25</price></item>
  <item sku="c"><name>gamma</name><price>40</price></item>
  <scratch><seed/></scratch>
</shop>
"""


def make_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.load(DOC, uri="shop.xml")
    return db


class TestVersionPinning:
    def test_updates_publish_new_versions(self):
        db = make_db()
        v0 = db.document()
        assert v0.version_id > 0
        db.insert("/shop", "<item sku='d'><name>delta</name>"
                           "<price>5</price></item>")
        v1 = db.document()
        assert v1 is not v0
        assert v1.version_id > v0.version_id
        assert v1.generation == v0.generation + 1
        # LoadedDocument remains an alias of the version class.
        assert LoadedDocument is DocumentVersion

    def test_pinned_version_is_frozen(self):
        """Everything hanging off a pinned version — interval records,
        succinct store, tree, node list — is untouched by later
        updates."""
        db = make_db()
        v0 = db.document()
        nodes_before = len(v0.interval.nodes)
        record = v0.interval.node(1)
        labels_before = (record.pre, record.end, record.post)
        names_before = [n.string_value()
                        for n in v0.tree.root.children()]
        db.insert("/shop", "<item sku='d'><name>delta</name>"
                           "<price>5</price></item>")
        db.delete("/shop/item[1]")
        assert len(v0.interval.nodes) == nodes_before
        assert (record.pre, record.end, record.post) == labels_before
        assert [n.string_value()
                for n in v0.tree.root.children()] == names_before
        assert len(v0.node_list) == nodes_before

    def test_long_running_query_executes_against_its_pin(self):
        """A query that pinned a snapshot before an update keeps
        resolving documents in that snapshot mid-flight (this is what
        an executor does for every τ)."""
        from repro.engine.executor import run_plan

        db = make_db(result_cache_size=0)
        pinned = db._snapshot
        plan, _ = db._compiled_plan("//item/name")
        db.insert("/shop", "<item sku='d'><name>delta</name>"
                           "<price>5</price></item>")
        # The update is visible to new queries...
        assert "delta" in db.query("//item/name").values()
        # ...but an execution context carrying the old pin is not told.
        context = db._execution_context(None, "auto", snapshot=pinned)
        items = run_plan(plan, context)
        assert [item.string_value() for item in items] == \
            ["alpha", "beta", "gamma"]

    def test_queries_acquire_zero_read_locks(self):
        """The acceptance criterion: under pure query load the RWLock
        read-mode histogram stays empty and no reader is ever counted."""
        db = make_db()
        for _ in range(3):
            db.query("//item/name")
            db.query("count(//item)")
        db.query_many(["//item/name", "count(//item)"] * 4,
                      max_workers=4)
        db.explain("//item/name", analyze=True)
        lock_wait = db.observability.registry.get(
            "repro_lock_wait_seconds")
        assert lock_wait.count(mode="read") == 0
        assert db.rwlock.active_readers == 0
        assert db.active_pins == 0  # every pin was released


class TestPublishAtomicity:
    def test_snapshot_swap_is_all_or_nothing(self):
        """Concurrent pinners only ever observe complete snapshots:
        the stamp, the documents dict, and each version's generation
        agree with each other in every pinned view."""
        db = make_db()
        stop = threading.Event()
        failures: list = []

        def churn() -> None:
            step = 0
            while not stop.is_set():
                db.insert("/shop/scratch", f"<probe>p{step}</probe>")
                db.delete("/shop/scratch/probe[1]")
                step += 1

        def pinner() -> None:
            for _ in range(300):
                snapshot = db._snapshot
                version = snapshot.documents["shop.xml"]
                expected = (snapshot.load_epoch,
                            ("shop.xml", version.version_id))
                if snapshot.stamp != expected:
                    failures.append((snapshot.stamp, expected))
                # The version must be internally consistent however
                # long we hold it.
                if len(version.node_list) != len(version.interval.nodes):
                    failures.append("node list / interval mismatch")

        churner = threading.Thread(target=churn)
        pinners = [threading.Thread(target=pinner) for _ in range(4)]
        churner.start()
        for thread in pinners:
            thread.start()
        for thread in pinners:
            thread.join()
        stop.set()
        churner.join()
        assert not failures, failures[:3]

    def test_publish_counter_and_metrics(self):
        db = make_db()
        published = db.version_publishes
        assert published >= 1  # the load itself
        db.insert("/shop/scratch", "<probe>x</probe>")
        db.delete("/shop/scratch/probe")
        assert db.version_publishes == published + 2
        text = db.metrics_text()
        assert "repro_version_publishes_total" in text
        assert "repro_version_pins" in text
        assert 'repro_document_version{uri="shop.xml"}' in text

    def test_rebuild_derived_publishes_new_version(self):
        db = make_db()
        v0 = db.document()
        memo_before = dict(v0.strategy_memo)
        v1 = db.rebuild_derived(force=True)
        assert v1 is not v0
        assert v1.version_id > v0.version_id
        assert v1.statistics.generation > v0.statistics.generation
        # The old version's memo was not clobbered; the new one is
        # fresh.
        assert dict(v0.strategy_memo) == memo_before
        assert v1.strategy_memo == {}
        assert db.query("//item/name").values() == \
            ["alpha", "beta", "gamma"]


class TestResultCacheStamps:
    def test_stamp_is_the_version_vector(self):
        db = make_db()
        assert db._generation_stamp() == (
            db._load_epoch, ("shop.xml", db.document().version_id))

    def test_cache_hit_within_version_miss_across(self):
        db = make_db()
        first = db.query("//item/name")
        assert first.stats["cache"]["result"] == "miss"
        second = db.query("//item/name")
        assert second.stats["cache"]["result"] == "hit"
        db.insert("/shop/scratch", "<probe>x</probe>")
        third = db.query("//item/name")
        # Same logical answer, but the stamp moved: recomputed.
        assert third.stats["cache"]["result"] == "miss"
        assert third.values() == first.values()

    def test_rebuild_invalidates_results(self):
        """A derived rebuild changes no data, but it publishes a new
        version id — cached results must not survive it (the old
        generation counter missed pure rebuilds' index swaps)."""
        db = make_db()
        db.query("//item/name")
        assert db.query("//item/name").stats["cache"]["result"] == "hit"
        db.rebuild_derived(force=True)
        assert db.query("//item/name").stats["cache"]["result"] == "miss"


class TestDurabilityParity:
    def test_recovery_restores_version_state(self, tmp_path):
        db = Database.open(tmp_path, checkpoint_every=0)
        db.load(DOC, uri="shop.xml")
        db.insert("/shop", "<item sku='d'><name>delta</name>"
                           "<price>5</price></item>")
        db.delete("/shop/item[1]")
        names = db.query("//item/name").values()
        generation = db.document().generation
        stamp_shape = db._generation_stamp()
        db.close()

        reopened = Database.open(tmp_path)
        try:
            assert reopened.query("//item/name").values() == names
            assert reopened.document().generation == generation
            # Version ids restart per process, but the stamp keeps the
            # same shape and the WAL replay verified each generation.
            restored = reopened._generation_stamp()
            assert len(restored) == len(stamp_shape)
            assert restored[1][0] == "shop.xml"
            reopened.verify_derived(reopened.document())
        finally:
            reopened.close()

    def test_checkpoint_after_publish_sees_new_version(self, tmp_path):
        """maybe_checkpoint runs after the snapshot swap, so an
        auto-checkpoint triggered by an update serializes the updated
        state (reopen sees it without replaying the WAL record)."""
        db = Database.open(tmp_path, checkpoint_every=1)
        db.load(DOC, uri="shop.xml")
        db.insert("/shop", "<item sku='d'><name>delta</name>"
                           "<price>5</price></item>")
        db.close()
        reopened = Database.open(tmp_path)
        try:
            assert "delta" in reopened.query("//item/name").values()
        finally:
            reopened.close()


class TestMixedDifferential:
    def test_eight_readers_two_writers_zero_violations(self):
        """The CI differential: 8 readers over invariant catalog
        queries while two writers churn disjoint scratch areas — every
        read must equal serial execution, and the read path must not
        have touched the RWLock."""
        rng = random.Random(7)
        rows = "".join(
            f"<item><name>n{i}</name>"
            f"<price>{rng.randrange(1, 100)}</price></item>"
            for i in range(30))
        db = Database()
        db.load(f"<site><catalog>{rows}</catalog>"
                "<pad1><seed/></pad1><pad2><seed/></pad2></site>",
                uri="site.xml")
        queries = ["//item/name", "count(//item)",
                   "/site/catalog/item[price > 50]/name",
                   "/site/catalog/item[1]/name"]
        serial = {q: db.query(q).values() for q in queries}
        db.clear_caches()
        failures: list = []
        stop = threading.Event()

        def reader(seed: int) -> None:
            local = random.Random(seed)
            for _ in range(40):
                query = local.choice(queries)
                try:
                    got = db.query(query).values()
                    if got != serial[query]:
                        failures.append((query, got, serial[query]))
                except Exception as error:  # pragma: no cover
                    failures.append((query, repr(error)))

        def writer(area: str) -> None:
            step = 0
            try:
                while not stop.is_set():
                    db.insert(f"/site/{area}",
                              f"<probe><t>{area}{step}</t></probe>")
                    time.sleep(0.001)
                    db.delete(f"/site/{area}/probe[1]")
                    step += 1
            except Exception as error:  # pragma: no cover
                failures.append((area, repr(error)))

        readers = [threading.Thread(target=reader, args=(seed,))
                   for seed in range(8)]
        writers = [threading.Thread(target=writer, args=(area,))
                   for area in ("pad1", "pad2")]
        for thread in writers + readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        for thread in writers:
            thread.join()
        assert not failures, failures[:5]
        lock_wait = db.observability.registry.get(
            "repro_lock_wait_seconds")
        assert lock_wait.count(mode="read") == 0
        for query in queries:
            assert db.query(query).values() == serial[query]

"""Tests for the synthetic workload generators and query sets."""

import pytest

from repro.engine.database import Database
from repro.workload import (
    LINEAR_PATHS,
    TWIG_QUERIES,
    XMARK_QUERY_SET,
    generate_dblp,
    generate_treebank,
    generate_xmark,
)
from repro.workload.queries import (
    SELECTIVITY_SWEEP,
    SIBLING_QUERIES,
    descendant_fraction,
    selectivity_query,
)
from repro.xml.serializer import serialize
from repro.xpath.semantics import evaluate_xpath


class TestXMark:
    def test_deterministic(self):
        assert serialize(generate_xmark(scale=15, seed=5)) == \
            serialize(generate_xmark(scale=15, seed=5))

    def test_seed_changes_content(self):
        assert serialize(generate_xmark(scale=15, seed=5)) != \
            serialize(generate_xmark(scale=15, seed=6))

    def test_scale_controls_items(self):
        doc = generate_xmark(scale=30)
        assert len(evaluate_xpath("//item", doc)) == 30

    def test_structure(self):
        doc = generate_xmark(scale=25)
        site = doc.root
        assert site.tag == "site"
        sections = [c.tag for c in site.child_elements()]
        assert sections == ["regions", "categories", "people",
                            "open_auctions", "closed_auctions"]
        assert evaluate_xpath("//person/@id", doc)
        assert evaluate_xpath("//open_auction/bidder", doc) is not None

    def test_item_ids_unique(self):
        doc = generate_xmark(scale=40)
        ids = [a.value for a in evaluate_xpath("//item/@id", doc)]
        assert len(ids) == len(set(ids)) == 40

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            generate_xmark(scale=0)

    def test_grows_with_scale(self):
        small = generate_xmark(scale=10)
        large = generate_xmark(scale=100)
        small.reindex()
        large.reindex()
        assert large.size > 5 * small.size


class TestDBLP:
    def test_flat_and_wide(self):
        doc = generate_dblp(publications=50)
        doc.reindex()
        records = list(doc.root.child_elements())
        assert len(records) == 50
        assert all(r.tag in ("article", "inproceedings") for r in records)
        # Depth stays tiny: root/record/field/text.
        assert max(n.level for n in doc.nodes_in_document_order()) <= 4

    def test_records_have_required_fields(self):
        doc = generate_dblp(publications=30)
        assert len(evaluate_xpath("//title", doc)) == 30
        assert len(evaluate_xpath("//year", doc)) == 30
        assert len(evaluate_xpath("//author", doc)) >= 30

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_dblp(publications=0)


class TestTreebank:
    def test_depth_exceeds_flat_regimes(self):
        doc = generate_treebank(sentences=15, max_depth=14)
        doc.reindex()
        depth = max(n.level for n in doc.nodes_in_document_order())
        assert depth >= 6

    def test_sentences_count(self):
        doc = generate_treebank(sentences=12)
        assert len(list(doc.root.child_elements("S"))) == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_treebank(sentences=0)
        with pytest.raises(ValueError):
            generate_treebank(max_depth=1)


class TestQuerySets:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database()
        database.load_tree(generate_xmark(scale=60), uri="xmark.xml")
        return database

    def test_linear_paths_return_results(self, db):
        for length, query in LINEAR_PATHS.items():
            assert len(db.query(query)) > 0, query

    def test_twig_queries_return_results(self, db):
        for name, query in TWIG_QUERIES.items():
            assert len(db.query(query)) > 0, name

    def test_xmark_query_set(self, db):
        for name, query in XMARK_QUERY_SET.items():
            result = db.query(query)
            reference = db.reference_query(query)
            assert [n.node_id for n in result.items] == \
                [n.node_id for n in reference], name

    def test_sibling_queries(self, db):
        for name, query in SIBLING_QUERIES.items():
            result = db.query(query)
            reference = db.reference_query(query)
            assert [n.node_id for n in result.items] == \
                [n.node_id for n in reference], name

    def test_selectivity_query_builds(self, db):
        name = db.query("//item/name").values()[0]
        query = selectivity_query(name)
        assert len(db.query(query)) == 1

    def test_selectivity_sweep_declared(self):
        labels = [label for label, _, _ in SELECTIVITY_SWEEP]
        assert "name-exact" in labels and "payment-cash" in labels

    def test_descendant_fraction(self):
        assert descendant_fraction(4, 0) == "/site/regions/europe/item"
        assert descendant_fraction(4, 4) == "//site//regions//europe//item"
        assert descendant_fraction(4, 1) == "/site/regions/europe//item"

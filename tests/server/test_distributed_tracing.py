"""Cross-process distributed tracing + fleet metrics (PR 9).

The differential at the heart of this file: N concurrent clients issue
queries over both transports (binary protocol and HTTP/JSON), and for
*every* response the ``trace_id`` it carries must resolve — in the
frontend's ring buffer — to one stitched trace whose worker spans
(``server.worker`` → ``compile``/``query``/``execute``) are nested
under that request's ``server.dispatch`` span, exportable as valid
Chrome trace-event JSON.

Also here: the fleet ``/metrics`` merge (sum of every worker's
``repro_queries_total`` equals the requests served, and the merged
text passes the exposition validator), the sampling=0 no-tearing /
zero-overhead case, the trace ring-buffer bound, and the
admission-stage deadline (a request that exhausts its budget queuing
is rejected ``TIMEOUT`` *before* any execution).
"""

import json
import socket
import threading
import time

import pytest

from repro.engine.database import Database
from repro.errors import QueryTimeoutError
from repro.server import ServerClient, ServerFrontend, protocol
from repro.workload import generate_xmark
from repro.xml.serializer import serialize
from tests.observability.test_metrics import assert_valid_exposition

SCALE = 8
CLIENTS = 8
QUERIES_EACH = 3


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("tracedb") / "xmark.db"
    database = Database.open(str(directory))
    database.load(serialize(generate_xmark(scale=SCALE, seed=7)),
                  uri="xmark.xml")
    database.checkpoint()
    database.close()
    return str(directory)


@pytest.fixture(scope="module")
def traced_frontend(data_dir):
    frontend = ServerFrontend(data_dir=data_dir, workers=2,
                              trace_sample=1.0,
                              trace_capacity=512).start()
    yield frontend
    frontend.stop()


def _http_post_query(address, text, extra_headers=()):
    host, port = address
    body = json.dumps({"text": text}).encode("utf-8")
    head = (f"POST /query HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(body)}\r\n")
    for name, value in extra_headers:
        head += f"{name}: {value}\r\n"
    sock = socket.create_connection(address, timeout=30.0)
    try:
        sock.sendall(head.encode("latin-1") + b"\r\n" + body)
        buffer = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
    finally:
        sock.close()
    header_block, _, payload = buffer.partition(b"\r\n\r\n")
    headers = {}
    for line in header_block.decode("latin-1").split("\r\n")[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return headers, json.loads(payload)


def _http_get(address, path):
    sock = socket.create_connection(address, timeout=30.0)
    try:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"
                     .encode("latin-1"))
        buffer = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
    finally:
        sock.close()
    header_block, _, payload = buffer.partition(b"\r\n\r\n")
    status = int(header_block.decode("latin-1").split(" ", 2)[1])
    return status, payload


def _span_names(span):
    names = {span.name}
    for child in span.children:
        names |= _span_names(child)
    return names


def _find_spans(span, name):
    found = [span] if span.name == name else []
    for child in span.children:
        found.extend(_find_spans(child, name))
    return found


def _assert_stitched(frontend, trace_id):
    """One response's trace id must resolve to one complete
    cross-process tree: admit + dispatch under the root, the worker's
    fragment (with its engine spans) nested under dispatch."""
    trace = frontend.tracer.find_trace(trace_id)
    assert trace is not None, f"trace {trace_id} not in ring buffer"
    assert trace.name == "server.request"
    assert trace.attributes.get("node") == "frontend"
    child_names = {child.name for child in trace.children}
    assert {"server.admit", "server.dispatch"} <= child_names
    (admit,) = _find_spans(trace, "server.admit")
    assert admit.attributes.get("queue_wait_seconds") is not None
    (dispatch,) = _find_spans(trace, "server.dispatch")
    workers = _find_spans(dispatch, "server.worker")
    assert len(workers) == 1, "worker fragment not under dispatch"
    worker_span = workers[0]
    assert str(worker_span.attributes.get("node", "")) \
        .startswith("worker-")
    # The engine's own spans rode back inside the fragment (an
    # ``execute`` child appears only on result-cache misses, so the
    # invariant is the ``query`` span itself).
    assert "query" in _span_names(worker_span)
    # Rebasing kept the fragment inside the dispatch window.
    assert worker_span.started >= dispatch.started
    assert worker_span.ended <= dispatch.ended
    return trace


class TestCrossProcessStitching:
    def test_differential_binary_transport(self, traced_frontend):
        """8 concurrent binary clients: every response's trace_id
        resolves to one stitched cross-process trace."""
        host, port = traced_frontend.address
        collected = []
        errors = []

        def worker_body():
            try:
                with ServerClient(host, port) as client:
                    for _ in range(QUERIES_EACH):
                        response = client.query("//item/name")
                        collected.append(response["trace_id"])
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=worker_body)
                   for _ in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(collected) == CLIENTS * QUERIES_EACH
        assert len(set(collected)) == len(collected), \
            "trace ids must be unique per request"
        for trace_id in collected:
            _assert_stitched(traced_frontend, trace_id)

    def test_differential_http_transport(self, traced_frontend):
        """The same stitching guarantee over HTTP/JSON, including the
        response header echo."""
        for _ in range(CLIENTS):
            headers, payload = _http_post_query(
                traced_frontend.address, "//person/name")
            assert payload["ok"]
            trace_id = payload["trace_id"]
            assert headers[protocol.TRACE_HEADER.lower()] == trace_id
            _assert_stitched(traced_frontend, trace_id)

    def test_http_header_trace_id_is_adopted(self, traced_frontend):
        trace_id = "feedface00112233"
        _headers, payload = _http_post_query(
            traced_frontend.address, "//item/name",
            extra_headers=((protocol.TRACE_HEADER, trace_id),))
        assert payload["trace_id"] == trace_id
        _assert_stitched(traced_frontend, trace_id)

    def test_chrome_export_is_valid_json(self, traced_frontend):
        with ServerClient(*traced_frontend.address) as client:
            trace_id = client.query("//item/name")["trace_id"]
        chrome = traced_frontend.chrome_trace(trace_id)
        assert chrome is not None
        encoded = json.dumps(chrome)  # must be JSON-serializable
        decoded = json.loads(encoded)
        events = decoded["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"X", "M"}
        lanes = {event["args"]["name"] for event in events
                 if event["ph"] == "M"}
        assert "frontend" in lanes
        assert any(lane.startswith("worker-") for lane in lanes)
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_chrome_export_over_http(self, traced_frontend):
        with ServerClient(*traced_frontend.address) as client:
            trace_id = client.query("//item/name")["trace_id"]
        status, payload = _http_get(traced_frontend.address,
                                    f"/debug/traces/{trace_id}")
        assert status == 200
        assert json.loads(payload)["otherData"]["trace_id"] == trace_id
        status, _payload = _http_get(traced_frontend.address,
                                     "/debug/traces/unknown-id")
        assert status == 404

    def test_debug_traces_endpoint_newest_first(self, traced_frontend):
        with ServerClient(*traced_frontend.address) as client:
            first = client.query("//item/name")["trace_id"]
            second = client.query("//person/name")["trace_id"]
        status, payload = _http_get(traced_frontend.address,
                                    "/debug/traces?limit=2")
        assert status == 200
        traces = json.loads(payload)["traces"]
        listed = [trace["trace_id"] for trace in traces]
        assert listed == [second, first]

    def test_slowlog_entries_carry_trace_ids(self, data_dir):
        frontend = ServerFrontend(data_dir=data_dir, workers=1,
                                  trace_sample=1.0,
                                  slow_query_seconds=0.0).start()
        try:
            with ServerClient(*frontend.address) as client:
                trace_id = client.query("//item/name")["trace_id"]
            status, payload = _http_get(frontend.address,
                                        "/debug/slowlog")
            assert status == 200
            entries = json.loads(payload)["entries"]
            assert entries, "0.0 threshold must record every query"
            assert any(entry.get("trace_id") == trace_id
                       for entry in entries)
            assert all(entry["worker"] == "0" for entry in entries)
        finally:
            frontend.stop()


class TestSamplingEdge:
    def test_sample_zero_never_tears_and_costs_workers_nothing(
            self, data_dir):
        """With sampling off, responses still carry a trace id (it is
        minted regardless) but no trace is recorded anywhere — the
        frontend's buffer stays empty and the workers never start a
        span, which is the zero-overhead contract."""
        frontend = ServerFrontend(data_dir=data_dir, workers=2,
                                  trace_sample=0.0).start()
        try:
            with ServerClient(*frontend.address) as client:
                for _ in range(6):
                    response = client.query("//item/name")
                    assert response["ok"]
                    assert response["trace_id"]
                    assert "spans" not in response
            assert frontend.tracer.finished_traces() == []
            assert frontend.tracer.traces_finished == 0
            merged = frontend.metrics_text()
            assert "repro_spans_started_total 0" in merged
        finally:
            frontend.stop()

    def test_ring_buffer_is_bounded(self, data_dir):
        frontend = ServerFrontend(data_dir=data_dir, workers=1,
                                  trace_sample=1.0,
                                  trace_capacity=4).start()
        try:
            trace_ids = []
            with ServerClient(*frontend.address) as client:
                for _ in range(10):
                    trace_ids.append(
                        client.query("//item/name")["trace_id"])
            buffered = frontend.tracer.finished_traces()
            assert len(buffered) == 4
            assert frontend.tracer.find_trace(trace_ids[-1]) is not None
            assert frontend.tracer.find_trace(trace_ids[0]) is None
            assert frontend.tracer.traces_finished == 10
        finally:
            frontend.stop()


class _StallingDatabase:
    """An inline stand-in whose queries block until released."""

    def __init__(self):
        self.release = threading.Event()
        self.executed = 0

    def execute_request(self, request):
        if request.get("verb") == "query":
            self.executed += 1
            self.release.wait(timeout=30.0)
            return {"ok": True, "items": [], "verb": "query"}
        return {"ok": True, "verb": request.get("verb")}


class TestAdmissionDeadline:
    def test_budget_exhausted_queuing_is_rejected_before_execution(
            self):
        """A request whose wall-clock budget runs out while it waits
        for a slot must come back ``TIMEOUT`` without ever executing,
        counted under the ``stage="admission"`` label — the worker
        only ever sees the *remaining* deadline, never the original
        timeout."""
        stalling = _StallingDatabase()
        frontend = ServerFrontend(database=stalling, workers=0,
                                  inline_concurrency=1, max_queue=4,
                                  trace_sample=0.0)
        try:
            blocker = threading.Thread(
                target=frontend.handle_request,
                args=({"verb": "query", "text": "//a",
                       "timeout_seconds": 30.0},))
            blocker.start()
            deadline = time.monotonic() + 5.0
            while stalling.executed == 0:
                assert time.monotonic() < deadline, \
                    "blocker never reached execution"
                time.sleep(0.002)
            # The slot is held: this request's whole 0.15s budget
            # burns in the admission queue.
            response = frontend.handle_request(
                {"verb": "query", "text": "//a",
                 "timeout_seconds": 0.15})
            assert response["ok"] is False
            assert response["code"] == "TIMEOUT"
            assert "admission" in response["error"]
            assert stalling.executed == 1, \
                "timed-out request must never execute"
            assert frontend.timeouts_total.value(
                stage="admission") == 1
            with pytest.raises(QueryTimeoutError):
                protocol.raise_for_response(response)
        finally:
            stalling.release.set()
            blocker.join(10.0)
            frontend.stop()

    def test_worker_sees_remaining_budget_not_original(self):
        """The deadline forwarded to execution is what is left after
        queuing, so server-side enforcement matches the client's
        wall-clock expectation."""
        seen = {}

        class Recorder(_StallingDatabase):
            def execute_request(self, request):
                if request.get("verb") == "query":
                    seen["timeout"] = request.get("timeout_seconds")
                    return {"ok": True, "items": [],
                            "verb": "query"}
                return {"ok": True}

        frontend = ServerFrontend(database=Recorder(), workers=0,
                                  inline_concurrency=1,
                                  trace_sample=0.0)
        try:
            response = frontend.handle_request(
                {"verb": "query", "text": "//a",
                 "timeout_seconds": 5.0})
            assert response["ok"]
            assert 0 < seen["timeout"] <= 5.0
        finally:
            frontend.stop()


class TestFleetMetrics:
    def test_four_worker_scrape_sums_to_requests_served(self,
                                                        data_dir):
        """Acceptance: ``GET /metrics`` on a 4-worker server reflects
        every worker — the fleet-wide ``repro_queries_total`` equals
        the number of query requests served, and the merged exposition
        passes the validator."""
        frontend = ServerFrontend(data_dir=data_dir, workers=4,
                                  trace_sample=0.0).start()
        try:
            host, port = frontend.address
            total_queries = 12
            errors = []

            def client_body():
                try:
                    with ServerClient(host, port) as client:
                        for _ in range(3):
                            assert client.query("//item/name")["ok"]
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=client_body)
                       for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            status, payload = _http_get(frontend.address, "/metrics")
            assert status == 200
            text = payload.decode("utf-8")
            assert_valid_exposition(text)
            import re
            fleet_total = sum(
                float(value) for value in re.findall(
                    r"^repro_queries_total(?:\{[^}]*\})? (\S+)$",
                    text, re.MULTILINE))
            assert fleet_total == total_queries
            assert text.count("# TYPE repro_queries_total counter") \
                == 1
        finally:
            frontend.stop()

    def test_healthz_and_varz(self, traced_frontend):
        status, payload = _http_get(traced_frontend.address,
                                    "/healthz")
        assert status == 200
        assert json.loads(payload)["status"] == "serving"
        status, payload = _http_get(traced_frontend.address, "/varz")
        assert status == 200
        varz = json.loads(payload)
        report = varz["report"]
        assert report["workers_alive"] == 2
        assert "queue_wait" in report
        assert "tracing" in report
        assert "repro_server_requests_total" in varz["metrics"]

"""End-to-end server tests: admission, timeouts, drain, reload, and a
multi-client differential check against the in-process engine.

Worker-mode tests fork real processes over a shared durable directory;
inline-mode tests exercise admission control deterministically by
stubbing the execute path with controllable sleeps.
"""

import json
import socket
import threading
import time
import urllib.request

import pytest

from repro.engine.database import Database
from repro.errors import (
    QueryTimeoutError,
    RemoteQueryError,
    ServerBusyError,
    ServerDrainingError,
    ServerError,
)
from repro.server import ServerClient, ServerFrontend, protocol
from repro.workload import generate_xmark
from repro.xml.serializer import serialize

SCALE = 15
QUERIES = [
    "//item/name",
    "//item[payment = 'Creditcard']",
    "count(//item)",
    "//person/name",
    "//open_auction[initial > 100]",
]


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("serverdb") / "xmark.db"
    database = Database.open(str(directory))
    database.load(serialize(generate_xmark(scale=SCALE, seed=42)),
                  uri="xmark.xml")
    database.checkpoint()
    database.close()
    return str(directory)


@pytest.fixture(scope="module")
def reference_db(data_dir):
    database = Database.open(data_dir, read_only=True)
    yield database
    database.close()


@pytest.fixture(scope="module")
def worker_frontend(data_dir):
    frontend = ServerFrontend(data_dir=data_dir, workers=2, max_queue=8)
    with frontend:
        yield frontend


@pytest.fixture(scope="module")
def worker_client(worker_frontend):
    host, port = worker_frontend.address
    with ServerClient(host, port, timeout_seconds=30.0) as client:
        yield client


def make_inline(database, **kwargs):
    return ServerFrontend(database=database, **kwargs)


class TestWorkerServing:
    def test_ping_and_stats(self, worker_client):
        pong = worker_client.ping()
        assert pong["pong"] and pong["read_only"]
        stats = worker_client.stats()["stats"]
        assert list(stats["documents"]) == ["xmark.xml"]
        assert stats["read_only"] is True
        generation = worker_client.generation()
        assert generation["durable"] and generation["generation"] >= 1

    def test_query_parity_with_in_process_engine(self, worker_client,
                                                 reference_db):
        for query in QUERIES:
            over_wire = worker_client.query_values(query)
            local = reference_db.query(query).values()
            wire_safe = [v if isinstance(v, (int, float, bool))
                         else str(v) for v in local]
            assert over_wire == wire_safe, query

    def test_multi_client_differential(self, worker_frontend,
                                       reference_db):
        """Eight concurrent clients hammer mixed verbs; every answer
        must equal the in-process engine's, and nothing may error."""
        host, port = worker_frontend.address
        expected = {q: reference_db.query(q).values() for q in QUERIES}
        expected = {q: [v if isinstance(v, (int, float, bool))
                        else str(v) for v in values]
                    for q, values in expected.items()}
        mismatches, errors = [], []

        def hammer(offset):
            with ServerClient(host, port) as client:
                for index in range(10):
                    query = QUERIES[(offset + index) % len(QUERIES)]
                    try:
                        if index % 5 == 4:
                            client.ping()
                        got = client.query_values(query)
                    except Exception as exc:  # noqa: BLE001
                        errors.append(repr(exc))
                        continue
                    if got != expected[query]:
                        mismatches.append(query)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[:3]
        assert not mismatches, mismatches[:3]

    def test_bad_query_is_typed(self, worker_client):
        with pytest.raises(RemoteQueryError) as info:
            worker_client.query("//item[")
        assert info.value.remote_type == "QuerySyntaxError"

    def test_per_request_timeout_over_the_wire(self, worker_client):
        with pytest.raises(QueryTimeoutError):
            # A query no other test caches: the deadline check fires at
            # plan entry, before any result could be produced.
            worker_client.query("//closed_auction//itemref",
                                timeout_seconds=1e-9)
        # The connection survives a timeout: next request works.
        assert worker_client.ping()["pong"]

    def test_write_verbs_do_not_exist_on_the_wire(self, worker_client):
        """The protocol exposes no mutating verb at all — workers are
        read-only by construction, not by runtime checks alone."""
        with pytest.raises(RemoteQueryError, match="unknown request"):
            worker_client.request({"verb": "load",
                                   "text": "<a/>", "uri": "new.xml"})
        with pytest.raises(RemoteQueryError, match="unknown request"):
            worker_client.request({"verb": "insert"})

    def test_worker_reload_picks_up_new_generation(self, data_dir,
                                                   worker_client):
        before = worker_client.generation()["generation"]
        writer = Database.open(data_dir)
        writer.insert("/site/regions/europe",
                      '<item id="reload-probe"><name>fresh</name>'
                      "</item>")
        writer.checkpoint()
        writer.close()
        outcome = worker_client.reload()
        assert outcome["ok"]
        assert outcome["workers"] == 2
        assert outcome["reloaded"] == [True, True]
        assert all(g > before for g in outcome["generations"])
        hits = worker_client.query_values(
            '//item[@id = "reload-probe"]/name')
        assert hits == ["fresh"]
        # A second reload is a no-op: already on the newest generation.
        assert worker_client.reload()["reloaded"] == [False, False]


class TestHTTPTransport:
    def test_http_query_and_metrics_same_port(self, worker_frontend,
                                              worker_client):
        host, port = worker_frontend.address
        body = json.dumps({"text": "count(//item)"}).encode()
        request = urllib.request.Request(
            f"http://{host}:{port}/query", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as reply:
            payload = json.loads(reply.read())
        assert payload["ok"] and payload["items"] == [float(
            worker_client.query_values("count(//item)")[0])]

        with urllib.request.urlopen(
                f"http://{host}:{port}/metrics") as reply:
            text = reply.read().decode()
        assert "repro_server_requests_total" in text
        assert "repro_server_workers 2" in text
        assert "repro_queries_total" in text  # engine families too

    def test_http_errors_are_status_coded(self, worker_frontend):
        host, port = worker_frontend.address
        body = json.dumps({"text": "//item["}).encode()
        request = urllib.request.Request(
            f"http://{host}:{port}/query", data=body)
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(f"http://{host}:{port}/nope")
        assert info.value.code == 404


class TestProtocolRobustness:
    def test_corrupt_frame_gets_typed_error_then_close(
            self, worker_frontend):
        host, port = worker_frontend.address
        sock = socket.create_connection((host, port), timeout=10)
        try:
            sock.sendall(protocol.MAGIC)
            frame = bytearray(protocol.pack_frame({"verb": "metrics"}))
            frame[-1] ^= 0xFF
            sock.sendall(bytes(frame))
            response = protocol.read_frame(sock)
            assert response["ok"] is False
            assert response["error_type"] == "ProtocolError"
            # The stream is unframed garbage from here: server hangs up.
            assert protocol.read_frame(sock) is None
        finally:
            sock.close()

    def test_unknown_transport_is_dropped(self, worker_frontend):
        host, port = worker_frontend.address
        sock = socket.create_connection((host, port), timeout=10)
        try:
            sock.sendall(b"GIBBERISH")
            sock.settimeout(10)
            # Closed without an answer — a FIN, or an RST if our ninth
            # byte was still unread in the server's buffer.
            try:
                assert sock.recv(1) == b""
            except ConnectionResetError:
                pass
        finally:
            sock.close()


class SleepyDatabase(Database):
    """Inline-mode stub: a request carrying ``sleep`` holds its
    execution slot for that many seconds (deterministic admission
    pressure without depending on machine speed)."""

    def execute_request(self, request):
        delay = request.get("sleep")
        if delay is not None:
            time.sleep(float(delay))
            return {"ok": True, "verb": "query", "items": ["slept"],
                    "count": 1, "strategy": "stub",
                    "elapsed_seconds": float(delay), "stats": {},
                    "source": "stub"}
        return super().execute_request(request)


@pytest.fixture()
def sleepy_db():
    database = SleepyDatabase(result_cache_size=0)
    database.load("<doc><a>1</a></doc>", uri="tiny.xml")
    yield database
    database.close()


class TestAdmissionControl:
    def test_overload_is_bounded_and_typed(self, sleepy_db):
        frontend = make_inline(sleepy_db, inline_concurrency=1,
                               max_queue=1)
        outcomes = {"ok": 0, "busy": 0, "other": 0}
        lock = threading.Lock()
        with frontend:
            host, port = frontend.address

            def slam():
                with ServerClient(host, port, retries=0) as client:
                    for _ in range(4):
                        try:
                            client.request({"verb": "query",
                                            "sleep": 0.05})
                            key = "ok"
                        except ServerBusyError:
                            key = "busy"
                        except Exception:  # noqa: BLE001
                            key = "other"
                        with lock:
                            outcomes[key] += 1

            threads = [threading.Thread(target=slam) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            exposition = frontend.registry.render_prometheus()
        assert outcomes["other"] == 0, outcomes
        assert outcomes["busy"] > 0, outcomes  # overload was rejected
        assert outcomes["ok"] > 0, outcomes    # but service continued
        assert ('repro_server_rejections_total{reason="queue_full"} '
                f'{outcomes["busy"]}') in exposition

    def test_default_timeout_is_injected(self, sleepy_db):
        frontend = make_inline(sleepy_db, default_timeout_seconds=1e-9)
        with frontend:
            host, port = frontend.address
            with ServerClient(host, port) as client:
                with pytest.raises(QueryTimeoutError):
                    client.query("//doc/a")  # no explicit timeout


class TestDrain:
    def test_drain_finishes_inflight_and_rejects_new(self, sleepy_db):
        frontend = make_inline(sleepy_db, inline_concurrency=2)
        inflight_result = {}
        with frontend:
            host, port = frontend.address
            client = ServerClient(host, port, retries=0)

            def long_request():
                inflight_result["response"] = client.request(
                    {"verb": "query", "sleep": 0.4})

            thread = threading.Thread(target=long_request)
            thread.start()
            deadline = time.monotonic() + 5.0
            while (frontend.report()["running"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.005)

            report = frontend.drain(timeout=10.0)
            thread.join(5.0)
            assert report["drained"] is True
            assert report["inflight_at_drain"] >= 1
            assert report["inflight_remaining"] == 0
            # The in-flight request finished with a real answer.
            assert inflight_result["response"]["items"] == ["slept"]
            # Anything new gets the typed DRAINING rejection (over the
            # pooled connection) or a refusal (listener is closed).
            with pytest.raises((ServerDrainingError, ServerError)):
                client.request({"verb": "query", "sleep": 0.01})
            client.close()

    def test_connection_limit(self, sleepy_db):
        frontend = make_inline(sleepy_db, max_connections=1)
        with frontend:
            host, port = frontend.address
            first = socket.create_connection((host, port), timeout=5)
            first.sendall(protocol.MAGIC)
            protocol.send_frame(first, {"verb": "admin",
                                        "action": "ping"})
            assert protocol.read_frame(first)["ok"]
            second = socket.create_connection((host, port), timeout=5)
            second.settimeout(5)
            assert second.recv(1) == b""  # closed by the limit
            first.close()
            second.close()

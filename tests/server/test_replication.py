"""Socket-level replication tests: routing, failover, differential.

A real three-node cluster in one process tree: a durable *writer*
database (the test's reference engine), a primary frontend serving its
directory with ``publish=True``, and two replica frontends that
bootstrap + tail the primary over the binary protocol and register
themselves (so the primary's router discovers them without
configuration).

Covered here:

* an 8-client mixed read/write differential — concurrent bounded reads
  through the primary (which may route them to either replica) while
  the writer mutates; at every quiesced phase each probe query's items
  must equal the in-process engine's, whichever node served it;
* replica death mid-workload — reads keep succeeding through
  transparent server-side failover, and a *direct* read against a lagging
  replica raises the typed, retryable ``REPLICA_STALE``;
* ``max_staleness_seconds=0`` never lands on a replica;
* per-replica ``repro_repl_*`` series merged into the primary's fleet
  ``/metrics``.

Timing rule (see ``tests/README.md``): no bare sleeps — every wait is
a bounded poll on an observable condition.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.engine.database import Database
from repro.errors import ReplicaStaleError, ServerError
from repro.replication import Replica, ReplicationPublisher
from repro.replication.replica import RemoteSource
from repro.server import ServerClient, ServerFrontend

from tests.replication.harness import (
    URI,
    make_document,
    random_op,
)

CLIENTS = 8
PHASES = 3
OPS_PER_PHASE = 3


def wait_until(condition, timeout=10.0, interval=0.02, message=""):
    """Bounded poll barrier — the deflaked replacement for sleeps."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return
        time.sleep(interval)
    raise AssertionError(f"condition not met in {timeout}s: {message}")


class Cluster:
    def __init__(self, root):
        self.data_dir = str(root / "primary.db")
        self.writer = Database.open(self.data_dir, checkpoint_every=0,
                                    fsync=False, keep_generations=4)
        rng = random.Random(2026)
        self.counter = [0]
        self.writer.load(make_document(rng, self.counter), uri=URI)
        self.writer.checkpoint()
        self.publisher = ReplicationPublisher(directory=self.data_dir)

        # One real worker process: inline mode has no reload RPC, and
        # the quiesce barrier republishes via checkpoint + reload.
        self.primary = ServerFrontend(
            data_dir=self.data_dir, workers=1, publish=True,
            router_health_interval=0.05).start()
        self.replicas = {}
        self.replica_frontends = {}
        for name in ("r1", "r2"):
            self.start_replica(name)
        host, port = self.primary.address
        self.client = ServerClient(host, port)
        self.wait_registered({"r1", "r2"})

    def start_replica(self, name):
        host, port = self.primary.address
        replica = Replica(RemoteSource(host, port), replica_id=name,
                          poll_interval=0.01)
        frontend = ServerFrontend(workers=0, replica=replica).start()
        replica.address = "%s:%d" % frontend.address
        replica.start()
        self.replicas[name] = replica
        self.replica_frontends[name] = frontend
        return replica

    def kill_replica(self, name):
        """A crash, as the router sees it: the serving socket dies and
        the tail loop stops; the registration + pin stay behind."""
        self.replica_frontends.pop(name).stop()
        self.replicas.pop(name).stop()

    def wait_registered(self, names):
        def registered():
            status = self.client.repl_status()
            return names <= set(status.get("replicas", {}))
        wait_until(registered, message=f"replicas {names} registering")
        router = self.primary.router
        wait_until(
            lambda: router is not None and
            {e.name for e in router.endpoints()} >= names,
            message="router discovering replicas")

    def quiesce(self, names=None):
        """Writer position fully applied on every named replica and
        visible to the primary's own serving database."""
        self.writer.checkpoint()
        self.client.reload()
        target = self.publisher.primary_lsn()
        for name in (names or list(self.replicas)):
            replica = self.replicas[name]
            wait_until(
                lambda r=replica: r.state == "tailing"
                and r.applied_lsn >= target
                and r.freshness_ts is not None,
                message=f"{name} draining to {target}")
        if self.primary.router is not None:
            self.primary.router.check_health_once()
        return target

    def close(self):
        self.client.close()
        for name in list(self.replica_frontends):
            self.kill_replica(name)
        self.primary.stop()
        self.writer.close()


@pytest.fixture()
def cluster(tmp_path):
    cluster = Cluster(tmp_path)
    yield cluster
    cluster.close()


def _probe_queries(counter):
    tags = [f"n{i}" for i in range(0, counter[0], 3)][:4] or ["n0"]
    return [f"//{tag}" for tag in tags] + ["//r", "count(//r)"]


def test_differential_mixed_clients(cluster):
    host, port = cluster.primary.address
    rng = random.Random(99)
    stop = threading.Event()
    errors = []

    def reader(index):
        thread_rng = random.Random(index)
        try:
            with ServerClient(host, port) as client:
                while not stop.is_set():
                    text = thread_rng.choice(
                        _probe_queries(cluster.counter))
                    bound = thread_rng.choice([None, 0.5, 5.0, 30.0])
                    response = client.query(
                        text, max_staleness_seconds=bound)
                    if response.get("served_by"):
                        assert bound is not None and bound > 0
                        assert response["staleness_seconds"] <= bound
        except Exception as exc:  # surfaced in the main thread
            errors.append((index, exc))

    threads = [threading.Thread(target=reader, args=(i,), daemon=True)
               for i in range(CLIENTS)]
    for thread in threads:
        thread.start()

    try:
        for _ in range(PHASES):
            for _ in range(OPS_PER_PHASE):
                random_op(rng, cluster.writer, cluster.counter)
            token = cluster.quiesce()
            assert not errors, f"reader contract violations: {errors}"
            # Differential at the quiesced point: whoever serves it —
            # the primary or either replica — must answer exactly like
            # the in-process engine.
            for text in _probe_queries(cluster.counter):
                expected = cluster.writer.query(text).values()
                via_primary = cluster.client.query(text)
                assert via_primary["items"] == expected
                via_bound = cluster.client.query(
                    text, max_staleness_seconds=60.0,
                    min_lsn=list(token))
                assert via_bound["items"] == expected
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
    assert not errors, f"reader contract violations: {errors}"


def test_zero_staleness_always_reads_primary(cluster):
    cluster.quiesce()
    for _ in range(20):
        response = cluster.client.query(
            "//r", max_staleness_seconds=0.0)
        assert "served_by" not in response, \
            "zero-staleness read served by a replica"
    # A nonzero bound against healthy, caught-up replicas does get
    # routed (this also proves the zero-bound case above was a policy
    # decision, not an unhealthy-replica accident).
    routed = set()
    for _ in range(20):
        response = cluster.client.query(
            "//r", max_staleness_seconds=30.0)
        if response.get("served_by"):
            routed.add(response["served_by"])
    assert routed, "no bounded read was ever routed to a replica"


def test_replica_kill_failover_and_typed_staleness(cluster):
    cluster.quiesce()
    # Direct client against a live replica first: a read-your-writes
    # token beyond what it has applied raises the typed, retryable
    # REPLICA_STALE with its position attached.
    replica = cluster.replicas["r1"]
    rhost, rport = cluster.replica_frontends["r1"].address
    applied = replica.applied_lsn
    with ServerClient(rhost, rport) as direct:
        served = direct.query("//r", max_staleness_seconds=30.0)
        assert served["served_by"] == "r1"
        with pytest.raises(ReplicaStaleError) as excinfo:
            direct.query("//r",
                         min_lsn=[applied[0], applied[1] + 10_000])
        assert excinfo.value.code == "REPLICA_STALE"
        assert excinfo.value.applied_lsn is not None

    # Now kill r1 and hammer bounded reads through the primary: every
    # one must succeed (router fails over to r2 or the primary), and
    # the fleet keeps serving while the router notices the corpse.
    cluster.kill_replica("r1")
    for _ in range(30):
        response = cluster.client.query(
            "//r", max_staleness_seconds=30.0)
        assert response["ok"]
        assert response.get("served_by") != "r1"
    report = cluster.primary.report()["replication"]["router"]
    assert report["routed_to_replica"] + report["fallbacks_to_primary"] > 0

    # r2 alone still serves bounded reads.
    def routed_to_r2():
        response = cluster.client.query(
            "//r", max_staleness_seconds=30.0)
        return response.get("served_by") == "r2"
    wait_until(routed_to_r2, message="failover to the surviving replica")


def test_fleet_metrics_include_replicas(cluster):
    cluster.quiesce()
    # Ensure both replicas have served at least once so their serving
    # counters are interesting, then scrape the primary's fleet text.
    for _ in range(8):
        cluster.client.query("//r", max_staleness_seconds=30.0)
    text = cluster.primary.metrics_text()
    assert "repro_repl_registered_replicas" in text
    assert "repro_repl_batches_shipped_total" in text or \
           "repro_repl_batches_total" in text
    for name in ("r1", "r2"):
        assert f'worker="replica-{name}"' in text, \
            f"fleet metrics missing {name}'s exposition"
    assert "repro_repl_staleness_seconds" in text
    assert "repro_repl_routed_total" in text

"""Wire-protocol unit tests: framing, corruption, error mapping."""

import socket
import threading

import pytest

from repro.errors import (
    ExecutionError,
    ProtocolError,
    QuerySyntaxError,
    QueryTimeoutError,
    RemoteQueryError,
    ServerBusyError,
    ServerDrainingError,
    ServerError,
)
from repro.server import protocol


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_round_trip(self, pair):
        left, right = pair
        payload = {"verb": "query", "text": "//item/name",
                   "variables": {"x": 1, "y": [1.5, None, True]},
                   "blob": b"\x00\xff", "nested": {"a": ("t", "u")}}
        protocol.send_frame(left, payload)
        received = protocol.read_frame(right)
        # pack_obj round-trips tuples as lists; everything else exact.
        assert received["verb"] == "query"
        assert received["text"] == "//item/name"
        assert received["variables"] == {"x": 1, "y": [1.5, None, True]}
        assert received["blob"] == b"\x00\xff"

    def test_many_frames_one_connection(self, pair):
        left, right = pair
        for index in range(20):
            protocol.send_frame(left, {"seq": index})
        for index in range(20):
            assert protocol.read_frame(right) == {"seq": index}

    def test_clean_eof_is_none(self, pair):
        left, right = pair
        left.close()
        assert protocol.read_frame(right) is None

    def test_truncated_header(self, pair):
        left, right = pair
        left.sendall(b"\x00\x00\x00")  # 3 of the 8 header bytes
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            protocol.read_frame(right)

    def test_truncated_payload(self, pair):
        left, right = pair
        frame = protocol.pack_frame({"verb": "query", "text": "//a"})
        left.sendall(frame[:-4])  # drop the payload tail
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            protocol.read_frame(right)

    def test_crc_mismatch(self, pair):
        left, right = pair
        frame = bytearray(protocol.pack_frame({"verb": "metrics"}))
        frame[-1] ^= 0xFF  # flip one payload byte; header CRC is stale
        left.sendall(bytes(frame))
        with pytest.raises(ProtocolError, match="CRC"):
            protocol.read_frame(right)

    def test_oversized_length_prefix(self, pair):
        left, right = pair
        header = protocol.FRAME_HEADER.pack(
            protocol.MAX_FRAME_BYTES + 1, 0)
        left.sendall(header)
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.read_frame(right)

    def test_non_dict_payload(self, pair):
        from repro.durability.format import crc32, pack_obj

        left, right = pair
        payload = pack_obj([1, 2, 3])
        left.sendall(protocol.FRAME_HEADER.pack(
            len(payload), crc32(payload)) + payload)
        with pytest.raises(ProtocolError, match="dictionary"):
            protocol.read_frame(right)

    def test_recv_exact_reassembles_fragments(self, pair):
        left, right = pair
        data = bytes(range(256)) * 64

        def dribble():
            for offset in range(0, len(data), 1000):
                left.sendall(data[offset:offset + 1000])

        thread = threading.Thread(target=dribble)
        thread.start()
        received = protocol.recv_exact(right, len(data))
        thread.join()
        assert received == data


class TestErrorMapping:
    def test_error_codes(self):
        assert protocol.error_code(ServerBusyError("q full")) == "BUSY"
        assert protocol.error_code(
            ServerDrainingError("bye")) == "DRAINING"
        assert protocol.error_code(
            QueryTimeoutError("deadline")) == "TIMEOUT"
        assert protocol.error_code(
            QuerySyntaxError("parse")) == "BAD_REQUEST"
        assert protocol.error_code(
            ExecutionError("boom")) == "QUERY_ERROR"
        assert protocol.error_code(ValueError("?")) == "INTERNAL"

    def test_payload_shape(self):
        payload = protocol.error_payload(QuerySyntaxError("bad token"))
        assert payload == {"ok": False, "code": "BAD_REQUEST",
                           "error": "bad token",
                           "error_type": "QuerySyntaxError"}

    def test_raise_for_response_success_passthrough(self):
        response = {"ok": True, "items": [1]}
        assert protocol.raise_for_response(response) is response

    @pytest.mark.parametrize("code,expected", [
        ("BUSY", ServerBusyError),
        ("DRAINING", ServerDrainingError),
        ("TIMEOUT", QueryTimeoutError),
        ("BAD_REQUEST", RemoteQueryError),
        ("QUERY_ERROR", RemoteQueryError),
        ("INTERNAL", ServerError),
    ])
    def test_raise_for_response_errors(self, code, expected):
        with pytest.raises(expected):
            protocol.raise_for_response(
                {"ok": False, "code": code, "error": "x",
                 "error_type": "ExecutionError"})

    def test_remote_type_is_preserved(self):
        with pytest.raises(RemoteQueryError) as info:
            protocol.raise_for_response(
                {"ok": False, "code": "BAD_REQUEST",
                 "error": "unexpected token",
                 "error_type": "QuerySyntaxError"})
        assert info.value.remote_type == "QuerySyntaxError"

    def test_http_status_mapping(self):
        assert protocol.http_status_for({"ok": True})[0] == 200
        assert protocol.http_status_for(
            {"ok": False, "code": "BUSY"})[0] == 503
        assert protocol.http_status_for(
            {"ok": False, "code": "TIMEOUT"})[0] == 504
        assert protocol.http_status_for(
            {"ok": False, "code": "BAD_REQUEST"})[0] == 400
        assert protocol.http_status_for(
            {"ok": False, "code": "QUERY_ERROR"})[0] == 422
        assert protocol.http_status_for(
            {"ok": False, "code": "INTERNAL"})[0] == 500


class TestHTTP:
    def test_read_http_request(self, pair):
        left, right = pair
        body = b'{"text": "//item"}'
        raw = (b"POST /query HTTP/1.1\r\n"
               b"Host: x\r\nContent-Type: application/json\r\n"
               b"Content-Length: " + str(len(body)).encode() +
               b"\r\n\r\n" + body)
        # The transport sniffer consumes eight bytes first.
        left.sendall(raw)
        initial = protocol.recv_exact(right, 8)
        method, path, headers, got = protocol.read_http_request(
            right, initial=initial)
        assert (method, path) == ("POST", "/query")
        assert headers["content-type"] == "application/json"
        assert got == body

    def test_parse_json_body_rejects_garbage(self):
        with pytest.raises(ExecutionError, match="not valid JSON"):
            protocol.parse_json_body(b"{nope")
        with pytest.raises(ExecutionError, match="JSON object"):
            protocol.parse_json_body(b"[1, 2]")
        assert protocol.parse_json_body(b"") == {}

    def test_http_response_shape(self):
        raw = protocol.http_json_response({"ok": True, "pong": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Connection: close" in head
        assert b'"pong": true' in body

"""Edge-case tests for the XQuery interpreter and its helpers."""

import pytest

from repro.errors import QueryTypeError
from repro.xml.model import (
    Attribute,
    Comment,
    Document,
    Element,
    ProcessingInstruction,
    Text,
)
from repro.xml.parser import parse
from repro.xml.serializer import serialize
from repro.xquery import evaluate_xquery
from repro.xquery.interpreter import clone_node, sequence_to_string


class TestCloneNode:
    def test_clone_element_deep(self):
        source = parse('<a x="1"><b>t</b><!--c--><?p d?></a>').root
        copy = clone_node(source)
        assert copy is not source
        assert serialize(copy) == serialize(source)
        assert copy.parent is None

    def test_clone_document(self):
        doc = parse("<a><b/></a>")
        copy = clone_node(doc)
        assert isinstance(copy, Document)
        assert serialize(copy) == serialize(doc)

    def test_clone_leaves(self):
        assert clone_node(Text("x")).value == "x"
        assert clone_node(Comment("c")).value == "c"
        assert clone_node(Attribute("n", "v")).value == "v"
        pi = clone_node(ProcessingInstruction("t", "d"))
        assert (pi.target, pi.data) == ("t", "d")


class TestConstructorCorners:
    def run(self, query, text="<r><a k='1'>x</a><a k='2'>y</a></r>"):
        return evaluate_xquery(query, documents={"d.xml": parse(text)})

    def test_attribute_node_in_content_becomes_attribute(self):
        result = self.run('for $k in doc("d.xml")//a[1]/@k '
                          "return <o>{$k}</o>")
        assert result[0].get_attribute("k") == "1"

    def test_document_node_in_content_splices_children(self):
        result = self.run('<wrap>{doc("d.xml")}</wrap>')
        wrapped = result[0]
        assert [c.tag for c in wrapped.child_elements()] == ["r"]

    def test_sequence_of_nodes_copied_in_order(self):
        result = self.run('<all>{doc("d.xml")//a}</all>')
        assert [c.get_attribute("k")
                for c in result[0].child_elements()] == ["1", "2"]

    def test_mixed_atoms_and_nodes(self):
        result = self.run('<m>{1, 2, doc("d.xml")//a[1], 3}</m>')
        text_parts = [c for c in result[0].children()]
        assert result[0].string_value() == "1 2x3"

    def test_nested_constructor_attribute_template_spacing(self):
        result = self.run("<o s='{(1, 2, 3)}'/>")
        assert result[0].get_attribute("s") == "1 2 3"

    def test_empty_enclosed_sequence(self):
        result = self.run("<o>{()}</o>")
        assert result[0].string_value() == ""


class TestOrderByCorners:
    DOC = ("<r><i><n>b</n><v>2</v></i><i><n>a</n><v>10</v></i>"
           "<i><n>c</n><v>1</v></i></r>")

    def run(self, query):
        return evaluate_xquery(query, documents={"d.xml": parse(self.DOC)})

    def test_numeric_keys_sort_numerically(self):
        result = self.run('for $i in doc("d.xml")//i order by $i/v '
                          "return $i/v/text()")
        assert [n.string_value() for n in result] == ["1", "2", "10"]

    def test_string_keys_sort_lexically(self):
        result = self.run('for $i in doc("d.xml")//i order by $i/n '
                          "return $i/n/text()")
        assert [n.string_value() for n in result] == ["a", "b", "c"]

    def test_empty_key_sorts_first_as_empty_string(self):
        result = self.run('for $i in doc("d.xml")//i '
                          "order by $i/missing return count($i)")
        assert result == [1.0, 1.0, 1.0]

    def test_multi_key_stable(self):
        result = self.run(
            'for $i in doc("d.xml")//i '
            "order by count($i/ghost), $i/n descending "
            "return $i/n/text()")
        assert [n.string_value() for n in result] == ["c", "b", "a"]

    def test_sequence_key_rejected(self):
        with pytest.raises(QueryTypeError):
            self.run('for $i in doc("d.xml")/r '
                     "order by $i/i/v return $i")


class TestSequenceToString:
    def test_mixed_sequence(self):
        element = Element("a")
        element.append_text("x")
        assert sequence_to_string([element, 1.0, "s"]) == "<a>x</a> 1 s"

    def test_non_list(self):
        assert sequence_to_string(2.5) == "2.5"


class TestFunctionsCorners:
    def run(self, query):
        return evaluate_xquery(
            query, documents={"d.xml": parse("<r><v>3</v><v>4</v></r>")})

    def test_avg_min_max_empty(self):
        assert self.run('avg(doc("d.xml")//ghost)') == []
        assert self.run('min(doc("d.xml")//ghost)') == []
        assert self.run('max(doc("d.xml")//ghost)') == []

    def test_aggregates_over_non_numeric_rejected(self):
        with pytest.raises(QueryTypeError):
            evaluate_xquery("avg(('a', 'b'))",
                            documents={"d.xml": parse("<r/>")})

    def test_string_join_of_nodes(self):
        assert self.run(
            'string-join(doc("d.xml")//v, "+")') == ["3+4"]

    def test_distinct_values_preserves_first_occurrence_order(self):
        assert evaluate_xquery("distinct-values((3, 1, 3, 2, 1))",
                               documents={}) == [3.0, 1.0, 2.0]

"""Tests for the XQuery parser (FLWOR, constructors, and friends)."""

import pytest

from repro.errors import QuerySyntaxError
from repro.xpath import ast as xp
from repro.xquery import ast as xq
from repro.xquery.parser import parse_xquery


class TestFLWOR:
    def test_simple_for_return(self):
        expr = parse_xquery("for $b in //book return $b")
        assert isinstance(expr, xq.FLWOR)
        assert len(expr.clauses) == 1
        assert expr.clauses[0].variable == "b"
        assert expr.return_expr == xq.VarRef("b")

    def test_for_with_path_source(self):
        expr = parse_xquery('for $b in document("bib.xml")/bib/book '
                            "return $b/title")
        clause = expr.clauses[0]
        assert isinstance(clause.expr, xq.PathFrom)
        assert isinstance(clause.expr.source, xp.FunctionCall)
        assert isinstance(expr.return_expr, xq.PathFrom)

    def test_multiple_for_variables_one_clause(self):
        expr = parse_xquery("for $a in //x, $b in //y return $a")
        assert [c.variable for c in expr.clauses] == ["a", "b"]
        assert all(isinstance(c, xq.ForClause) for c in expr.clauses)

    def test_mixed_for_let(self):
        # Example 1 from the paper (shape).
        expr = parse_xquery(
            "for $a in //e1, $b in //e2 "
            "let $c := //e3, $d := //e4 "
            "for $e in //e5 "
            "return $a")
        kinds = [type(c).__name__ for c in expr.clauses]
        assert kinds == ["ForClause", "ForClause", "LetClause",
                         "LetClause", "ForClause"]

    def test_for_at_position_variable(self):
        expr = parse_xquery("for $x at $i in //a return $i")
        assert expr.clauses[0].position_var == "i"

    def test_where_clause(self):
        expr = parse_xquery(
            "for $b in //book where $b/price > 50 return $b/title")
        assert isinstance(expr.where, xp.BinaryOp)

    def test_order_by(self):
        expr = parse_xquery(
            "for $b in //book order by $b/title descending, $b/@year "
            "return $b")
        assert len(expr.order_by) == 2
        assert expr.order_by[0].descending
        assert not expr.order_by[1].descending

    def test_nested_flwor(self):
        expr = parse_xquery(
            "for $a in //x return for $b in $a/y return $b")
        assert isinstance(expr.return_expr, xq.FLWOR)

    def test_missing_return_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_xquery("for $a in //x")

    def test_let_requires_assignment(self):
        with pytest.raises(QuerySyntaxError):
            parse_xquery("let $a in //x return $a")


class TestConstructors:
    def test_empty_element(self):
        expr = parse_xquery("<results/>")
        assert expr == xq.ElementConstructor("results")

    def test_text_content(self):
        expr = parse_xquery("<greeting>hello world</greeting>")
        assert expr.children == ("hello world",)

    def test_enclosed_expression(self):
        expr = parse_xquery("<out>{ 1 + 2 }</out>")
        enclosed = expr.children[0]
        assert isinstance(enclosed, xq.EnclosedExpr)
        assert isinstance(enclosed.expr, xp.BinaryOp)

    def test_nested_constructor(self):
        expr = parse_xquery("<a><b>{$x}</b><c/></a>")
        assert isinstance(expr.children[0], xq.ElementConstructor)
        assert expr.children[0].tag == "b"
        assert expr.children[1].tag == "c"

    def test_fig1_query_shape(self):
        """The exact Fig. 1(a) query from the paper parses into the
        expected structure."""
        expr = parse_xquery(
            '<results> {'
            ' for $b in document("bib.xml")/bib/book'
            ' let $t := $b/title'
            ' let $a := $b/author'
            ' return <result> {$t} {$a} </result>'
            ' } </results>')
        assert isinstance(expr, xq.ElementConstructor)
        assert expr.tag == "results"
        flwor = [c for c in expr.children
                 if isinstance(c, xq.EnclosedExpr)][0].expr
        assert isinstance(flwor, xq.FLWOR)
        inner = flwor.return_expr
        assert isinstance(inner, xq.ElementConstructor)
        assert inner.tag == "result"
        placeholders = [c for c in inner.children
                        if isinstance(c, xq.EnclosedExpr)]
        assert len(placeholders) == 2

    def test_attribute_templates(self):
        expr = parse_xquery('<a year="{$y}-x"/>')
        name, template = expr.attributes[0]
        assert name == "year"
        assert isinstance(template.parts[0], xq.EnclosedExpr)
        assert template.parts[1] == "-x"

    def test_boundary_whitespace_stripped(self):
        expr = parse_xquery("<a>  <b/>  </a>")
        assert all(not isinstance(c, str) for c in expr.children)

    def test_brace_escapes(self):
        expr = parse_xquery("<a>{{literal}}</a>")
        assert expr.children == ("{literal}",)

    def test_mismatched_end_tag_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_xquery("<a></b>")

    def test_unclosed_constructor_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_xquery("<a><b></b>")

    def test_unclosed_enclosed_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_xquery("<a>{ 1 + 2 </a>")


class TestOtherForms:
    def test_if_then_else(self):
        expr = parse_xquery("if ($x > 1) then 'big' else 'small'")
        assert isinstance(expr, xq.IfExpr)

    def test_quantified_some(self):
        expr = parse_xquery("some $x in //a satisfies $x > 1")
        assert expr.quantifier == "some"

    def test_quantified_every(self):
        expr = parse_xquery("every $x in //a satisfies $x > 1")
        assert expr.quantifier == "every"

    def test_sequence(self):
        expr = parse_xquery("1, 2, 3")
        assert isinstance(expr, xq.SequenceExpr)
        assert len(expr.items) == 3

    def test_empty_sequence(self):
        assert parse_xquery("()") == xq.SequenceExpr(())

    def test_range(self):
        expr = parse_xquery("1 to 5")
        assert isinstance(expr, xq.RangeExpr)

    def test_variable_path(self):
        expr = parse_xquery("$b/title/text()")
        assert isinstance(expr, xq.PathFrom)
        assert expr.source == xq.VarRef("b")
        assert len(expr.path.steps) == 2

    def test_variable_descendant_path(self):
        expr = parse_xquery("$b//title")
        assert expr.path.steps[0].axis is xp.Axis.DESCENDANT_OR_SELF

    def test_comments_in_query(self):
        expr = parse_xquery("(: doc :) for $x in //a return $x")
        assert isinstance(expr, xq.FLWOR)

    def test_plain_xpath_still_parses(self):
        expr = parse_xquery("/bib/book[@year = '1994']/title")
        assert isinstance(expr, xp.LocationPath)

"""Tests for the reference XQuery interpreter."""

import pytest

from repro.errors import ExecutionError, QueryTypeError
from repro.xml.parser import parse
from repro.xml.serializer import serialize
from repro.xquery import evaluate_xquery
from repro.xquery.interpreter import sequence_to_string

BIB = """
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>Economics of Technology</title>
    <editor><last>Gerbarg</last><first>Darcy</first></editor>
    <price>129.95</price>
  </book>
</bib>
"""


@pytest.fixture(scope="module")
def docs():
    return {"bib.xml": parse(BIB)}


def run(query, docs):
    return evaluate_xquery(query, documents=docs)


class TestFLWOR:
    def test_simple_for(self, docs):
        result = run('for $b in doc("bib.xml")/bib/book return $b/title',
                     docs)
        assert [n.string_value() for n in result] == [
            "TCP/IP Illustrated", "Data on the Web",
            "Economics of Technology"]

    def test_let_binds_whole_sequence(self, docs):
        result = run('let $t := doc("bib.xml")//title return count($t)',
                     docs)
        assert result == [3.0]

    def test_for_iterates_item_wise(self, docs):
        result = run('for $t in doc("bib.xml")//title return count($t)',
                     docs)
        assert result == [1.0, 1.0, 1.0]

    def test_where(self, docs):
        result = run(
            'for $b in doc("bib.xml")/bib/book '
            "where $b/price > 50 return $b/title/text()", docs)
        assert [n.string_value() for n in result] == [
            "TCP/IP Illustrated", "Economics of Technology"]

    def test_order_by_string(self, docs):
        result = run(
            'for $b in doc("bib.xml")/bib/book '
            "order by $b/title return $b/@year", docs)
        assert [n.value for n in result] == ["2000", "1999", "1994"]

    def test_order_by_numeric_descending(self, docs):
        result = run(
            'for $b in doc("bib.xml")/bib/book '
            "order by $b/price descending return $b/price", docs)
        values = [float(n.string_value()) for n in result]
        assert values == sorted(values, reverse=True)

    def test_cross_product_of_for_clauses(self, docs):
        result = run(
            'for $x in 1 to 2, $y in 1 to 3 return $x * 10 + $y', docs)
        assert result == [11.0, 12.0, 13.0, 21.0, 22.0, 23.0]

    def test_position_variable(self, docs):
        result = run(
            'for $b at $i in doc("bib.xml")/bib/book return $i', docs)
        assert result == [1.0, 2.0, 3.0]

    def test_nested_flwor(self, docs):
        result = run(
            'for $b in doc("bib.xml")/bib/book '
            "return for $a in $b/author return $a/last/text()", docs)
        assert [n.string_value() for n in result] == [
            "Stevens", "Abiteboul", "Buneman"]

    def test_example1_environment_cardinality(self, docs):
        """Example 1 of the paper: for/let/for nesting produces one
        result per total variable binding (root-to-leaf path in Fig. 2)."""
        result = run(
            "for $a in 1 to 3 "
            "let $c := ('x', 'y') "
            "for $e in 1 to 2 "
            "return concat($a, '-', count($c), '-', $e)", docs)
        # 3 bindings for $a times 2 for $e; $c never multiplies.
        assert len(result) == 6
        assert result[0] == "1-2-1"


class TestConstructors:
    def test_fig1_query(self, docs):
        """The paper's Fig. 1(a) query end to end."""
        result = run(
            '<results> {'
            ' for $b in document("bib.xml")/bib/book'
            ' let $t := $b/title'
            ' let $a := $b/author'
            ' return <result> {$t} {$a} </result>'
            ' } </results>', docs)
        assert len(result) == 1
        results_el = result[0]
        assert results_el.tag == "results"
        inner = list(results_el.child_elements("result"))
        assert len(inner) == 3
        first = inner[0]
        assert [c.tag for c in first.child_elements()] == ["title", "author"]
        # Third book has no author: result element holds only the title.
        assert [c.tag for c in inner[2].child_elements()] == ["title"]
        # Content is copied, not moved.
        assert serialize(inner[0].find("title")) == \
            "<title>TCP/IP Illustrated</title>"

    def test_attribute_template(self, docs):
        result = run(
            'for $b in doc("bib.xml")/bib/book[1] '
            'return <b y="year-{$b/@year}"/>', docs)
        assert result[0].get_attribute("y") == "year-1994"

    def test_atomics_space_joined(self, docs):
        result = run("<nums>{1 to 3}</nums>", docs)
        assert result[0].string_value() == "1 2 3"

    def test_mixed_literal_and_enclosed(self, docs):
        result = run("<t>count: {count((1,2))}</t>", docs)
        assert result[0].string_value() == "count: 2"

    def test_constructed_tree_is_queryable(self, docs):
        result = run(
            "let $t := <a><b><c>deep</c></b></a> return $t//c", docs)
        assert [n.string_value() for n in result] == ["deep"]

    def test_document_order_on_constructed_tree(self, docs):
        result = run(
            "let $t := <a><b/><c/></a> return $t/*", docs)
        assert [n.tag for n in result] == ["b", "c"]


class TestOtherForms:
    def test_if_then_else(self, docs):
        result = run(
            'for $b in doc("bib.xml")/bib/book '
            "return if ($b/price > 100) then 'pricey' else 'ok'", docs)
        assert result == ["ok", "ok", "pricey"]

    def test_quantifiers(self, docs):
        assert run('some $b in doc("bib.xml")//book '
                   "satisfies $b/price > 100", docs) == [True]
        assert run('every $b in doc("bib.xml")//book '
                   "satisfies $b/price > 100", docs) == [False]

    def test_sequences_flatten(self, docs):
        assert run("(1, (2, 3), ())", docs) == [1.0, 2.0, 3.0]

    def test_range(self, docs):
        assert run("2 to 5", docs) == [2.0, 3.0, 4.0, 5.0]

    def test_range_non_numeric_rejected(self, docs):
        with pytest.raises(QueryTypeError):
            run("'a' to 'b'", docs)

    def test_undefined_variable_rejected(self, docs):
        with pytest.raises(ExecutionError):
            run("$nope", docs)

    def test_unknown_document_rejected(self, docs):
        with pytest.raises(ExecutionError):
            run('doc("other.xml")', docs)

    def test_path_on_atomic_rejected(self, docs):
        with pytest.raises(QueryTypeError):
            run("let $x := 5 return $x/y", docs)


class TestFunctions:
    def test_data(self, docs):
        result = run('data(doc("bib.xml")//last)', docs)
        assert result == ["Stevens", "Abiteboul", "Buneman", "Gerbarg"]

    def test_distinct_values(self, docs):
        result = run(
            'distinct-values(for $b in doc("bib.xml")//book '
            "return count($b/author))", docs)
        assert result == [1.0, 2.0, 0.0]

    def test_empty_exists(self, docs):
        assert run('empty(doc("bib.xml")//magazine)', docs) == [True]
        assert run('exists(doc("bib.xml")//book)', docs) == [True]

    def test_aggregates(self, docs):
        assert run('max(doc("bib.xml")//price)', docs) == [129.95]
        assert run('min(doc("bib.xml")//price)', docs) == [39.95]
        result = run('avg(doc("bib.xml")//price)', docs)
        assert abs(result[0] - (65.95 + 39.95 + 129.95) / 3) < 1e-9

    def test_string_join(self, docs):
        assert run('string-join(("a", "b", "c"), "-")', docs) == ["a-b-c"]

    def test_sequence_to_string(self, docs):
        text = sequence_to_string(run("<a>x</a>, 1", docs))
        assert text == "<a>x</a> 1"

    def test_implicit_context_document(self, docs):
        # With a single document loaded, absolute paths work without doc().
        assert len(run("/bib/book", docs)) == 3

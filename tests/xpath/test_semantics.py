"""Tests for the reference XPath evaluator (the ground-truth semantics)."""

import math

import pytest

from repro.errors import QueryTypeError
from repro.xml.parser import parse
from repro.xpath import evaluate_xpath

BIB = """
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>Economics of Technology</title>
    <editor><last>Gerbarg</last><first>Darcy</first></editor>
    <price>129.95</price>
  </book>
</bib>
"""


@pytest.fixture(scope="module")
def doc():
    return parse(BIB)


def tags(nodes):
    return [n.tag for n in nodes]


def texts(nodes):
    return [n.string_value() for n in nodes]


class TestPaths:
    def test_child_path(self, doc):
        result = evaluate_xpath("/bib/book/title", doc)
        assert texts(result) == ["TCP/IP Illustrated", "Data on the Web",
                                 "Economics of Technology"]

    def test_descendant_path(self, doc):
        result = evaluate_xpath("//last", doc)
        assert texts(result) == ["Stevens", "Abiteboul", "Buneman", "Gerbarg"]

    def test_internal_descendant(self, doc):
        result = evaluate_xpath("/bib//first", doc)
        assert len(result) == 4

    def test_wildcard(self, doc):
        result = evaluate_xpath("/bib/book/*", doc)
        assert len(result) == 10  # titles, authors, editor, prices

    def test_attribute_axis(self, doc):
        result = evaluate_xpath("/bib/book/@year", doc)
        assert [n.value for n in result] == ["1994", "2000", "1999"]

    def test_text_kind_test(self, doc):
        result = evaluate_xpath("/bib/book/title/text()", doc)
        assert texts(result)[0] == "TCP/IP Illustrated"

    def test_parent_axis(self, doc):
        result = evaluate_xpath("//last/../..", doc)
        assert {n.tag for n in result} == {"book"}

    def test_following_sibling(self, doc):
        result = evaluate_xpath(
            "/bib/book/title/following-sibling::price", doc)
        assert len(result) == 3

    def test_self_axis(self, doc):
        result = evaluate_xpath("/bib/.", doc)
        assert tags(result) == ["bib"]

    def test_root_path(self, doc):
        result = evaluate_xpath("/", doc)
        assert result == [doc]

    def test_document_order_and_dedup(self, doc):
        # //author//* and //last overlap; union must dedup and sort.
        result = evaluate_xpath("//author/* | //last", doc)
        pres = [n.pre for n in result]
        assert pres == sorted(set(pres))

    def test_relative_path_from_element(self, doc):
        book = evaluate_xpath("/bib/book", doc)[0]
        result = evaluate_xpath("author/last", book)
        assert texts(result) == ["Stevens"]

    def test_missing_path_is_empty(self, doc):
        assert evaluate_xpath("/bib/magazine", doc) == []


class TestPredicates:
    def test_existence(self, doc):
        result = evaluate_xpath("/bib/book[editor]", doc)
        assert len(result) == 1
        assert evaluate_xpath("//book[author][title]", doc) != []

    def test_attribute_comparison(self, doc):
        result = evaluate_xpath("/bib/book[@year = '1994']/title", doc)
        assert texts(result) == ["TCP/IP Illustrated"]

    def test_numeric_comparison(self, doc):
        result = evaluate_xpath("/bib/book[price > 50]/title", doc)
        assert texts(result) == ["TCP/IP Illustrated",
                                 "Economics of Technology"]

    def test_position_predicate(self, doc):
        result = evaluate_xpath("/bib/book[2]/title", doc)
        assert texts(result) == ["Data on the Web"]

    def test_position_function(self, doc):
        result = evaluate_xpath("/bib/book[position() = 3]/@year", doc)
        assert [n.value for n in result] == ["1999"]

    def test_last_function(self, doc):
        result = evaluate_xpath("/bib/book[last()]/title", doc)
        assert texts(result) == ["Economics of Technology"]

    def test_boolean_connectives(self, doc):
        both = evaluate_xpath("/bib/book[author and price > 50]", doc)
        assert len(both) == 1
        either = evaluate_xpath("/bib/book[editor or @year = '1994']", doc)
        assert len(either) == 2

    def test_not(self, doc):
        result = evaluate_xpath("/bib/book[not(author)]", doc)
        assert len(result) == 1

    def test_nested_predicates(self, doc):
        result = evaluate_xpath("/bib/book[author[last = 'Buneman']]", doc)
        assert len(result) == 1

    def test_existential_comparison_over_nodeset(self, doc):
        # The second book has two authors; = is existential.
        result = evaluate_xpath(
            "/bib/book[author/last = 'Buneman']/title", doc)
        assert texts(result) == ["Data on the Web"]

    def test_count_predicate(self, doc):
        result = evaluate_xpath("/bib/book[count(author) = 2]/title", doc)
        assert texts(result) == ["Data on the Web"]

    def test_contains(self, doc):
        result = evaluate_xpath(
            "/bib/book[contains(title, 'Web')]/@year", doc)
        assert [n.value for n in result] == ["2000"]


class TestValues:
    def test_count(self, doc):
        assert evaluate_xpath("count(//author)", doc) == 3.0

    def test_sum(self, doc):
        total = evaluate_xpath("sum(/bib/book/price)", doc)
        assert math.isclose(total, 65.95 + 39.95 + 129.95)

    def test_arithmetic(self, doc):
        assert evaluate_xpath("2 + 3 * 4", doc) == 14.0
        assert evaluate_xpath("10 div 4", doc) == 2.5
        assert evaluate_xpath("7 mod 3", doc) == 1.0
        assert evaluate_xpath("-(2 + 3)", doc) == -5.0

    def test_division_by_zero(self, doc):
        assert evaluate_xpath("1 div 0", doc) == float("inf")
        assert math.isnan(evaluate_xpath("0 div 0", doc))
        assert math.isnan(evaluate_xpath("5 mod 0", doc))

    def test_string_functions(self, doc):
        assert evaluate_xpath("concat('a', 'b', 'c')", doc) == "abc"
        assert evaluate_xpath("starts-with('abc', 'ab')", doc) is True
        assert evaluate_xpath("string-length('hello')", doc) == 5.0
        assert evaluate_xpath("substring('hello', 2, 3)", doc) == "ell"
        assert evaluate_xpath("normalize-space('  a   b ')", doc) == "a b"

    def test_string_of_nodeset(self, doc):
        # string() of a node-set is the first node's string value.
        assert evaluate_xpath(
            "string(/bib/book/title)", doc) == "TCP/IP Illustrated"

    def test_number_conversion(self, doc):
        assert evaluate_xpath("number('42')", doc) == 42.0
        assert math.isnan(evaluate_xpath("number('x')", doc))

    def test_rounding(self, doc):
        assert evaluate_xpath("floor(1.9)", doc) == 1.0
        assert evaluate_xpath("ceiling(1.1)", doc) == 2.0
        assert evaluate_xpath("round(2.5)", doc) == 3.0

    def test_name_function(self, doc):
        assert evaluate_xpath("name(/bib/book)", doc) == "book"

    def test_booleans(self, doc):
        assert evaluate_xpath("true()", doc) is True
        assert evaluate_xpath("false()", doc) is False
        assert evaluate_xpath("boolean(//book)", doc) is True
        assert evaluate_xpath("boolean(//ghost)", doc) is False

    def test_comparison_flipping(self, doc):
        # literal op node-set must flip the operator, not the result.
        assert evaluate_xpath("50 < /bib/book/price", doc) is True
        assert evaluate_xpath("200 < /bib/book/price", doc) is False

    def test_unknown_function_rejected(self, doc):
        with pytest.raises(QueryTypeError):
            evaluate_xpath("frobnicate(1)", doc)

    def test_count_of_non_nodeset_rejected(self, doc):
        with pytest.raises(QueryTypeError):
            evaluate_xpath("count(3)", doc)

    def test_union_of_non_nodeset_rejected(self, doc):
        with pytest.raises(QueryTypeError):
            evaluate_xpath("1 | 2", doc)

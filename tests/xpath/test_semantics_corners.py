"""Additional reference-evaluator corner cases."""

import pytest

from repro.errors import ExecutionError
from repro.xml.model import Element
from repro.xml.parser import parse
from repro.xpath import evaluate_xpath
from repro.xpath.semantics import (
    document_order_key,
    number_value,
    sequence_boolean,
    string_value,
)

DOC = parse('<r a="1" b="2"><x><y>t</y></x><x/></r>')


class TestAxesCorners:
    def test_parent_of_document_element(self):
        result = evaluate_xpath("/r/..", DOC)
        assert result == [DOC]

    def test_parent_of_document_is_empty(self):
        assert evaluate_xpath("/..", DOC) == []

    def test_attribute_then_parent(self):
        result = evaluate_xpath("//@a/..", DOC)
        assert [n.tag for n in result] == ["r"]

    def test_descendant_axis_explicit(self):
        assert len(evaluate_xpath("/descendant::x", DOC)) == 2

    def test_wildcard_attribute(self):
        values = sorted(n.value for n in evaluate_xpath("/r/@*", DOC))
        assert values == ["1", "2"]

    def test_following_sibling_of_last_is_empty(self):
        assert evaluate_xpath("/r/x[2]/following-sibling::*", DOC) == []

    def test_absolute_path_from_detached_node_errors(self):
        detached = Element("loose")
        with pytest.raises(ExecutionError):
            evaluate_xpath("/r", detached)

    def test_relative_path_from_detached_node_works(self):
        detached = Element("loose")
        detached.append(Element("inner"))
        assert len(evaluate_xpath("inner", detached)) == 1


class TestConversions:
    def test_string_value_of_bool_and_nan(self):
        assert string_value(True) == "true"
        assert string_value(False) == "false"
        assert string_value(float("nan")) == "NaN"
        assert string_value(3.0) == "3"
        assert string_value([]) == ""

    def test_number_value_of_odd_inputs(self):
        assert number_value(True) == 1.0
        assert number_value("  42 ") == 42.0
        assert number_value("x") != number_value("x")  # NaN
        assert number_value([]) != number_value([])    # NaN

    def test_sequence_boolean_cases(self):
        assert sequence_boolean([]) is False
        assert sequence_boolean([False]) is False
        assert sequence_boolean([0.0]) is False
        assert sequence_boolean([""]) is False
        assert sequence_boolean([DOC.root]) is True
        assert sequence_boolean([False, False]) is True  # length > 1
        assert sequence_boolean(True) is True

    def test_document_order_key_attributes_after_owner(self):
        root = DOC.root
        attributes = list(root.attributes())
        keys = [document_order_key(node)
                for node in [root] + attributes]
        assert keys == sorted(keys)
        assert keys[1] < keys[2]  # attribute order preserved


class TestComparisonCorners:
    def test_nodeset_vs_nodeset_existential(self):
        doc = parse("<r><a>1</a><a>2</a><b>2</b><b>3</b></r>")
        assert evaluate_xpath("//a = //b", doc) is True
        assert evaluate_xpath("//a = //a[. = 9]", doc) is False

    def test_not_equal_is_also_existential(self):
        doc = parse("<r><a>1</a><a>2</a></r>")
        # Some a differs from '1' (namely 2): != is true.
        assert evaluate_xpath("//a != '1'", doc) is True

    def test_boolean_coercion_in_comparison(self):
        assert evaluate_xpath("true() = 1", DOC) is True
        assert evaluate_xpath("false() = 0", DOC) is True

    def test_string_inequality_numeric_coercion(self):
        doc = parse("<r><v>9</v><v>10</v></r>")
        # '<' compares numbers even for node string values.
        assert evaluate_xpath("//v[. < 9.5]", doc)[0].string_value() == "9"

"""Tests for the XPath lexer and parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.xpath import ast
from repro.xpath.lexer import tokenize
from repro.xpath.parser import parse_xpath


class TestLexer:
    def test_symbols_and_names(self):
        kinds = [(t.kind, t.value) for t in tokenize("/bib//book")]
        assert kinds == [("SYMBOL", "/"), ("NAME", "bib"),
                         ("SYMBOL", "//"), ("NAME", "book"), ("EOF", "")]

    def test_strings_with_escaped_quotes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_numbers(self):
        tokens = tokenize("3.14 42")
        assert [t.value for t in tokens[:2]] == ["3.14", "42"]

    def test_variables(self):
        token = tokenize("$bib-entry")[0]
        assert token.kind == "VARIABLE"
        assert token.value == "bib-entry"

    def test_qualified_names(self):
        assert tokenize("ns:tag")[0].value == "ns:tag"

    def test_axis_not_swallowed_by_qname(self):
        values = [t.value for t in tokenize("child::a")]
        assert values == ["child", "::", "a", ""]

    def test_comments_skipped(self):
        values = [t.value for t in tokenize("a (: skip (: nested :) :) b")]
        assert values == ["a", "b", ""]

    def test_errors(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("'unterminated")
        with pytest.raises(QuerySyntaxError):
            tokenize("$")
        with pytest.raises(QuerySyntaxError):
            tokenize("#")
        with pytest.raises(QuerySyntaxError):
            tokenize("(: open")


class TestPathParsing:
    def test_simple_absolute_path(self):
        path = parse_xpath("/bib/book/title")
        assert isinstance(path, ast.LocationPath)
        assert path.absolute
        assert [s.test.name for s in path.steps] == ["bib", "book", "title"]
        assert all(s.axis is ast.Axis.CHILD for s in path.steps)

    def test_relative_path(self):
        path = parse_xpath("book/title")
        assert not path.absolute
        assert len(path.steps) == 2

    def test_descendant_abbreviation(self):
        path = parse_xpath("//book")
        assert path.absolute
        assert path.steps[0].axis is ast.Axis.DESCENDANT_OR_SELF
        assert isinstance(path.steps[0].test, ast.KindTest)
        assert path.steps[1].test.name == "book"

    def test_internal_descendant(self):
        path = parse_xpath("/bib//title")
        assert [s.axis for s in path.steps] == [
            ast.Axis.CHILD, ast.Axis.DESCENDANT_OR_SELF, ast.Axis.CHILD]

    def test_attribute_abbreviation(self):
        path = parse_xpath("book/@year")
        assert path.steps[1].axis is ast.Axis.ATTRIBUTE
        assert path.steps[1].test.name == "year"

    def test_explicit_axes(self):
        path = parse_xpath("child::a/descendant::b/following-sibling::c")
        assert [s.axis for s in path.steps] == [
            ast.Axis.CHILD, ast.Axis.DESCENDANT, ast.Axis.FOLLOWING_SIBLING]

    def test_dot_and_dotdot(self):
        path = parse_xpath("./../book")
        assert path.steps[0].axis is ast.Axis.SELF
        assert path.steps[1].axis is ast.Axis.PARENT

    def test_wildcard_and_kind_tests(self):
        path = parse_xpath("*/text()")
        assert isinstance(path.steps[0].test, ast.WildcardTest)
        assert path.steps[1].test == ast.KindTest("text")

    def test_root_only(self):
        path = parse_xpath("/")
        assert path.absolute and path.steps == ()

    def test_unknown_axis_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_xpath("sideways::a")


class TestPredicates:
    def test_existence_predicate(self):
        path = parse_xpath("book[author]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, ast.LocationPath)

    def test_multiple_predicates(self):
        path = parse_xpath("/a[b][c]")
        assert len(path.steps[0].predicates) == 2

    def test_comparison_predicate(self):
        path = parse_xpath("book[@year = 1994]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, ast.BinaryOp)
        assert predicate.op == "="
        assert isinstance(predicate.left, ast.LocationPath)
        assert predicate.right == ast.Literal(1994.0)

    def test_positional_predicate(self):
        path = parse_xpath("book[2]")
        assert path.steps[0].predicates[0] == ast.Literal(2.0)

    def test_boolean_connectives(self):
        path = parse_xpath("book[author and title or note]")
        predicate = path.steps[0].predicates[0]
        assert predicate.op == "or"
        assert predicate.left.op == "and"

    def test_nested_path_predicate(self):
        path = parse_xpath("a[b/c[d] = 'x']")
        inner = path.steps[0].predicates[0].left
        assert isinstance(inner, ast.LocationPath)
        assert inner.steps[1].predicates

    def test_function_in_predicate(self):
        path = parse_xpath("book[count(author) > 2]")
        predicate = path.steps[0].predicates[0]
        assert predicate.left == ast.FunctionCall(
            "count", (ast.LocationPath((ast.Step(ast.Axis.CHILD,
                                                 ast.NameTest("author")),),
                                       absolute=False),))

    def test_context_comparison(self):
        path = parse_xpath("title[. = 'TCP/IP']")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate.left, ast.LocationPath)
        assert predicate.left.steps[0].axis is ast.Axis.SELF


class TestExpressions:
    def test_arithmetic_precedence(self):
        expr = parse_xpath("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_div_mod(self):
        expr = parse_xpath("7 div 2 mod 3")
        assert expr.op == "mod"

    def test_unary_minus(self):
        expr = parse_xpath("-5")
        assert isinstance(expr, ast.UnaryOp)

    def test_union(self):
        expr = parse_xpath("//a | //b")
        assert isinstance(expr, ast.Union_)

    def test_star_disambiguation(self):
        # Operand position: wildcard; operator position: multiply.
        expr = parse_xpath("count(*) * 2")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.FunctionCall)

    def test_parenthesized(self):
        expr = parse_xpath("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_string_round_trip_str(self):
        # __str__ renders something parseable for simple paths.
        path = parse_xpath("/bib/book[@year = '1994']")
        assert "book" in str(path) and "@" not in str(path)  # axis long form


class TestErrors:
    @pytest.mark.parametrize("text", [
        "",
        "/bib/",
        "//",
        "book[",
        "book]",
        "book[]",
        "a/b)",
        "count(",
        "@",
        "a[@]",
        "1 +",
    ])
    def test_rejected(self, text):
        with pytest.raises(QuerySyntaxError):
            parse_xpath(text)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_xpath("/a/b 'extra'")

"""Unit + property tests for the B+ tree (vs a sorted-dict model)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import BPlusTree
from repro.storage.pages import PageManager


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search("anything") == []
        assert list(tree.items()) == []

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        for key in [5, 3, 8, 1, 9, 7]:
            tree.insert(key, f"v{key}")
        assert tree.search(8) == ["v8"]
        assert tree.search(4) == []

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree(order=4)
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.search("k") == [1, 2]
        assert len(tree) == 2

    def test_splits_grow_height(self):
        tree = BPlusTree(order=4)
        for key in range(100):
            tree.insert(key, key)
        assert tree.height >= 3
        assert all(tree.search(key) == [key] for key in range(100))

    def test_range_query(self):
        tree = BPlusTree(order=4)
        for key in range(0, 50, 2):
            tree.insert(key, key * 10)
        result = list(tree.range(10, 20))
        assert result == [(10, 100), (12, 120), (14, 140), (16, 160),
                          (18, 180), (20, 200)]

    def test_range_bounds_exclusive(self):
        tree = BPlusTree(order=4)
        for key in range(10):
            tree.insert(key, key)
        inner = [k for k, _ in tree.range(2, 5, include_low=False,
                                          include_high=False)]
        assert inner == [3, 4]

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        import random
        rng = random.Random(7)
        keys = list(range(200))
        rng.shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == sorted(keys)


class TestBulkLoad:
    def test_bulk_load_sorted_pairs(self):
        pairs = [(f"k{index:04d}", index) for index in range(500)]
        tree = BPlusTree.bulk_load(pairs, order=8)
        assert len(tree) == 500
        assert tree.search("k0123") == [123]
        assert tree.search("missing") == []

    def test_bulk_load_with_duplicates(self):
        pairs = [("a", 1), ("a", 2), ("b", 3)]
        tree = BPlusTree.bulk_load(pairs)
        assert tree.search("a") == [1, 2]
        assert tree.search("b") == [3]

    def test_bulk_load_unsorted_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load([("b", 1), ("a", 2)])

    def test_bulk_load_empty(self):
        tree = BPlusTree.bulk_load([])
        assert len(tree) == 0

    def test_insert_after_bulk_load(self):
        pairs = [(index, index) for index in range(0, 100, 2)]
        tree = BPlusTree.bulk_load(pairs, order=8)
        for key in range(1, 100, 2):
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == list(range(100))


class TestIOCharging:
    def test_search_charges_height_pages(self):
        pages = PageManager()
        segment = pages.segment("btree")
        tree = BPlusTree.bulk_load([(i, i) for i in range(2000)],
                                   order=8, segment=segment)
        pages.reset()
        tree.search(777)
        counters = pages.counters.snapshot()
        touched = counters["page_reads"] + counters["pool_hits"]
        assert touched == tree.height

    def test_repeated_search_hits_pool(self):
        pages = PageManager()
        segment = pages.segment("btree")
        tree = BPlusTree.bulk_load([(i, i) for i in range(500)],
                                   order=8, segment=segment)
        pages.reset()
        tree.search(100)
        first_reads = pages.counters.page_reads
        tree.search(100)
        assert pages.counters.page_reads == first_reads  # all pool hits


# -- property tests ------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(-1000, 1000), st.integers()),
                max_size=300),
       st.integers(min_value=4, max_value=16))
@settings(max_examples=40, deadline=None)
def test_matches_dict_model(pairs, order):
    tree = BPlusTree(order=order)
    model: dict[int, list[int]] = {}
    for key, value in pairs:
        tree.insert(key, value)
        model.setdefault(key, []).append(value)
    for key, values in model.items():
        assert tree.search(key) == values
    assert [k for k, _ in tree.items()] == sorted(
        k for k, vs in model.items() for _ in vs)


@given(st.lists(st.integers(0, 500), min_size=1, max_size=300, unique=True),
       st.integers(0, 500), st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_range_matches_model(keys, low, high):
    low, high = min(low, high), max(low, high)
    tree = BPlusTree.bulk_load([(k, k) for k in sorted(keys)], order=8)
    expected = sorted(k for k in keys if low <= k <= high)
    assert [k for k, _ in tree.range(low, high)] == expected

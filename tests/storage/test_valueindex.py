"""ContentIndex: stable content-id keys, tombstone skipping, incremental
adds, and self-compaction."""

import pytest

from repro.storage.content import ContentStore
from repro.storage.valueindex import ContentIndex, numeric_key


@pytest.fixture
def store():
    content = ContentStore()
    content.append("alpha", 2)
    content.append("42", 4)
    content.append("alpha", 6)
    content.append("9", 8)
    return content


class TestStringIndex:
    def test_search_returns_owner_preorders(self, store):
        index = ContentIndex(store)
        assert sorted(index.search("alpha")) == [2, 6]
        assert index.search("42") == [4]
        assert index.search("missing") == []

    def test_owner_renumbering_is_transparent(self, store):
        index = ContentIndex(store)
        store.set_owner(0, 20)          # a splice moved the node
        assert sorted(index.search("alpha")) == [6, 20]

    def test_tombstone_skipped_without_rebuild(self, store):
        index = ContentIndex(store)
        store.mark_dead(0)
        assert index.search("alpha") == [6]
        assert store.dead_entries == 1
        assert store.live_entries == 3

    def test_add_content_indexes_appended_entry(self, store):
        index = ContentIndex(store)
        new_id = store.append("beta", 10)
        assert index.add_content(new_id)
        assert index.search("beta") == [10]

    def test_drop_content_counts_only_indexed(self, store):
        string_index = ContentIndex(store)
        numeric_index = ContentIndex(store, numeric=True)
        store.mark_dead(0)   # "alpha": string-indexed only
        store.mark_dead(1)   # "42": both
        assert string_index.drop_content([0, 1]) == 2
        assert numeric_index.drop_content([0, 1]) == 1
        assert len(string_index) == 2
        assert len(numeric_index) == 1


class TestNumericIndex:
    def test_numeric_key(self):
        assert numeric_key("42") == 42.0
        assert numeric_key("4.5") == 4.5
        assert numeric_key("x") is None

    def test_numeric_order_not_string_order(self, store):
        index = ContentIndex(store, numeric=True)
        hits = [owner for _, owner in index.range(5, 100)]
        assert sorted(hits) == [4, 8]    # "9" < "42" as strings!

    def test_range_skips_tombstones(self, store):
        index = ContentIndex(store, numeric=True)
        store.mark_dead(3)
        assert [owner for _, owner in index.range(0, 100)] == [4]


class TestCompaction:
    def test_compacts_when_dead_outnumber_live(self):
        content = ContentStore()
        for i in range(200):
            content.append(f"v{i}", i)
        index = ContentIndex(content)
        for i in range(150):
            content.mark_dead(i)
        index.note_dead(150)
        assert index.compactions == 1
        assert len(index) == 50
        assert index.dead_entries == 0
        assert index.search("v199") == [199]
        assert index.search("v0") == []

    def test_no_compaction_below_threshold(self):
        content = ContentStore()
        for i in range(10):
            content.append(f"v{i}", i)
        index = ContentIndex(content)
        content.mark_dead(0)
        index.note_dead(1)
        assert index.compactions == 0
        assert index.search("v0") == []   # probe-time skip still works

    def test_entries_reflect_live_state(self, store):
        index = ContentIndex(store)
        store.mark_dead(2)
        assert index.entries() == sorted(
            [("alpha", 2), ("42", 4), ("9", 8)])

"""Unit + property tests for the rank/select bitvector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.bitvector import BitVector, BitVectorBuilder


class TestBasics:
    def test_empty(self):
        vector = BitVector.from_bits([])
        assert len(vector) == 0
        assert vector.ones == 0
        assert vector.rank1(0) == 0

    def test_bits_accessible(self):
        vector = BitVector.from_bits([1, 0, 1, 1, 0])
        assert [vector[i] for i in range(5)] == [1, 0, 1, 1, 0]
        assert list(vector) == [1, 0, 1, 1, 0]

    def test_index_errors(self):
        vector = BitVector.from_bits([1, 0])
        with pytest.raises(IndexError):
            vector[2]
        with pytest.raises(IndexError):
            vector[-1]
        with pytest.raises(IndexError):
            vector.rank1(3)
        with pytest.raises(IndexError):
            vector.select1(1)
        with pytest.raises(IndexError):
            vector.select0(1)

    def test_builder_word_boundaries(self):
        builder = BitVectorBuilder()
        bits = ([1] * 64) + [0, 1, 0]
        builder.extend(bits)
        assert len(builder) == 67
        vector = builder.build()
        assert list(vector) == bits
        assert vector.ones == 65

    def test_rank_full_prefix(self):
        vector = BitVector.from_bits([1, 1, 0, 1])
        assert vector.rank1(4) == 3
        assert vector.rank0(4) == 1

    def test_select_known_positions(self):
        vector = BitVector.from_bits([0, 1, 0, 0, 1, 1])
        assert vector.select1(0) == 1
        assert vector.select1(1) == 4
        assert vector.select1(2) == 5
        assert vector.select0(0) == 0
        assert vector.select0(2) == 3

    def test_size_bytes_positive_and_scales(self):
        small = BitVector.from_bits([1] * 10)
        large = BitVector.from_bits([1] * 10_000)
        assert 0 < small.size_bytes() < large.size_bytes()


@given(st.lists(st.integers(min_value=0, max_value=1), max_size=600))
@settings(max_examples=80, deadline=None)
def test_rank_matches_naive(bits):
    vector = BitVector.from_bits(bits)
    ones = 0
    for index, bit in enumerate(bits):
        assert vector.rank1(index) == ones
        assert vector.rank0(index) == index - ones
        ones += bit
    assert vector.rank1(len(bits)) == ones


@given(st.lists(st.integers(min_value=0, max_value=1), max_size=600))
@settings(max_examples=80, deadline=None)
def test_select_inverts_rank(bits):
    vector = BitVector.from_bits(bits)
    one_positions = [i for i, bit in enumerate(bits) if bit]
    zero_positions = [i for i, bit in enumerate(bits) if not bit]
    for k, position in enumerate(one_positions):
        assert vector.select1(k) == position
    for k, position in enumerate(zero_positions):
        assert vector.select0(k) == position


@given(st.integers(min_value=1, max_value=3000), st.randoms())
@settings(max_examples=25, deadline=None)
def test_large_random_vectors(length, rng):
    bits = [rng.randint(0, 1) for _ in range(length)]
    vector = BitVector.from_bits(bits)
    # Spot-check a sample of positions against the naive prefix count.
    prefix = [0]
    for bit in bits:
        prefix.append(prefix[-1] + bit)
    for position in rng.sample(range(length + 1), min(50, length + 1)):
        assert vector.rank1(position) == prefix[position]

"""Unit tests for the separated content store."""

from repro.storage.content import ContentStore


class TestContentStore:
    def make(self):
        store = ContentStore()
        store.append("alpha", owner=3)
        store.append("beta", owner=5)
        store.append("alpha", owner=9)
        return store

    def test_append_and_get(self):
        store = self.make()
        assert len(store) == 3
        assert store.get(0) == "alpha"
        assert store.get(1) == "beta"
        assert store.owner(2) == 9

    def test_iteration(self):
        triples = list(self.make())
        assert triples == [(0, "alpha", 3), (1, "beta", 5),
                           (2, "alpha", 9)]

    def test_entry_length_via_offsets(self):
        store = self.make()
        assert store.entry_length(0) == 5
        assert store.entry_length(1) == 4

    def test_find_exact(self):
        store = self.make()
        assert store.find_exact("alpha") == [3, 9]
        assert store.find_exact("missing") == []

    def test_sorted_entries(self):
        assert self.make().sorted_entries() == [
            ("alpha", 3), ("alpha", 9), ("beta", 5)]

    def test_set_owner(self):
        store = self.make()
        store.set_owner(1, 42)
        assert store.owner(1) == 42
        assert store.sorted_entries()[-1] == ("beta", 42)

    def test_size_bytes_counts_payload_and_tables(self):
        store = self.make()
        payload = len("alphabetaalpha".encode("utf-8"))
        assert store.size_bytes() == payload + 4 * (4 + 3)

    def test_unicode_payload_counted_in_utf8(self):
        store = ContentStore()
        store.append("é", owner=0)
        assert store.size_bytes() >= 2

"""Tests for the succinct document: construction, navigation, scan,
content separation, updates, and size accounting."""

import pytest

from repro.errors import StorageError
from repro.xml.parser import parse
from repro.storage.succinct import (
    KIND_ATTRIBUTE,
    KIND_COMMENT,
    KIND_DOCUMENT,
    KIND_ELEMENT,
    KIND_PI,
    KIND_TEXT,
    SuccinctDocument,
)

SAMPLE = (
    '<bib><book year="1994"><title>TCP/IP</title>'
    "<author>Stevens</author></book>"
    '<book year="2000"><title>Data on the Web</title></book>'
    "<!--end--><?render fast?></bib>"
)


@pytest.fixture
def store():
    return SuccinctDocument.from_document(parse(SAMPLE))


class TestConstruction:
    def test_node_count(self, store):
        # document + bib + 2 book + 2 @year + 2 title + 1 author
        # + 3 texts + comment + pi = 14
        assert store.node_count == 14

    def test_document_node(self, store):
        assert store.tag(0) == "#document"
        assert store.kind(0) == KIND_DOCUMENT

    def test_tags_in_preorder(self, store):
        tags = [store.tag(i) for i in range(store.node_count)]
        assert tags == [
            "#document", "bib", "book", "@year", "title", "#text",
            "author", "#text", "book", "@year", "title", "#text",
            "#comment", "?render",
        ]

    def test_kinds(self, store):
        assert store.kind(2) == KIND_ELEMENT
        assert store.kind(3) == KIND_ATTRIBUTE
        assert store.kind(5) == KIND_TEXT
        assert store.kind(12) == KIND_COMMENT
        assert store.kind(13) == KIND_PI

    def test_bad_id_rejected(self, store):
        with pytest.raises(StorageError):
            store.tag(99)
        with pytest.raises(StorageError):
            store.tag(-1)

    def test_from_events_equals_from_document(self):
        from repro.xml.parser import iterparse
        direct = SuccinctDocument.from_events(iterparse(SAMPLE))
        via_tree = SuccinctDocument.from_document(parse(SAMPLE))
        assert ([direct.tag(i) for i in range(direct.node_count)]
                == [via_tree.tag(i) for i in range(via_tree.node_count)])


class TestNavigation:
    def test_parent(self, store):
        assert store.parent(0) is None
        assert store.parent(1) == 0
        assert store.parent(2) == 1
        assert store.parent(5) == 4

    def test_children_attributes_first(self, store):
        assert list(store.children(2)) == [3, 4, 6]

    def test_attributes(self, store):
        assert [store.tag(a) for a in store.attributes(2)] == ["@year"]
        assert list(store.attributes(4)) == []

    def test_first_child_next_sibling(self, store):
        assert store.first_child(1) == 2
        assert store.next_sibling(2) == 8
        assert store.next_sibling(13) is None
        assert store.first_child(5) is None

    def test_depth(self, store):
        assert store.depth(0) == 0
        assert store.depth(2) == 2
        assert store.depth(5) == 4

    def test_subtree_size(self, store):
        assert store.subtree_size(0) == 14
        assert store.subtree_size(2) == 6
        assert store.subtree_size(5) == 1

    def test_is_ancestor(self, store):
        assert store.is_ancestor(1, 5)
        assert store.is_ancestor(2, 3)
        assert not store.is_ancestor(2, 8)
        assert not store.is_ancestor(5, 5)


class TestContentSeparation:
    def test_text_of(self, store):
        assert store.text_of(5) == "TCP/IP"
        assert store.text_of(3) == "1994"
        assert store.text_of(12) == "end"
        assert store.text_of(13) == "fast"
        assert store.text_of(2) is None

    def test_string_value(self, store):
        assert store.string_value(2) == "TCP/IPStevens"
        assert store.string_value(3) == "1994"
        assert store.string_value(0) == "TCP/IPStevensData on the Web"

    def test_content_store_owners(self, store):
        owners = {owner for _, _, owner in store.content}
        assert owners == {3, 5, 7, 9, 11, 12, 13}

    def test_structure_and_content_sizes_reported_separately(self, store):
        sizes = store.size_bytes()
        assert sizes["structure"] > 0
        assert sizes["content"] > 0
        assert sizes["total"] == sum(v for k, v in sizes.items()
                                     if k != "total")


class TestScan:
    def test_full_scan_events(self, store):
        events = list(store.scan())
        starts = [node for kind, node in events if kind == "start"]
        ends = [node for kind, node in events if kind == "end"]
        assert starts == list(range(14))
        assert sorted(ends) == list(range(14))
        assert len(events) == 28

    def test_scan_is_properly_nested(self, store):
        stack = []
        for kind, node in store.scan():
            if kind == "start":
                stack.append(node)
            else:
                assert stack.pop() == node
        assert stack == []

    def test_subtree_scan(self, store):
        events = list(store.scan(root=2))
        starts = [node for kind, node in events if kind == "start"]
        assert starts == [2, 3, 4, 5, 6, 7]

    def test_element_ids(self, store):
        assert list(store.element_ids("book")) == [2, 8]
        assert list(store.element_ids("missing")) == []
        assert list(store.element_ids()) == [1, 2, 4, 6, 8, 10]

    def test_tag_postings(self, store):
        postings = store.tag_postings()
        assert postings["book"] == [2, 8]
        assert postings["title"] == [4, 10]
        assert postings["#text"] == [5, 7, 11]


class TestUpdates:
    def test_insert_subtree_in_middle(self, store):
        from repro.xml.model import Element
        new_book = Element("book")
        new_book.set_attribute("year", "2024")
        title = new_book.append(Element("title"))
        title.append_text("Succinct Trees")
        metrics = store.insert_subtree(parent=1, position=1,
                                       subtree=new_book)
        assert metrics["inserted_nodes"] == 4
        assert store.node_count == 18
        # The new book sits between the two old ones.
        books = list(store.element_ids("book"))
        assert len(books) == 3
        assert store.string_value(books[1]) == "Succinct Trees"
        # Old content still reachable after renumbering.
        assert store.string_value(books[0]) == "TCP/IPStevens"
        assert store.string_value(books[2]) == "Data on the Web"

    def test_insert_at_end(self, store):
        from repro.xml.model import Element
        note = Element("note")
        note.append_text("x")
        store.insert_subtree(parent=1, position=4, subtree=note)
        children = [store.tag(c) for c in store.children(1)]
        assert children[-1] == "note"

    def test_insert_shift_count_is_local(self, store):
        from repro.xml.model import Element
        metrics = store.insert_subtree(parent=8, position=1,
                                       subtree=Element("x"))
        # Only the nodes after the second book's title shift.
        assert metrics["shifted_entries"] == 2

    def test_insert_under_leaf_rejected(self, store):
        from repro.xml.model import Element
        with pytest.raises(StorageError):
            store.insert_subtree(parent=5, position=0,
                                 subtree=Element("x"))

    def test_insert_bad_position_rejected(self, store):
        from repro.xml.model import Element
        with pytest.raises(StorageError):
            store.insert_subtree(parent=1, position=7,
                                 subtree=Element("x"))


class TestInfo:
    def test_info_record(self, store):
        info = store.info(2)
        assert info.tag == "book"
        assert info.depth == 2
        assert info.subtree_size == 6

    def test_symbol_of(self, store):
        assert store.symbol_of("book") == store.tag_id(2)
        assert store.symbol_of("nope") is None


class TestDeleteSubtree:
    def test_delete_middle_subtree(self, store):
        metrics = store.delete_subtree(2)  # first book
        assert metrics["removed_nodes"] == 6
        assert store.node_count == 8
        tags = [store.tag(i) for i in range(store.node_count)]
        assert tags == ["#document", "bib", "book", "@year", "title",
                        "#text", "#comment", "?render"]
        # Surviving content still resolves after renumbering.
        assert store.string_value(2) == "Data on the Web"
        assert store.text_of(3) == "2000"

    def test_delete_leaf(self, store):
        before = store.node_count
        store.delete_subtree(5)  # the first title's text
        assert store.node_count == before - 1
        assert store.string_value(4) == ""

    def test_delete_then_scan_consistent(self, store):
        store.delete_subtree(8)  # second book
        stack = []
        for kind, node in store.scan():
            if kind == "start":
                stack.append(node)
            else:
                assert stack.pop() == node
        assert stack == []

    def test_cannot_delete_document(self, store):
        with pytest.raises(StorageError):
            store.delete_subtree(0)

    def test_delete_tail_is_local(self, store):
        metrics = store.delete_subtree(13)  # the trailing PI
        assert metrics["shifted_entries"] == 0

"""Tests for the interval-encoded (extended-relational) document."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.xml.model import Element
from repro.xml.parser import parse
from repro.storage.interval import IntervalDocument
from repro.storage.succinct import KIND_ELEMENT, SuccinctDocument

SAMPLE = (
    '<bib><book year="1994"><title>TCP/IP</title>'
    "<author>Stevens</author></book>"
    '<book year="2000"><title>Data on the Web</title></book></bib>'
)


@pytest.fixture
def doc():
    return IntervalDocument.from_document(parse(SAMPLE))


class TestLabels:
    def test_pre_ids_are_positions(self, doc):
        assert all(record.pre == index
                   for index, record in enumerate(doc.nodes))

    def test_labels_match_tree_model(self, doc):
        tree = parse(SAMPLE)
        tree.reindex()
        # Element records only (the tree model does not label attributes).
        tree_elements = {node.pre: node for node in
                         tree.nodes_in_document_order()
                         if node.kind.value == "element"}
        # Tree pre ids differ (no attribute nodes) but levels must align
        # per tag occurrence order.
        interval_tags = [r.tag for r in doc.nodes if r.kind == KIND_ELEMENT]
        tree_tags = [node.tag for node in tree.nodes_in_document_order()
                     if node.kind.value == "element"]
        assert interval_tags == tree_tags

    def test_end_is_last_descendant(self, doc):
        root = doc.node(0)
        assert root.end == len(doc.nodes) - 1
        first_book = doc.by_tag("book")[0]
        assert first_book.end == first_book.pre + 5

    def test_post_orders_children_before_parents(self, doc):
        for record in doc.nodes:
            if record.parent >= 0:
                assert record.post < doc.node(record.parent).post

    def test_levels(self, doc):
        assert doc.node(0).level == 0
        assert doc.by_tag("bib")[0].level == 1
        assert doc.by_tag("book")[0].level == 2
        assert doc.by_tag("title")[0].level == 3

    def test_same_numbering_as_succinct(self):
        interval = IntervalDocument.from_document(parse(SAMPLE))
        succinct = SuccinctDocument.from_document(parse(SAMPLE))
        assert len(interval.nodes) == succinct.node_count
        for record in interval.nodes:
            assert record.tag == succinct.tag(record.pre)
            assert record.level == succinct.depth(record.pre)
            assert (record.end - record.pre + 1
                    == succinct.subtree_size(record.pre))


class TestPredicates:
    def test_contains(self, doc):
        bib = doc.by_tag("bib")[0]
        title = doc.by_tag("title")[0]
        assert bib.contains(title)
        assert not title.contains(bib)
        assert not title.contains(title)

    def test_is_parent_of(self, doc):
        book = doc.by_tag("book")[0]
        title = doc.by_tag("title")[0]
        bib = doc.by_tag("bib")[0]
        assert book.is_parent_of(title)
        assert not bib.is_parent_of(title)

    def test_children_of(self, doc):
        book = doc.by_tag("book")[0]
        tags = [child.tag for child in doc.children_of(book.pre)]
        assert tags == ["@year", "title", "author"]

    def test_string_value(self, doc):
        book = doc.by_tag("book")[0]
        assert doc.string_value(book.pre) == "TCP/IPStevens"
        title = doc.by_tag("title")[0]
        assert doc.string_value(title.pre) == "TCP/IP"
        attr = doc.by_tag("@year")[0]
        assert doc.string_value(attr.pre) == "1994"

    def test_node_bad_id(self, doc):
        with pytest.raises(StorageError):
            doc.node(len(doc.nodes))


class TestUpdates:
    def test_insert_relabels_following_nodes(self, doc):
        bib = doc.by_tag("bib")[0]
        before = len(doc.nodes)
        new = Element("book")
        t = new.append(Element("title"))
        t.append_text("New")
        metrics = doc.insert_subtree(parent=bib.pre, position=1, subtree=new)
        assert len(doc.nodes) == before + metrics["inserted_nodes"]
        assert metrics["inserted_nodes"] == 3
        # The 4 nodes of the second book shift and both ancestors
        # (bib, #document) extend: 6 relabelled records.
        assert metrics["relabelled"] == 6

    def test_labels_consistent_after_insert(self, doc):
        bib = doc.by_tag("bib")[0]
        new = Element("note")
        new.append_text("hello")
        doc.insert_subtree(parent=bib.pre, position=0, subtree=new)
        self._check_invariants(doc)
        assert [c.tag for c in doc.children_of(bib.pre)][0] == "note"
        note = doc.by_tag("note")[0]
        assert doc.string_value(note.pre) == "hello"

    def test_insert_at_end_consistent(self, doc):
        bib = doc.by_tag("bib")[0]
        doc.insert_subtree(parent=bib.pre, position=2,
                           subtree=Element("tail"))
        self._check_invariants(doc)
        assert [c.tag for c in doc.children_of(bib.pre)][-1] == "tail"

    @staticmethod
    def _check_invariants(doc):
        posts = sorted(record.post for record in doc.nodes)
        assert posts == list(range(len(doc.nodes)))
        for index, record in enumerate(doc.nodes):
            assert record.pre == index
            assert record.pre <= record.end < len(doc.nodes)
            if record.parent >= 0:
                parent = doc.node(record.parent)
                assert parent.contains(record)
                assert parent.level + 1 == record.level

    def test_insert_under_leaf_rejected(self, doc):
        text = doc.by_tag("#text")[0]
        with pytest.raises(StorageError):
            doc.insert_subtree(parent=text.pre, position=0,
                               subtree=Element("x"))

    def test_insert_bad_position_rejected(self, doc):
        with pytest.raises(StorageError):
            doc.insert_subtree(parent=0, position=9, subtree=Element("x"))


class TestAccounting:
    def test_size_breakdown(self, doc):
        sizes = doc.size_bytes()
        assert sizes["total"] == (sizes["records"] + sizes["values"]
                                  + sizes["tag_dictionary"])
        assert sizes["records"] >= 20 * len(doc.nodes)

    def test_interval_larger_than_succinct_structure(self):
        text = "<r>" + "<a><b>x</b></a>" * 200 + "</r>"
        interval = IntervalDocument.from_document(parse(text))
        succinct = SuccinctDocument.from_document(parse(text))
        interval_structure = interval.size_bytes()["records"]
        succinct_sizes = succinct.size_bytes()
        succinct_structure = (succinct_sizes["structure"]
                              + succinct_sizes["tags"]
                              + succinct_sizes["kinds"])
        assert succinct_structure * 3 < interval_structure


# -- property: labels agree with the tree on random documents ----------------

_tags = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def random_xml(draw, depth=4):
    tag = draw(_tags)
    if depth == 0:
        return f"<{tag}/>"
    children = draw(st.lists(random_xml(depth=depth - 1), max_size=3))
    return f"<{tag}>{''.join(children)}</{tag}>"


@given(random_xml())
@settings(max_examples=40, deadline=None)
def test_interval_and_succinct_agree_on_random_docs(text):
    interval = IntervalDocument.from_document(parse(text))
    succinct = SuccinctDocument.from_document(parse(text))
    assert len(interval.nodes) == succinct.node_count
    for record in interval.nodes:
        assert record.tag == succinct.tag(record.pre)
        assert record.level == succinct.depth(record.pre)
        assert (record.end - record.pre + 1
                == succinct.subtree_size(record.pre))
        parent = succinct.parent(record.pre)
        assert record.parent == (-1 if parent is None else parent)


class TestDeleteSubtree:
    def test_delete_relabels_consistently(self, doc):
        first_book = doc.by_tag("book")[0]
        metrics = doc.delete_subtree(first_book.pre)
        assert metrics["removed_nodes"] == 6
        TestUpdates._check_invariants(doc)
        assert len(doc.by_tag("book")) == 1
        assert doc.string_value(doc.by_tag("book")[0].pre) == \
            "Data on the Web"

    def test_delete_then_insert_round_trip(self, doc):
        from repro.xml.model import Element
        book = doc.by_tag("book")[1]
        doc.delete_subtree(book.pre)
        bib = doc.by_tag("bib")[0]
        doc.insert_subtree(bib.pre, 1, Element("book"))
        TestUpdates._check_invariants(doc)
        assert len(doc.by_tag("book")) == 2

    def test_cannot_delete_document(self, doc):
        with pytest.raises(StorageError):
            doc.delete_subtree(0)

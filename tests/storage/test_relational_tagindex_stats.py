"""Tests for the node table, tag index, and document statistics."""

import pytest

from repro.xml.parser import parse
from repro.storage.interval import IntervalDocument
from repro.storage.pages import PageManager
from repro.storage.relational import NodeTable
from repro.storage.stats import DocumentStatistics
from repro.storage.tagindex import TagIndex

SAMPLE = (
    "<bib>"
    '<book year="1994"><title>TCP/IP</title><author>Stevens</author></book>'
    '<book year="2000"><title>Data on the Web</title>'
    "<author>Abiteboul</author><author>Buneman</author></book>"
    "</bib>"
)


@pytest.fixture
def doc():
    return IntervalDocument.from_document(parse(SAMPLE))


class TestTagIndex:
    def test_postings_in_document_order(self, doc):
        index = TagIndex(doc)
        authors = index.postings("author")
        assert [a.tag for a in authors] == ["author"] * 3
        assert [a.pre for a in authors] == sorted(a.pre for a in authors)

    def test_cardinality(self, doc):
        index = TagIndex(doc)
        assert index.cardinality("book") == 2
        assert index.cardinality("author") == 3
        assert index.cardinality("ghost") == 0

    def test_missing_tag_empty(self, doc):
        assert TagIndex(doc).postings("ghost") == []

    def test_io_charged_per_posting_scan(self, doc):
        pages = PageManager(page_size=64)
        index = TagIndex(doc, pages=pages)
        pages.reset()
        index.postings("author")
        assert pages.counters.page_reads >= 1
        reads = pages.counters.page_reads
        index.postings("author", charge=False)
        assert pages.counters.page_reads == reads

    def test_size_bytes(self, doc):
        index = TagIndex(doc)
        assert index.size_bytes() >= 12 * len(doc.nodes)


class TestNodeTable:
    def test_scan_all_rows(self, doc):
        table = NodeTable(doc)
        assert len(list(table.scan())) == len(doc.nodes)

    def test_scan_with_predicate(self, doc):
        table = NodeTable(doc)
        books = list(table.scan(lambda row: row.tag == "book"))
        assert len(books) == 2

    def test_index_lookup_tag(self, doc):
        table = NodeTable(doc)
        assert [r.tag for r in table.index_lookup_tag("title")] == \
            ["title", "title"]

    def test_index_lookup_value(self, doc):
        table = NodeTable(doc)
        rows = table.index_lookup_value("Stevens")
        assert len(rows) == 1
        assert rows[0].tag == "#text"

    def test_index_lookup_value_without_index(self, doc):
        table = NodeTable(doc, build_value_index=False)
        rows = table.index_lookup_value("Stevens")
        assert len(rows) == 1

    def test_value_index_attribute_values(self, doc):
        table = NodeTable(doc)
        rows = table.index_lookup_value("1994")
        assert [r.tag for r in rows] == ["@year"]

    def test_containment_join_matches_naive(self, doc):
        table = NodeTable(doc)
        books = table.index_lookup_tag("book")
        authors = table.index_lookup_tag("author")
        joined = table.containment_join(books, authors)
        naive = [(a, d) for a in books for d in authors if a.contains(d)]
        assert sorted((a.pre, d.pre) for a, d in joined) == \
            sorted((a.pre, d.pre) for a, d in naive)

    def test_containment_join_parent_child(self, doc):
        table = NodeTable(doc)
        bib = table.index_lookup_tag("bib")
        titles = table.index_lookup_tag("title")
        assert table.containment_join(bib, titles, parent_child=True) == []
        books = table.index_lookup_tag("book")
        assert len(table.containment_join(books, titles,
                                          parent_child=True)) == 2

    def test_scan_charges_sequential_io(self, doc):
        pages = PageManager(page_size=64)
        table = NodeTable(doc, pages=pages)
        pages.reset()
        list(table.scan())
        assert pages.counters.page_reads >= 1

    def test_row_point_access(self, doc):
        table = NodeTable(doc)
        assert table.row(0).tag == "#document"


class TestStatistics:
    def test_tag_counts(self, doc):
        stats = DocumentStatistics(doc)
        assert stats.count("book") == 2
        assert stats.count("author") == 3
        assert stats.count("nothing") == 0

    def test_edge_counts(self, doc):
        stats = DocumentStatistics(doc)
        assert stats.child_count("bib", "book") == 2
        assert stats.child_count("book", "author") == 3
        assert stats.child_count("bib", "author") == 0

    def test_descendant_counts(self, doc):
        stats = DocumentStatistics(doc)
        assert stats.descendant_count("bib", "author") == 3
        assert stats.descendant_count("book", "#text") == 5

    def test_selectivities(self, doc):
        stats = DocumentStatistics(doc)
        assert stats.child_selectivity("bib", "book") == 1.0
        assert stats.child_selectivity("book", "title") == 1.0
        assert stats.child_selectivity("ghost", "x") == 0.0
        assert 0 < stats.value_selectivity("@year") <= 1.0
        assert stats.value_selectivity("ghost") == 0.0

    def test_depths(self, doc):
        stats = DocumentStatistics(doc)
        assert stats.max_depth == 4  # document/bib/book/title/#text
        assert stats.depth_histogram[0] == 1

    def test_summary(self, doc):
        summary = DocumentStatistics(doc).summary()
        assert summary["nodes"] == len(doc.nodes)
        assert summary["distinct_tags"] > 3
        assert summary["average_fanout"] > 0

"""Tests for the page manager, buffer pool, and I/O counters."""

import pytest

from repro.storage.pages import BufferPool, IOCounters, PageManager


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool(capacity=4)
        assert pool.access(0, 0) is False
        assert pool.access(0, 0) is True
        assert pool.counters.page_reads == 1
        assert pool.counters.pool_hits == 1

    def test_lru_eviction(self):
        pool = BufferPool(capacity=2)
        pool.access(0, 0)
        pool.access(0, 1)
        pool.access(0, 2)          # evicts page 0
        assert pool.access(0, 1) is True
        assert pool.access(0, 0) is False  # was evicted

    def test_access_refreshes_lru_position(self):
        pool = BufferPool(capacity=2)
        pool.access(0, 0)
        pool.access(0, 1)
        pool.access(0, 0)          # page 0 now most recent
        pool.access(0, 2)          # evicts page 1
        assert pool.access(0, 0) is True
        assert pool.access(0, 1) is False

    def test_dirty_eviction_counts_write(self):
        pool = BufferPool(capacity=1)
        pool.access(0, 0, write=True)
        pool.access(0, 1)
        assert pool.counters.page_writes == 1

    def test_flush_writes_dirty_pages(self):
        pool = BufferPool(capacity=8)
        pool.access(0, 0, write=True)
        pool.access(0, 1)
        pool.flush()
        assert pool.counters.page_writes == 1
        assert len(pool) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(capacity=0)

    def test_segments_do_not_collide(self):
        pool = BufferPool(capacity=8)
        pool.access(0, 5)
        assert pool.access(1, 5) is False  # different segment, same page id


class TestPageManager:
    def test_segment_reuse_by_name(self):
        pages = PageManager()
        first = pages.segment("tags", 100)
        second = pages.segment("tags", 50)
        assert first is second
        assert second.length == 100  # keeps the larger extent

    def test_touch_counts_page_span(self):
        pages = PageManager(page_size=100)
        segment = pages.segment("s", 1000)
        segment.touch(250, 300)  # bytes 250..549 -> pages 2..5
        assert pages.counters.page_reads == 4

    def test_touch_zero_length_is_free(self):
        pages = PageManager()
        segment = pages.segment("s", 100)
        pages.touch(segment, 0, 0)
        assert pages.counters.logical_touches == 0

    def test_sequential_scan_touches_every_page_once(self):
        pages = PageManager(page_size=100, pool_pages=64)
        segment = pages.segment("s", 950)
        pages.sequential_scan(segment)
        assert pages.counters.page_reads == 10
        pages.sequential_scan(segment)
        assert pages.counters.page_reads == 10  # second scan: pool hits

    def test_reset(self):
        pages = PageManager()
        segment = pages.segment("s", 100)
        segment.touch(0, 10)
        pages.reset()
        assert pages.counters.page_reads == 0
        segment.touch(0, 10)
        assert pages.counters.page_reads == 1  # pool was dropped too

    def test_page_size_validation(self):
        with pytest.raises(ValueError):
            PageManager(page_size=10)

    def test_counters_snapshot(self):
        counters = IOCounters(page_reads=3, pool_hits=2)
        snap = counters.snapshot()
        assert snap["page_reads"] == 3
        assert snap["pool_hits"] == 2
        counters.reset()
        assert counters.page_reads == 0

    def test_segment_pages_property(self):
        pages = PageManager(page_size=100)
        assert pages.segment("a", 250).pages == 3
        assert pages.segment("b", 0).pages == 1

    def test_prune_dead_threads_folds_into_retired(self):
        import threading

        pages = PageManager(page_size=100)
        segment = pages.segment("s", 1000)

        def worker():
            pages.touch(segment, 0, 500)

        for _ in range(8):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        pages.touch(segment, 0, 500)
        total_before = pages.counters.snapshot()

        assert len(pages._thread_counters) >= 2  # dead idents linger...
        pruned = pages.prune_dead_threads()
        assert pruned >= 1
        # ...and afterwards only live threads keep private entries,
        alive = {t.ident for t in threading.enumerate()}
        assert set(pages._thread_counters) <= alive
        # while the cumulative invariant still holds exactly.
        assert pages.threads_total() == total_before
        assert pages.threads_total() == pages.counters.snapshot()

    def test_threads_total_prunes_and_reset_clears_retired(self):
        import threading

        pages = PageManager(page_size=100)
        segment = pages.segment("s", 1000)
        thread = threading.Thread(
            target=lambda: pages.touch(segment, 0, 300))
        thread.start()
        thread.join()

        # threads_total() itself prunes the dead ident.
        totals = pages.threads_total()
        assert totals == pages.counters.snapshot()
        assert totals["page_reads"] > 0
        alive = {t.ident for t in threading.enumerate()}
        assert set(pages._thread_counters) <= alive

        pages.reset()
        zeroed = pages.threads_total()
        assert all(zeroed[f] == 0 for f in ("logical_touches",
                                            "pool_hits"))
        assert pages.threads_total() == pages.counters.snapshot()

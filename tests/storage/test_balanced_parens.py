"""Unit + property tests for balanced-parentheses navigation.

The property tests generate random trees, encode them as BP, and check
every navigation primitive against the pointer-based tree.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.balanced_parens import BalancedParens
from repro.storage.bitvector import BitVector


def bp_from_string(text: str) -> BalancedParens:
    return BalancedParens(BitVector.from_bits(
        [1 if ch == "(" else 0 for ch in text]))


class TestValidation:
    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            bp_from_string("(()")

    def test_unbalanced_counts_rejected(self):
        with pytest.raises(ValueError):
            bp_from_string("(((())")

    def test_wrong_position_kind_rejected(self):
        bp = bp_from_string("(())")
        with pytest.raises(ValueError):
            bp.find_close(3)
        with pytest.raises(ValueError):
            bp.find_open(0)
        with pytest.raises(ValueError):
            bp.enclose(3)


class TestSmallTree:
    # ((()())())  =  root with children a (two leaf kids) and b (leaf)
    BP = "((()())())"

    def test_find_close(self):
        bp = bp_from_string(self.BP)
        assert bp.find_close(0) == 9
        assert bp.find_close(1) == 6
        assert bp.find_close(2) == 3
        assert bp.find_close(7) == 8

    def test_find_open_inverts(self):
        bp = bp_from_string(self.BP)
        for open_pos in (0, 1, 2, 4, 7):
            assert bp.find_open(bp.find_close(open_pos)) == open_pos

    def test_enclose(self):
        bp = bp_from_string(self.BP)
        assert bp.enclose(0) is None
        assert bp.enclose(1) == 0
        assert bp.enclose(2) == 1
        assert bp.enclose(4) == 1
        assert bp.enclose(7) == 0

    def test_children(self):
        bp = bp_from_string(self.BP)
        assert list(bp.children(0)) == [1, 7]
        assert list(bp.children(1)) == [2, 4]
        assert list(bp.children(2)) == []

    def test_first_child_and_sibling(self):
        bp = bp_from_string(self.BP)
        assert bp.first_child(0) == 1
        assert bp.next_sibling(1) == 7
        assert bp.next_sibling(7) is None
        assert bp.first_child(2) is None

    def test_depth_and_size(self):
        bp = bp_from_string(self.BP)
        assert bp.depth(0) == 0
        assert bp.depth(2) == 2
        assert bp.subtree_size(0) == 5
        assert bp.subtree_size(1) == 3
        assert bp.is_leaf(2)
        assert not bp.is_leaf(1)

    def test_preorder_position_round_trip(self):
        bp = bp_from_string(self.BP)
        for rank in range(bp.node_count):
            assert bp.preorder(bp.position(rank)) == rank

    def test_postorder(self):
        bp = bp_from_string(self.BP)
        # Nodes in postorder: leaf@2, leaf@4, a@1, b@7, root@0.
        assert bp.postorder(2) == 0
        assert bp.postorder(4) == 1
        assert bp.postorder(1) == 2
        assert bp.postorder(7) == 3
        assert bp.postorder(0) == 4

    def test_is_ancestor(self):
        bp = bp_from_string(self.BP)
        assert bp.is_ancestor(0, 4)
        assert bp.is_ancestor(1, 2)
        assert not bp.is_ancestor(1, 7)
        assert not bp.is_ancestor(2, 2)


# -- random tree property tests --------------------------------------------


class _RefNode:
    def __init__(self):
        self.children = []
        self.parent = None
        self.open_pos = None


@st.composite
def random_trees(draw):
    """A random tree as a pointer structure with 1..120 nodes."""
    count = draw(st.integers(min_value=1, max_value=120))
    root = _RefNode()
    nodes = [root]
    for _ in range(count - 1):
        parent = nodes[draw(st.integers(0, len(nodes) - 1))]
        child = _RefNode()
        child.parent = parent
        parent.children.append(child)
        nodes.append(child)
    return root


def encode(root: _RefNode) -> list[int]:
    bits: list[int] = []

    def walk(node):
        node.open_pos = len(bits)
        bits.append(1)
        for child in node.children:
            walk(child)
        bits.append(0)

    walk(root)
    return bits


def all_nodes(root: _RefNode):
    yield root
    for child in root.children:
        yield from all_nodes(child)


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_navigation_matches_pointer_tree(root):
    bp = BalancedParens(BitVector.from_bits(encode(root)))
    for node in all_nodes(root):
        pos = node.open_pos
        if node.parent is None:
            assert bp.enclose(pos) is None
        else:
            assert bp.enclose(pos) == node.parent.open_pos
        expected_children = [c.open_pos for c in node.children]
        assert list(bp.children(pos)) == expected_children
        if node.children:
            assert bp.first_child(pos) == node.children[0].open_pos
        else:
            assert bp.first_child(pos) is None
        assert bp.subtree_size(pos) == sum(1 for _ in all_nodes(node))


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_excess_depth_matches_pointer_tree(root):
    bp = BalancedParens(BitVector.from_bits(encode(root)))
    for node in all_nodes(root):
        depth = 0
        walker = node
        while walker.parent is not None:
            depth += 1
            walker = walker.parent
        assert bp.depth(node.open_pos) == depth


def test_deep_tree_crossing_many_words():
    # A path of 1000 nodes: exercises word and directory skipping.
    depth = 1000
    bits = [1] * depth + [0] * depth
    bp = BalancedParens(BitVector.from_bits(bits))
    assert bp.find_close(0) == 2 * depth - 1
    assert bp.find_close(depth - 1) == depth
    assert bp.find_open(2 * depth - 1) == 0
    assert bp.enclose(depth - 1) == depth - 2
    assert bp.subtree_size(0) == depth


def test_wide_tree_crossing_many_words():
    fanout = 1000
    bits = [1] + [1, 0] * fanout + [0]
    bp = BalancedParens(BitVector.from_bits(bits))
    children = list(bp.children(0))
    assert len(children) == fanout
    assert all(bp.enclose(c) == 0 for c in children[::97])


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_postorder_and_find_open_invert(root):
    bp = BalancedParens(BitVector.from_bits(encode(root)))
    nodes = list(all_nodes(root))
    # Post-order ranks form a permutation consistent with subtree closure.
    posts = {node.open_pos: bp.postorder(node.open_pos) for node in nodes}
    assert sorted(posts.values()) == list(range(len(nodes)))
    for node in nodes:
        close = bp.find_close(node.open_pos)
        assert bp.find_open(close) == node.open_pos
        for child in node.children:
            assert posts[child.open_pos] < posts[node.open_pos]


def test_size_bytes_scales_with_length():
    small = bp_from_string("()" * 8)
    large = bp_from_string("()" * 8000)
    assert small.size_bytes() < large.size_bytes()
    # ~2 bits + directory per node: far below a pointer representation.
    assert large.size_bytes() < 8000 * 8

"""Property-based replication-log test (hypothesis).

The property: for ANY schedule of load/insert/delete operations, ANY
attach point (the replica may bootstrap before the first op, after the
last, or anywhere between — from whatever checkpoint generation the
primary happens to have), ANY checkpoint cadence, and ANY interleaving
of ship-path faults (duplicated and truncated batches), a replica that
is then drained converges to the primary *exactly*: same version
vector, same serialized tree, same item-for-item answer for every
probe tag.  Faulty batches are detected or idempotently skipped — they
can delay convergence, never corrupt it.

A separate deterministic test tears the primary's WAL tail with
garbage bytes and asserts the ship path simply stops at the last valid
frame boundary (no crash, no divergence).
"""

from __future__ import annotations

import os
import random
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database
from repro.replication import ReplicationPublisher

from tests.replication.harness import (
    URI,
    ReplicaHandle,
    assert_parity,
    make_document,
    probe_tags_for,
    random_op,
)

MAX_EXAMPLES = int(os.environ.get("REPLICATION_EXAMPLES", "50"))


@settings(max_examples=MAX_EXAMPLES, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(doc_seed=st.integers(0, 2 ** 16),
       op_seeds=st.lists(st.integers(0, 2 ** 16),
                         min_size=1, max_size=10),
       attach_at=st.integers(0, 10),
       checkpoint_every=st.sampled_from([0, 1, 2, 5]),
       fault_seed=st.integers(0, 2 ** 16),
       dup_p=st.sampled_from([0.0, 0.3]),
       trunc_p=st.sampled_from([0.0, 0.3]))
def test_replay_from_arbitrary_bootstrap_point(
        doc_seed, op_seeds, attach_at, checkpoint_every, fault_seed,
        dup_p, trunc_p):
    attach_at = attach_at % (len(op_seeds) + 1)
    rng = random.Random(doc_seed)
    counter = [0]
    document_xml = make_document(rng, counter)
    fault_rng = random.Random(fault_seed)

    with tempfile.TemporaryDirectory() as tmp:
        primary = Database.open(
            Path(tmp) / "primary", checkpoint_every=checkpoint_every,
            fsync=False, keep_generations=2)
        try:
            primary.load(document_xml, uri=URI)
            publisher = ReplicationPublisher(primary)

            for op_seed in op_seeds[:attach_at]:
                random_op(random.Random(op_seed), primary, counter)

            handle = ReplicaHandle(
                "prop", publisher, fault_rng,
                drop_p=0.0, dup_p=dup_p, trunc_p=trunc_p)

            for op_seed in op_seeds[attach_at:]:
                random_op(random.Random(op_seed), primary, counter)
                handle.poll(fault_rng.randint(0, 2))

            handle.calm()
            handle.drain()
            replica = handle.replica
            assert replica.applied_lsn == publisher.primary_lsn()
            assert_parity(primary, replica.database,
                          probe_tags_for(counter, doc_seed),
                          f"(attach={attach_at}, "
                          f"ckpt={checkpoint_every}, dup={dup_p}, "
                          f"trunc={trunc_p})")
            if handle.source.duplicated or handle.source.truncated:
                # Faults were actually injected and the replica still
                # converged: duplicated records were skipped (or the
                # whole stale batch was refused), truncated batches
                # were re-fetched from the per-record cursor.
                assert replica.applied_lsn == publisher.primary_lsn()
        finally:
            primary.close()


def test_torn_wal_tail_stops_at_last_valid_frame(tmp_path):
    """Garbage at the primary WAL's tail (a torn append) must not
    crash the ship path or advance the replica past valid frames."""
    primary = Database.open(tmp_path / "primary", checkpoint_every=0,
                            fsync=False)
    try:
        rng = random.Random(7)
        counter = [0]
        primary.load(make_document(rng, counter), uri=URI)
        publisher = ReplicationPublisher(primary)
        for _ in range(4):
            random_op(rng, primary, counter)

        handle = ReplicaHandle("torn", publisher, rng,
                               drop_p=0.0, dup_p=0.0, trunc_p=0.0)
        handle.drain()
        converged = handle.replica.applied_lsn
        assert converged == publisher.primary_lsn()

        # Tear the tail: a partial frame header plus junk, exactly
        # what a crash mid-append leaves behind.
        wal_path = primary.durability.wal.path
        with open(wal_path, "ab") as fh:
            fh.write(b"\x00\x00\x00\x2a\xde\xad\xbe\xef garbage")

        for _ in range(3):
            handle.poll()
        assert handle.replica.applied_lsn == converged, \
            "replica advanced into a torn WAL tail"
        assert_parity(primary, handle.replica.database,
                      probe_tags_for(counter, 7), "(torn tail)")
    finally:
        primary.close()

"""Chaos/differential test: primary + 2 replicas under randomized
kills, restarts, torn/duplicated ship batches and dropped connections.

For each seeded schedule we run a durable primary (small
``checkpoint_every`` so WAL rotations and snapshot-based bootstraps
happen constantly) and two replicas fed through :class:`ChaosSource`.
Between every primary write the driver randomly kills/restarts
replicas, polls them a random number of times, and issues
stale-bounded / read-your-writes probe reads.  The invariants:

* a *successful* bounded read's reported ``staleness_seconds`` is
  within its bound, and a ``min_lsn`` read is only served at or past
  the token (zero bound ALWAYS rejects — primary-only by definition);
* ``applied_lsn`` is monotone within one replica lifetime (absent a
  re-bootstrap, which legitimately resets the cursor);
* after quiescing (faults off, everyone restarted if dead) both
  replicas converge to ``applied_lsn == primary_lsn`` exactly and
  match the primary item-for-item: equal version vectors, equal
  serialized trees, equal probe-query answers.

Schedule count satisfies the acceptance bar (>= 200 by default) and is
tunable via ``REPLICATION_SCHEDULES``.
"""

from __future__ import annotations

import os
import random

import pytest

from repro import Database
from repro.errors import ReplicaStaleError
from repro.replication import ReplicationPublisher, lsn_from_wire

from tests.replication.harness import (
    URI,
    ReplicaHandle,
    assert_parity,
    make_document,
    probe_tags_for,
    random_op,
)

SCHEDULES = int(os.environ.get("REPLICATION_SCHEDULES", "200"))
OPS_PER_SCHEDULE = 8


def _probe_read(handle: ReplicaHandle, primary_lsn, rng, probe_tags,
                seed: int) -> None:
    """One bounded/tokened read against a live replica; asserts the
    staleness contract on whichever way it resolves."""
    if not handle.alive:
        return
    tag = rng.choice(probe_tags)
    kind = rng.random()
    request = {"verb": "query", "text": f"//{tag}"}
    if kind < 0.25:
        request["max_staleness_seconds"] = 0.0
    elif kind < 0.75:
        request["max_staleness_seconds"] = rng.choice([0.5, 5.0, 60.0])
    else:
        request["min_lsn"] = [primary_lsn[0], primary_lsn[1]]
    replica = handle.replica
    try:
        response = replica.database.execute_request(request)
    except ReplicaStaleError as exc:
        assert exc.code == "REPLICA_STALE"
        if request.get("max_staleness_seconds") == 0.0:
            return  # zero bound must always land here
        # Otherwise rejection is legitimate only when actually behind
        # or of unknown freshness.
        if "min_lsn" in request:
            assert replica.applied_lsn < tuple(request["min_lsn"]), \
                f"seed {seed}: spurious min_lsn rejection"
        return
    assert request.get("max_staleness_seconds") != 0.0, \
        f"seed {seed}: zero-staleness read served by a replica"
    assert response["served_by"] == handle.replica_id
    assert response["role"] == "replica"
    bound = request.get("max_staleness_seconds")
    if bound is not None:
        reported = response["staleness_seconds"]
        assert reported is not None and reported <= bound, \
            f"seed {seed}: served {reported}s stale against " \
            f"bound {bound}s"
    if "min_lsn" in request:
        served_at = lsn_from_wire(response["applied_lsn"])
        assert served_at >= tuple(request["min_lsn"]), \
            f"seed {seed}: read-your-writes token violated"


def _check_monotonic(handle: ReplicaHandle, last: dict, seed: int):
    """applied_lsn never regresses within one lifetime absent a
    bootstrap (kills and re-bootstraps legitimately reset it)."""
    if not handle.alive:
        last.pop(handle.replica_id, None)
        return
    replica = handle.replica
    key = handle.replica_id
    marker = (handle.kills, replica.bootstraps)
    prev = last.get(key)
    if prev is not None and prev[0] == marker:
        assert replica.applied_lsn >= prev[1], \
            f"seed {seed}: {key} applied_lsn regressed " \
            f"{prev[1]} -> {replica.applied_lsn} without a bootstrap"
    last[key] = (marker, replica.applied_lsn)


@pytest.mark.parametrize("seed", range(SCHEDULES))
def test_chaos_schedule(seed, tmp_path):
    rng = random.Random(10_000 + seed)
    counter = [0]
    document_xml = make_document(rng, counter)

    primary = Database.open(
        tmp_path / "primary",
        checkpoint_every=rng.choice([0, 2, 3, 5]),
        fsync=False, keep_generations=2)
    try:
        primary.load(document_xml, uri=URI)
        publisher = ReplicationPublisher(primary)
        handles = [ReplicaHandle("r1", publisher, rng),
                   ReplicaHandle("r2", publisher, rng)]
        last_seen = {}

        for _ in range(OPS_PER_SCHEDULE):
            random_op(rng, primary, counter)
            primary_lsn = publisher.primary_lsn()
            for handle in handles:
                roll = rng.random()
                if handle.alive and roll < 0.08:
                    handle.kill()
                elif not handle.alive and roll < 0.5:
                    handle.restart()
                handle.poll(rng.randint(0, 3))
                if rng.random() < 0.4:
                    _probe_read(handle, primary_lsn, rng,
                                probe_tags_for(counter, seed), seed)
                _check_monotonic(handle, last_seen, seed)

        # Quiesce: faults off, everyone up, drained to the primary's
        # exact position — then item-for-item parity.
        probe_tags = probe_tags_for(counter, seed)
        final_lsn = publisher.primary_lsn()
        for handle in handles:
            handle.calm()
            handle.drain()
            replica = handle.replica
            assert replica.applied_lsn == final_lsn, \
                f"seed {seed}: {handle.replica_id} converged to " \
                f"{replica.applied_lsn}, primary at {final_lsn}"
            assert_parity(primary, replica.database, probe_tags,
                          f"(seed {seed}, {handle.replica_id})")
            # A caught-up replica must serve a generous bound and the
            # current read-your-writes token.
            response = replica.database.execute_request({
                "verb": "query", "text": "//r",
                "max_staleness_seconds": 60.0,
                "min_lsn": list(final_lsn)})
            assert response["ok"]
            assert response["served_by"] == handle.replica_id
    finally:
        primary.close()

"""WAL segment retention vs. tailing readers.

The bug this guards against: checkpoint pruning used to consider only
``keep_generations``, so a slow replica whose cursor still sat in an
old WAL generation would find that file *deleted mid-tail* — forcing a
full snapshot re-bootstrap at best, and silently losing the records
between its cursor and the snapshot at worst.

The fix is the retention pin (``retain-<replica_id>.pin``): the
publisher pins a replica's cursor generation at registration and
refreshes it on every poll, and :func:`prune_generations` never
removes a generation at or above the smallest live pin.  Pins carry a
TTL on their mtime so a crashed-and-gone replica cannot hold
retention hostage forever.

``test_unpinned_tail_is_pruned_away`` is the *failing-before* shape:
it simulates the pre-fix pruner by deleting the pin, and shows the
replica's generation really is reclaimed (gap => forced re-bootstrap).
``test_pinned_tail_survives_pruning`` is the same scenario with the
pin left in place: the generation survives, the replica drains every
record with zero gaps and zero extra bootstraps.
"""

from __future__ import annotations

import os
import random
import time

from repro import Database
from repro.durability.checkpoint import (
    clear_retention_pin,
    list_generations,
    read_retention_pins,
    retention_pin_path,
    wal_path,
    write_retention_pin,
)
from repro.replication import ReplicationPublisher

from tests.replication.harness import (
    URI,
    ReplicaHandle,
    assert_parity,
    make_document,
    probe_tags_for,
    random_op,
)


def _advance_generations(primary, rng, counter, checkpoints=3):
    """Write + checkpoint repeatedly so pruning has work to do."""
    for _ in range(checkpoints):
        for _ in range(2):
            random_op(rng, primary, counter)
        primary.checkpoint()


def _stalled_replica(tmp_path, rng, counter):
    """A primary several generations ahead of an attached-but-idle
    replica; returns (primary, publisher, handle, stalled_gen)."""
    primary = Database.open(tmp_path / "primary", checkpoint_every=0,
                            fsync=False, keep_generations=1)
    primary.load(make_document(rng, counter), uri=URI)
    publisher = ReplicationPublisher(primary)
    handle = ReplicaHandle("slow", publisher, rng,
                           drop_p=0.0, dup_p=0.0, trunc_p=0.0)
    handle.drain()
    return primary, publisher, handle, handle.replica.applied_lsn[0]


def test_unpinned_tail_is_pruned_away(tmp_path):
    """Without the pin (the pre-fix behavior), the stalled replica's
    WAL generation is reclaimed and it is forced to re-bootstrap."""
    rng = random.Random(42)
    counter = [0]
    primary, publisher, handle, stalled_gen = _stalled_replica(
        tmp_path, rng, counter)
    try:
        # Simulate the pre-fix pruner: no pin protecting the tail.
        clear_retention_pin(primary.durability.directory, "slow")
        _advance_generations(primary, rng, counter)

        assert not wal_path(primary.durability.directory,
                            stalled_gen).exists(), \
            "expected the unpinned generation to be pruned"
        bootstraps_before = handle.replica.bootstraps
        handle.drain()
        assert handle.replica.gaps >= 1, \
            "pruned cursor generation must surface as a gap"
        assert handle.replica.bootstraps > bootstraps_before, \
            "a gap must force a snapshot re-bootstrap"
        # Even the degraded path converges (via snapshot), it is just
        # expensive — that is exactly what the pin avoids.
        assert_parity(primary, handle.replica.database,
                      probe_tags_for(counter, 42), "(unpinned)")
    finally:
        primary.close()


def test_pinned_tail_survives_pruning(tmp_path):
    """With the pin (the fix), the stalled replica's generation
    survives pruning and it catches up by pure WAL replay."""
    rng = random.Random(43)
    counter = [0]
    primary, publisher, handle, stalled_gen = _stalled_replica(
        tmp_path, rng, counter)
    try:
        pins = read_retention_pins(primary.durability.directory)
        assert pins.get("slow") == stalled_gen, \
            "polling must leave a pin at the cursor generation"
        _advance_generations(primary, rng, counter)

        assert wal_path(primary.durability.directory,
                        stalled_gen).exists(), \
            "pinned generation must survive keep_generations pruning"
        # Every generation from the pin forward is still replayable.
        wals = list_generations(primary.durability.directory)["wals"]
        assert all(gen in wals
                   for gen in range(stalled_gen, max(wals) + 1))

        bootstraps_before = handle.replica.bootstraps
        handle.drain()
        assert handle.replica.gaps == 0
        assert handle.replica.bootstraps == bootstraps_before, \
            "a pinned tail must catch up without re-bootstrapping"
        assert handle.replica.applied_lsn == publisher.primary_lsn()
        assert_parity(primary, handle.replica.database,
                      probe_tags_for(counter, 43), "(pinned)")
    finally:
        primary.close()


def test_expired_pin_stops_blocking_pruning(tmp_path):
    """A pin whose mtime exceeds the TTL is ignored (and removed):
    a dead replica cannot pin retention forever."""
    rng = random.Random(44)
    counter = [0]
    primary, publisher, handle, stalled_gen = _stalled_replica(
        tmp_path, rng, counter)
    try:
        directory = primary.durability.directory
        pin = retention_pin_path(directory, "slow")
        # Age the pin far past any TTL.
        old = time.time() - 10 * primary.durability \
            .retention_pin_ttl_seconds
        os.utime(pin, (old, old))
        primary.durability.retention_pin_ttl_seconds = 60.0

        _advance_generations(primary, rng, counter)
        assert not wal_path(directory, stalled_gen).exists(), \
            "an expired pin must not block pruning"
        assert not pin.exists(), "expired pins are garbage-collected"
        # The replica is *treated* as dead; if it does come back it
        # recovers through the gap path.
        handle.drain()
        assert handle.replica.gaps >= 1
        assert_parity(primary, handle.replica.database,
                      probe_tags_for(counter, 44), "(expired pin)")
    finally:
        primary.close()

"""Shared machinery for the replication chaos/differential tests.

Mirrors the crash-recovery harness idiom
(:mod:`tests.durability.test_crash_recovery`): seeded schedules of
load/insert/delete ops with a monotone tag counter so every element is
distinguishable, plus an ``observe`` probe that captures the serialized
tree and per-tag query answers item-for-item.

On top of that it adds the fault plane:

* :class:`ChaosSource` wraps a replica's source and — per seeded RNG —
  drops connections, re-delivers the previous ship batch verbatim
  (duplication), and truncates batches while leaving the batch's
  claimed cursor LSN intact (a *lying* batch: the replica must heal by
  advancing only per applied record, never trusting the claim).
* :class:`ReplicaHandle` models a replica process: ``kill`` discards
  the whole Replica object (in-memory state lost, identity + retention
  pin survive), ``restart`` builds a fresh one with the same id,
  ``drain`` polls it quiescent with faults disabled.
"""

from __future__ import annotations

import random

from repro import Database
from repro.xml import model
from repro.xml.serializer import serialize
from repro.replication import Replica, ReplicationPublisher
from repro.replication.replica import LocalSource

URI = "doc.xml"

_VALUES = ["alpha", "beta", "7", "3.5", "omega", "42"]


# -- schedule generation (the crash-recovery idiom) -------------------------------


def elements_under(node, out):
    for child in node.children():
        if isinstance(child, model.Element):
            out.append(child)
            elements_under(child, out)
    return out


def make_document(rng: random.Random, counter: list) -> str:
    parts = []
    for _ in range(rng.randint(2, 4)):
        tag = f"n{counter[0]}"
        counter[0] += 1
        parts.append(f"<{tag}>{rng.choice(_VALUES)}</{tag}>")
    return "<r>" + "".join(parts) + "</r>"


def make_fragment(rng: random.Random, counter: list) -> str:
    tag = f"n{counter[0]}"
    counter[0] += 1
    value = rng.choice(_VALUES)
    if rng.random() < 0.3:
        inner_tag = f"n{counter[0]}"
        counter[0] += 1
        inner = f"<{inner_tag}>{rng.choice(_VALUES)}</{inner_tag}>"
        return f"<{tag} a=\"{rng.choice(_VALUES)}\">{value}{inner}</{tag}>"
    return f"<{tag}>{value}</{tag}>"


def random_op(rng: random.Random, db: Database, counter: list):
    """Pick and APPLY one op on ``db``; returns the op tuple."""
    tree = db.document(URI).tree
    root = next(iter(tree.children()))
    elements = elements_under(root, [root])
    deletable = [e for e in elements
                 if isinstance(e.parent, model.Element)]
    if deletable and rng.random() < 0.4:
        victim = rng.choice(deletable)
        op = ("delete", f"//{victim.tag}")
        db.delete(op[1])
    else:
        parent = rng.choice(elements)
        fragment = make_fragment(rng, counter)
        path = "/r" if parent is root else f"//{parent.tag}"
        op = ("insert", path, fragment)
        db.insert(path, fragment)
    return op


def apply_op(db: Database, op) -> None:
    if op[0] == "insert":
        db.insert(op[1], op[2])
    elif op[0] == "delete":
        db.delete(op[1])
    else:
        db.load(op[1], uri=URI)


def probe_tags_for(counter: list, seed: int):
    rng = random.Random(seed + 1)
    tags = {f"n{i}" for i in rng.sample(range(counter[0]),
                                        min(6, counter[0]))}
    return sorted(tags | {"r"})


def observe(db: Database, probe_tags) -> dict:
    """Serialized tree + item-for-item probe answers — the parity
    oracle compared between primary and replicas."""
    state = {"xml": serialize(db.document(URI).tree)}
    for tag in sorted(probe_tags):
        result = db.query(f"//{tag}")
        state[tag] = (len(result), result.values())
    return state


def assert_parity(primary: Database, replica_db: Database,
                  probe_tags, context: str) -> None:
    assert replica_db.version_vector() == primary.version_vector(), \
        f"version-vector divergence {context}"
    expected = observe(primary, probe_tags)
    actual = observe(replica_db, probe_tags)
    assert actual == expected, f"query parity violation {context}"


# -- fault injection --------------------------------------------------------------


class ChaosSource:
    """A :class:`LocalSource` wrapper injecting ship-path faults.

    ``wal`` fetches may (a) raise ``ConnectionError``, (b) return the
    *previous* response verbatim — a duplicated/re-ordered delivery,
    stale cursor echo, stale ``primary_lsn`` and all, or (c) return a
    truncated batch: tail records and offsets dropped but the claimed
    batch LSN left pointing past them (the batch *lies* about how far
    it goes).  Probabilities are per-call; ``calm()`` zeroes them for
    the quiesce phase.
    """

    def __init__(self, publisher: ReplicationPublisher,
                 rng: random.Random, drop_p: float = 0.10,
                 dup_p: float = 0.15, trunc_p: float = 0.15):
        self.inner = LocalSource(publisher)
        self.rng = rng
        self.drop_p = drop_p
        self.dup_p = dup_p
        self.trunc_p = trunc_p
        self.dropped = 0
        self.duplicated = 0
        self.truncated = 0
        self._last_response = None

    def calm(self) -> None:
        self.drop_p = self.dup_p = self.trunc_p = 0.0

    def register(self, replica_id, address=None):
        return self.inner.register(replica_id, address=address)

    def snapshot(self, replica_id):
        return self.inner.snapshot(replica_id)

    def detach(self, replica_id):
        return self.inner.detach(replica_id)

    def close(self):
        self.inner.close()

    def wal(self, replica_id, lsn, max_records):
        if self.rng.random() < self.drop_p:
            self.dropped += 1
            raise ConnectionError("injected: ship connection dropped")
        if self._last_response is not None \
                and self.rng.random() < self.dup_p:
            self.duplicated += 1
            return self._last_response
        response = self.inner.wal(replica_id, lsn, max_records)
        if response.get("records") and self.rng.random() < self.trunc_p:
            keep = self.rng.randrange(len(response["records"]))
            response = dict(response)
            response["records"] = response["records"][:keep]
            response["offsets"] = response["offsets"][:keep]
            # "lsn" deliberately left claiming the full batch.
            self.truncated += 1
        self._last_response = response
        return response


# -- replica process model --------------------------------------------------------


class ReplicaHandle:
    """One replica 'process' driven deterministically (no threads)."""

    def __init__(self, replica_id: str,
                 publisher: ReplicationPublisher, rng: random.Random,
                 **fault_probs):
        self.replica_id = replica_id
        self.publisher = publisher
        self.rng = rng
        self.fault_probs = fault_probs
        self.replica = None
        self.source = None
        self.kills = 0
        self._calm = False
        self.restart()

    @property
    def alive(self) -> bool:
        return self.replica is not None

    def kill(self) -> None:
        """Crash: all in-memory state gone; the identity (and with it
        the primary-side retention pin) survives."""
        self.replica = None
        self.source = None
        self.kills += 1

    def restart(self) -> None:
        self.source = ChaosSource(self.publisher, self.rng,
                                  **self.fault_probs)
        if self._calm:
            self.source.calm()
        self.replica = Replica(self.source,
                               replica_id=self.replica_id,
                               poll_interval=0.0)
        try:
            self.replica.register()
            self.replica.bootstrap()
        except (ConnectionError, OSError):
            pass  # picked up by a later poll/restart

    def calm(self) -> None:
        self._calm = True
        if self.source is not None:
            self.source.calm()

    def poll(self, times: int = 1) -> None:
        for _ in range(times):
            if not self.alive:
                return
            try:
                if self.replica.state != "tailing":
                    self.replica.bootstrap()
                else:
                    self.replica.poll_once()
            except (ConnectionError, OSError):
                pass

    def drain(self, max_polls: int = 200) -> None:
        """Poll until applied_lsn reaches the primary's position.
        Call :meth:`calm` first — this asserts convergence."""
        if not self.alive:
            self.restart()
        for _ in range(max_polls):
            if self.replica.state == "tailing" \
                    and self.replica.applied_lsn \
                    >= self.publisher.primary_lsn() \
                    and self.replica.freshness_ts is not None:
                # Freshness needs a caught-up *poll*, not just a
                # caught-up cursor: right after bootstrap the replica
                # has not yet observed the primary at any local time.
                return
            self.poll()
        raise AssertionError(
            f"{self.replica_id} failed to converge after "
            f"{max_polls} polls: applied={self.replica.applied_lsn} "
            f"primary={self.publisher.primary_lsn()} "
            f"state={self.replica.state}")

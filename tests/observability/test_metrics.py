"""MetricsRegistry unit tests: instruments, pull metrics, the JSON
snapshot, and a golden test + format validator for the Prometheus text
exposition output."""

import re
import threading

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

# -- a minimal exposition-format validator --------------------------------------

METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABELS = r"\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\"" \
         r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\}"
SAMPLE_LINE = re.compile(
    rf"^{METRIC_NAME}(?:{LABELS})? "
    r"(?:[+-]?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?)|\+Inf|-Inf|NaN)$")
HELP_LINE = re.compile(rf"^# HELP {METRIC_NAME} .*$")
TYPE_LINE = re.compile(
    rf"^# TYPE {METRIC_NAME} (counter|gauge|histogram|summary|untyped)$")


def assert_valid_exposition(text: str) -> None:
    """Every line is a valid HELP/TYPE/sample line; TYPE precedes the
    samples of its metric; the text ends with a newline."""
    assert text.endswith("\n")
    typed: set[str] = set()
    for line in text.splitlines():
        if line.startswith("# HELP"):
            assert HELP_LINE.match(line), line
        elif line.startswith("# TYPE"):
            assert TYPE_LINE.match(line), line
            typed.add(line.split()[2])
        else:
            assert SAMPLE_LINE.match(line), line
            name = re.match(METRIC_NAME, line).group(0)
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            assert name in typed or base in typed, \
                f"sample {name} before its TYPE"


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_labels(self):
        counter = Counter("c_total", "help", labelnames=("kind",))
        counter.inc(1, kind="a")
        counter.inc(5, kind="b")
        assert counter.value(kind="a") == 1
        assert counter.value(kind="b") == 5
        assert counter.value(kind="missing") == 0

    def test_negative_rejected(self):
        counter = Counter("c_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_labels_rejected(self):
        counter = Counter("c_total", "help", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc(1, wrong="x")
        with pytest.raises(ValueError):
            counter.inc(1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_collect_time_function(self):
        gauge = Gauge("g", "help")
        state = {"value": 1}
        gauge.set_function(lambda: state["value"])
        assert gauge.value() == 1
        state["value"] = 7
        assert gauge.value() == 7


class TestHistogram:
    def test_observe_and_count(self):
        histogram = Histogram("h", "help", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(5.55)

    def test_cumulative_buckets_rendering(self):
        histogram = Histogram("h", "help", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        rendered = "\n".join(histogram.render())
        assert 'h_bucket{le="0.1"} 1' in rendered
        assert 'h_bucket{le="1"} 2' in rendered
        assert 'h_bucket{le="+Inf"} 3' in rendered
        assert "h_count 3" in rendered

    def test_boundary_value_is_inclusive(self):
        histogram = Histogram("h", "help", buckets=(1.0,))
        histogram.observe(1.0)
        rendered = "\n".join(histogram.render())
        assert 'h_bucket{le="1"} 1' in rendered

    def test_labelled_series(self):
        histogram = Histogram("h", "help", buckets=(1.0,),
                              labelnames=("mode",))
        histogram.observe(0.5, mode="read")
        histogram.observe(2.0, mode="write")
        assert histogram.count(mode="read") == 1
        assert histogram.count(mode="write") == 1
        assert histogram.count(mode="other") == 0

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        second = registry.counter("x_total", "help")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "help")

    def test_labelname_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "help", labelnames=("b",))

    def test_pull_metric(self):
        registry = MetricsRegistry()
        state = {"n": 3}
        registry.register_pull("pulled_total", "counter", "help",
                               lambda: state["n"])
        assert registry.value("pulled_total") == 3
        state["n"] = 9
        assert registry.value("pulled_total") == 9

    def test_pull_metric_failure_renders_absent(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("source gone")

        registry.register_pull("broken_total", "counter", "help", broken)
        assert "broken_total" not in registry.render_prometheus()
        assert registry.snapshot()["broken_total"]["value"] is None

    def test_unregister(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help")
        assert registry.unregister("x_total")
        assert not registry.unregister("x_total")
        assert registry.get("x_total") is None

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("plain_total", "help").inc(2)
        labelled = registry.counter("by_kind_total", "help",
                                    labelnames=("kind",))
        labelled.inc(1, kind="a")
        snapshot = registry.snapshot()
        assert snapshot["plain_total"]["value"] == 2
        assert snapshot["by_kind_total"]["value"] == {"a": 1}

    def test_thread_safety_of_counter(self):
        counter = Counter("c_total", "help")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000


class TestPrometheusExposition:
    def test_golden_output(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_queries_total", "Queries served.",
            labelnames=("strategy",)).inc(3, strategy="nok")
        registry.gauge("repro_documents_loaded",
                       "Documents currently loaded.").set(1)
        histogram = registry.histogram(
            "repro_query_latency_seconds", "Query wall time.",
            buckets=(0.001, 0.01))
        histogram.observe(0.0005)
        histogram.observe(0.005)
        expected = "\n".join([
            "# HELP repro_documents_loaded Documents currently loaded.",
            "# TYPE repro_documents_loaded gauge",
            "repro_documents_loaded 1",
            "# HELP repro_queries_total Queries served.",
            "# TYPE repro_queries_total counter",
            'repro_queries_total{strategy="nok"} 3',
            "# HELP repro_query_latency_seconds Query wall time.",
            "# TYPE repro_query_latency_seconds histogram",
            'repro_query_latency_seconds_bucket{le="0.001"} 1',
            'repro_query_latency_seconds_bucket{le="0.01"} 2',
            'repro_query_latency_seconds_bucket{le="+Inf"} 2',
            "repro_query_latency_seconds_sum 0.0055",
            "repro_query_latency_seconds_count 2",
        ]) + "\n"
        assert registry.render_prometheus() == expected

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", "help",
                                   labelnames=("text",))
        counter.inc(1, text='say "hi"\nback\\slash')
        rendered = registry.render_prometheus()
        assert (r'x_total{text="say \"hi\"\nback\\slash"} 1'
                in rendered)
        assert_valid_exposition(rendered)

    def test_validator_accepts_all_instrument_kinds(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "help").inc()
        registry.gauge("b", "help").set(2.5)
        registry.histogram("c_seconds", "help", buckets=(1.0,)) \
            .observe(0.5)
        registry.register_pull("d_total", "counter", "help", lambda: 7)
        assert_valid_exposition(registry.render_prometheus())

"""MetricsRegistry unit tests: instruments, pull metrics, the JSON
snapshot, and a golden test + format validator for the Prometheus text
exposition output."""

import re
import threading

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsAggregator,
    MetricsRegistry,
    parse_exposition,
)

# -- a minimal exposition-format validator --------------------------------------

METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABELS = r"\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\"" \
         r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\}"
SAMPLE_LINE = re.compile(
    rf"^{METRIC_NAME}(?:{LABELS})? "
    r"(?:[+-]?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?)|\+Inf|-Inf|NaN)$")
HELP_LINE = re.compile(rf"^# HELP {METRIC_NAME} .*$")
TYPE_LINE = re.compile(
    rf"^# TYPE {METRIC_NAME} (counter|gauge|histogram|summary|untyped)$")


def assert_valid_exposition(text: str) -> None:
    """Every line is a valid HELP/TYPE/sample line; TYPE precedes the
    samples of its metric; each family is typed exactly once; no
    series (name + label set) appears twice; the text ends with a
    newline.

    The one-TYPE/one-series rules are what a real Prometheus scraper
    enforces — naively concatenating two processes' expositions
    violates both, which is the PR 9 regression this validator guards
    (see ``TestMetricsAggregator.test_naive_concat_is_invalid``).
    """
    assert text.endswith("\n")
    typed: set[str] = set()
    seen_series: set[str] = set()
    for line in text.splitlines():
        if line.startswith("# HELP"):
            assert HELP_LINE.match(line), line
        elif line.startswith("# TYPE"):
            assert TYPE_LINE.match(line), line
            family = line.split()[2]
            assert family not in typed, \
                f"duplicate # TYPE for family {family}"
            typed.add(family)
        else:
            assert SAMPLE_LINE.match(line), line
            name = re.match(METRIC_NAME, line).group(0)
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            assert name in typed or base in typed, \
                f"sample {name} before its TYPE"
            series = line.rsplit(" ", 1)[0]
            assert series not in seen_series, \
                f"duplicate series {series}"
            seen_series.add(series)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_labels(self):
        counter = Counter("c_total", "help", labelnames=("kind",))
        counter.inc(1, kind="a")
        counter.inc(5, kind="b")
        assert counter.value(kind="a") == 1
        assert counter.value(kind="b") == 5
        assert counter.value(kind="missing") == 0

    def test_negative_rejected(self):
        counter = Counter("c_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_labels_rejected(self):
        counter = Counter("c_total", "help", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc(1, wrong="x")
        with pytest.raises(ValueError):
            counter.inc(1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_collect_time_function(self):
        gauge = Gauge("g", "help")
        state = {"value": 1}
        gauge.set_function(lambda: state["value"])
        assert gauge.value() == 1
        state["value"] = 7
        assert gauge.value() == 7


class TestHistogram:
    def test_observe_and_count(self):
        histogram = Histogram("h", "help", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(5.55)

    def test_cumulative_buckets_rendering(self):
        histogram = Histogram("h", "help", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        rendered = "\n".join(histogram.render())
        assert 'h_bucket{le="0.1"} 1' in rendered
        assert 'h_bucket{le="1"} 2' in rendered
        assert 'h_bucket{le="+Inf"} 3' in rendered
        assert "h_count 3" in rendered

    def test_boundary_value_is_inclusive(self):
        histogram = Histogram("h", "help", buckets=(1.0,))
        histogram.observe(1.0)
        rendered = "\n".join(histogram.render())
        assert 'h_bucket{le="1"} 1' in rendered

    def test_labelled_series(self):
        histogram = Histogram("h", "help", buckets=(1.0,),
                              labelnames=("mode",))
        histogram.observe(0.5, mode="read")
        histogram.observe(2.0, mode="write")
        assert histogram.count(mode="read") == 1
        assert histogram.count(mode="write") == 1
        assert histogram.count(mode="other") == 0

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        second = registry.counter("x_total", "help")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "help")

    def test_labelname_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "help", labelnames=("b",))

    def test_pull_metric(self):
        registry = MetricsRegistry()
        state = {"n": 3}
        registry.register_pull("pulled_total", "counter", "help",
                               lambda: state["n"])
        assert registry.value("pulled_total") == 3
        state["n"] = 9
        assert registry.value("pulled_total") == 9

    def test_pull_metric_failure_renders_absent(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("source gone")

        registry.register_pull("broken_total", "counter", "help", broken)
        assert "broken_total" not in registry.render_prometheus()
        assert registry.snapshot()["broken_total"]["value"] is None

    def test_unregister(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help")
        assert registry.unregister("x_total")
        assert not registry.unregister("x_total")
        assert registry.get("x_total") is None

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("plain_total", "help").inc(2)
        labelled = registry.counter("by_kind_total", "help",
                                    labelnames=("kind",))
        labelled.inc(1, kind="a")
        snapshot = registry.snapshot()
        assert snapshot["plain_total"]["value"] == 2
        assert snapshot["by_kind_total"]["value"] == {"a": 1}

    def test_thread_safety_of_counter(self):
        counter = Counter("c_total", "help")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000


class TestPrometheusExposition:
    def test_golden_output(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_queries_total", "Queries served.",
            labelnames=("strategy",)).inc(3, strategy="nok")
        registry.gauge("repro_documents_loaded",
                       "Documents currently loaded.").set(1)
        histogram = registry.histogram(
            "repro_query_latency_seconds", "Query wall time.",
            buckets=(0.001, 0.01))
        histogram.observe(0.0005)
        histogram.observe(0.005)
        expected = "\n".join([
            "# HELP repro_documents_loaded Documents currently loaded.",
            "# TYPE repro_documents_loaded gauge",
            "repro_documents_loaded 1",
            "# HELP repro_queries_total Queries served.",
            "# TYPE repro_queries_total counter",
            'repro_queries_total{strategy="nok"} 3',
            "# HELP repro_query_latency_seconds Query wall time.",
            "# TYPE repro_query_latency_seconds histogram",
            'repro_query_latency_seconds_bucket{le="0.001"} 1',
            'repro_query_latency_seconds_bucket{le="0.01"} 2',
            'repro_query_latency_seconds_bucket{le="+Inf"} 2',
            "repro_query_latency_seconds_sum 0.0055",
            "repro_query_latency_seconds_count 2",
        ]) + "\n"
        assert registry.render_prometheus() == expected

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", "help",
                                   labelnames=("text",))
        counter.inc(1, text='say "hi"\nback\\slash')
        rendered = registry.render_prometheus()
        assert (r'x_total{text="say \"hi\"\nback\\slash"} 1'
                in rendered)
        assert_valid_exposition(rendered)

    def test_validator_accepts_all_instrument_kinds(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "help").inc()
        registry.gauge("b", "help").set(2.5)
        registry.histogram("c_seconds", "help", buckets=(1.0,)) \
            .observe(0.5)
        registry.register_pull("d_total", "counter", "help", lambda: 7)
        assert_valid_exposition(registry.render_prometheus())


class TestParseExposition:
    def test_round_trip_of_a_registry(self):
        registry = MetricsRegistry()
        registry.counter("q_total", "Queries.",
                         labelnames=("verb",)).inc(3, verb="query")
        registry.gauge("depth", "Queue depth.").set(2)
        families = parse_exposition(registry.render_prometheus())
        assert families["q_total"]["kind"] == "counter"
        assert families["q_total"]["help"] == "Queries."
        assert (("q_total", (("verb", "query"),), 3.0)
                in families["q_total"]["samples"])
        assert families["depth"]["kind"] == "gauge"

    def test_histogram_samples_group_under_base_family(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", "help",
                           buckets=(0.1,)).observe(0.05)
        families = parse_exposition(registry.render_prometheus())
        assert set(families) == {"lat_seconds"}
        names = {name for name, _, _
                 in families["lat_seconds"]["samples"]}
        assert names == {"lat_seconds_bucket", "lat_seconds_sum",
                         "lat_seconds_count"}

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_exposition("this is not { an exposition\n")


class TestMetricsAggregator:
    @staticmethod
    def _worker_text(queries: int) -> str:
        registry = MetricsRegistry()
        registry.counter("repro_queries_total", "Queries.",
                         labelnames=("strategy",)) \
            .inc(queries, strategy="twig")
        registry.gauge("repro_documents_loaded",
                       "Documents loaded.").set(1)
        registry.histogram("repro_query_latency_seconds", "Latency.",
                           buckets=(0.01, 0.1)) \
            .observe(0.005)
        return registry.render_prometheus()

    def test_counters_sum_fleet_wide(self):
        aggregator = MetricsAggregator()
        aggregator.ingest(self._worker_text(3), worker="0")
        aggregator.ingest(self._worker_text(4), worker="1")
        merged = aggregator.render()
        assert ('repro_queries_total{strategy="twig"} 7' in merged)

    def test_gauges_get_worker_label(self):
        aggregator = MetricsAggregator()
        aggregator.ingest(self._worker_text(1), worker="0")
        aggregator.ingest(self._worker_text(1), worker="1")
        merged = aggregator.render()
        assert 'repro_documents_loaded{worker="0"} 1' in merged
        assert 'repro_documents_loaded{worker="1"} 1' in merged
        # Never nonsensically summed into "2 documents".
        assert "repro_documents_loaded 2" not in merged

    def test_histogram_buckets_sum_and_stay_cumulative(self):
        aggregator = MetricsAggregator()
        aggregator.ingest(self._worker_text(1), worker="0")
        aggregator.ingest(self._worker_text(1), worker="1")
        merged = aggregator.render()
        assert ('repro_query_latency_seconds_bucket{le="0.01"} 2'
                in merged)
        assert ('repro_query_latency_seconds_bucket{le="+Inf"} 2'
                in merged)
        assert "repro_query_latency_seconds_count 2" in merged

    def test_merged_exposition_is_valid(self):
        aggregator = MetricsAggregator()
        aggregator.ingest(self._worker_text(3), worker="0")
        aggregator.ingest(self._worker_text(4), worker="1")
        assert_valid_exposition(aggregator.render())

    def test_naive_concat_is_invalid(self):
        """The PR 9 regression: concatenating two workers' expositions
        (what ``ServerFrontend.metrics_text`` used to do) produces
        duplicate ``# TYPE`` families and duplicate series — invalid
        scrape input.  The merge path is the only correct one."""
        concatenated = self._worker_text(3) + self._worker_text(4)
        with pytest.raises(AssertionError):
            assert_valid_exposition(concatenated)

    def test_help_and_type_render_once(self):
        aggregator = MetricsAggregator()
        aggregator.ingest(self._worker_text(1), worker="0")
        aggregator.ingest(self._worker_text(1), worker="1")
        merged = aggregator.render()
        assert merged.count("# TYPE repro_queries_total counter") == 1
        assert merged.count("# HELP repro_queries_total") == 1

    def test_unlabelled_source_merges_as_is(self):
        """The frontend's own registry is ingested without a worker
        label: its gauges keep their shape."""
        registry = MetricsRegistry()
        registry.gauge("repro_server_workers", "Live workers.").set(4)
        aggregator = MetricsAggregator()
        aggregator.ingest(registry.render_prometheus())
        assert "repro_server_workers 4" in aggregator.render()

    def test_unparseable_scrape_raises(self):
        aggregator = MetricsAggregator()
        with pytest.raises(ValueError):
            aggregator.ingest("garbage { line\n", worker="0")

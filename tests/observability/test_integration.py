"""Database-level observability integration tests.

* query metrics (latency histogram, per-strategy/source counters);
* the error path: executor exceptions settle the per-thread I/O ledger
  and count in ``repro_query_errors_total`` by exception class;
* span nesting across ``query_many`` worker threads;
* RWLock wait histograms and holders gauges;
* slow-query log through the facade;
* WAL/checkpoint pull metrics on a durable database;
* ``observability_report()`` and the Prometheus endpoint text.
"""

import pytest

from repro.engine.database import Database
from repro.errors import ExecutionError

from tests.observability.test_metrics import assert_valid_exposition

BIB = """
<bib>
  <book year="1994"><title>TCP/IP</title>
    <author><last>Stevens</last></author><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author><last>Abiteboul</last></author>
    <author><last>Buneman</last></author><price>39.95</price></book>
  <book year="1999"><title>Economics</title><price>129.95</price></book>
</bib>
"""


def make_db(**kwargs) -> Database:
    database = Database(**kwargs)
    database.load(BIB, uri="bib.xml")
    return database


class TestQueryMetrics:
    def test_latency_histogram_and_counters(self):
        db = make_db()
        db.query("/bib/book/title", strategy="nok")
        db.query("/bib/book/title", strategy="nok")  # result-cache hit
        registry = db.observability.registry
        latency = registry.get("repro_query_latency_seconds")
        assert latency.count() >= 2
        assert registry.value("repro_queries_total", strategy="nok",
                              source="execute") == 1
        assert registry.value("repro_queries_total", strategy="nok",
                              source="result-cache") == 1

    def test_cache_and_page_pull_metrics(self):
        db = make_db()
        db.query("//book[price > 50]/title")
        registry = db.observability.registry
        assert registry.value("repro_documents_loaded") == 1
        assert registry.value("repro_pages_read_total") >= 0
        assert registry.value("repro_logical_touches_total") > 0
        assert registry.value("repro_cache_misses_total",
                              cache="result") >= 1
        db.query("//book[price > 50]/title")
        assert registry.value("repro_cache_hits_total",
                              cache="result") >= 1

    def test_prometheus_endpoint_is_valid_exposition(self):
        db = make_db()
        db.query("//last")
        try:
            db.query("$undefined")
        except ExecutionError:
            pass
        text = db.metrics_text()
        assert_valid_exposition(text)
        assert "repro_query_latency_seconds_bucket" in text
        assert "repro_pages_read_total" in text
        assert 'repro_query_errors_total{exception="ExecutionError"} 1' \
            in text


class TestErrorPath:
    def test_executor_error_counts_and_settles_io(self):
        db = make_db()
        with pytest.raises(ExecutionError):
            db.query("$undefined")
        registry = db.observability.registry
        assert registry.value("repro_query_errors_total",
                              exception="ExecutionError") == 1
        report = db.observability_report()
        assert report["errors"]["recorded_total"] == 1
        [entry] = report["errors"]["recent"]
        assert entry["exception"] == "ExecutionError"
        assert entry["text"] == "$undefined"
        assert "io" in entry
        # The thread's I/O ledger was settled by the finally diff: a
        # subsequent query reports only its own I/O (smoke check — the
        # strong invariant is the concurrency suite's ledger test).
        result = db.query("//last")
        assert result.io["logical_touches"] >= 0

    def test_error_log_is_bounded(self):
        db = make_db(slow_log_capacity=4)
        db.observability.error_log.capacity  # exists
        for _ in range(3):
            with pytest.raises(ExecutionError):
                db.query("$undefined")
        assert db.observability.registry.value(
            "repro_query_errors_total",
            exception="ExecutionError") == 3


class TestTracingThroughEngine:
    def test_query_trace_structure(self):
        db = make_db(trace_sample=1.0)
        db.clear_caches()
        db.query("//book[price > 50]/title")
        traces = db.observability.tracer.finished_traces()
        query_roots = [t for t in traces if t.name == "query"]
        assert query_roots
        root = query_roots[-1]
        execute = root.find("execute")
        assert execute is not None
        tau = execute.find("execute.tau")
        assert tau is not None
        assert tau.attributes["rows"] == 2  # 65.95 and 129.95
        assert tau.find("plan") is None  # plan precedes the tau span
        assert root.find("construct") is not None

    def test_compile_spans(self):
        db = make_db(trace_sample=1.0)
        db.clear_caches()
        db.query("//distinct-query-for-compile-span/x")
        traces = db.observability.tracer.finished_traces()
        compile_roots = [t for t in traces if t.name == "compile"]
        assert compile_roots
        names = {c.name for c in compile_roots[-1].children}
        assert {"parse", "translate", "rewrite"} <= names

    def test_span_nesting_across_query_many_threads(self):
        db = make_db(trace_sample=1.0)
        queries = ["/bib/book/title", "//last", "//book[author]/price",
                   "/bib/book[@year = '1994']", "//book/price",
                   "//author/last"]
        db.query_many(queries, max_workers=4)
        traces = db.observability.tracer.finished_traces()
        query_roots = [t for t in traces if t.name == "query"]
        assert len(query_roots) >= len(queries)
        # Every trace is a complete, well-nested tree: distinct trace
        # ids, children sharing the root's trace id.
        trace_ids = [t.trace_id for t in query_roots]
        assert len(set(trace_ids)) == len(trace_ids)

        def check(span, trace_id):
            assert span.trace_id == trace_id
            for child in span.children:
                assert child.parent_id == span.span_id
                check(child, trace_id)

        for root in query_roots:
            check(root, root.trace_id)

    def test_sampling_off_produces_no_traces(self):
        db = make_db()  # trace_sample defaults to 0.0
        db.query("//last")
        assert db.observability.tracer.finished_traces() == []


class TestLockObservability:
    def test_wait_histograms_by_mode(self):
        db = make_db()
        db.query("//last")
        db.insert("/bib", "<book><title>New</title></book>")
        lock_wait = db.observability.registry.get(
            "repro_lock_wait_seconds")
        # MVCC: queries pin snapshots — the read-mode series must stay
        # empty (queries acquire zero RWLock read locks); only the
        # writer path (insert) touches the lock.
        assert lock_wait.count(mode="read") == 0
        assert lock_wait.count(mode="write") > 0

    def test_holders_gauges(self):
        db = make_db()
        registry = db.observability.registry
        assert registry.value("repro_lock_readers") == 0
        assert registry.value("repro_lock_writer_held") == 0
        with db.rwlock.read_locked():
            assert registry.value("repro_lock_readers") == 1
        with db.rwlock.write_locked():
            assert registry.value("repro_lock_writer_held") == 1

    def test_holders_snapshot(self):
        db = make_db()
        holders = db.rwlock.holders()
        assert holders == {"active_readers": 0, "waiting_writers": 0,
                           "writer_held": False}


class TestSlowQueryLogThroughEngine:
    def test_every_query_is_slow_at_zero_threshold(self):
        db = make_db(slow_query_seconds=0.0)
        db.query("//last")
        report = db.observability_report()
        assert report["slow_queries"]["recorded_total"] >= 1
        entry = report["slow_queries"]["recent"][-1]
        assert entry["text"] == "//last"
        assert entry["strategy"]
        assert "io" in entry and "stats" in entry

    def test_slow_entry_carries_trace_when_sampled(self):
        db = make_db(slow_query_seconds=0.0, trace_sample=1.0)
        db.query("//author/last")
        entries = db.observability.slow_log.entries()
        traced = [e for e in entries if e.get("trace")]
        assert traced
        assert traced[-1]["trace"]["name"] == "query"

    def test_default_threshold_records_nothing_fast(self):
        db = make_db()  # 0.25s default threshold
        db.query("//last")
        assert db.observability_report()["slow_queries"][
            "recorded_total"] == 0


class TestDurabilityMetrics:
    def test_wal_and_checkpoint_pulls(self, tmp_path):
        db = Database.open(tmp_path / "data", checkpoint_every=0)
        try:
            db.load(BIB, uri="bib.xml")
            db.insert("/bib", "<book><title>Extra</title></book>")
            registry = db.observability.registry
            assert registry.value("repro_wal_records_total") >= 2
            assert registry.value("repro_wal_bytes_total") > 0
            assert registry.value("repro_checkpoints_total") >= 1
            assert registry.value("repro_checkpoint_last_seconds") > 0
            assert db.durability.bytes_logged > 0
            assert db.durability.last_checkpoint is not None
            stats = db.durability.wal.stats()
            assert stats["records_appended"] >= 0
        finally:
            db.close()

    def test_wal_spans_when_traced(self, tmp_path):
        db = Database.open(tmp_path / "data", checkpoint_every=0,
                           trace_sample=1.0)
        try:
            db.load(BIB, uri="bib.xml")
            db.insert("/bib", "<book><title>Extra</title></book>")
            traces = db.observability.tracer.finished_traces()
            names = {t.name for t in traces}
            assert "wal.append" in names or any(
                t.find("wal.append") for t in traces)
            assert "checkpoint" in names or any(
                t.find("checkpoint") for t in traces)
        finally:
            db.close()

    def test_in_memory_database_renders_zero_durability(self):
        db = make_db()
        text = db.metrics_text()
        assert "repro_wal_records_total 0" in text


class TestObservabilityReport:
    def test_report_shape(self):
        db = make_db(trace_sample=1.0, slow_query_seconds=0.0)
        db.query("//last")
        report = db.observability_report()
        assert set(report) == {"tracing", "slow_queries", "errors",
                               "metrics"}
        assert report["tracing"]["sample_rate"] == 1.0
        assert report["tracing"]["traces_finished"] >= 1
        assert "repro_query_latency_seconds" in report["metrics"]

    def test_cache_report_exposes_hit_rate(self):
        db = make_db()
        db.query("//last")
        db.query("//last")
        report = db.cache_report()
        assert 0.0 <= report["result_cache"]["hit_rate"] <= 1.0
        assert report["plan_cache"]["hit_rate"] >= 0.0

    def test_pages_report(self):
        db = make_db()
        db.query("//last")
        report = db.pages.report()
        assert report["logical_touches"] > 0
        assert report["pool_capacity"] > 0
        assert report["pool_pages"] <= report["pool_capacity"]

"""SlowQueryLog / QueryErrorLog unit tests: threshold behaviour,
bounded capacity, and the report shapes."""

import pytest

from repro.observability.slowlog import QueryErrorLog, SlowQueryLog


class TestSlowQueryLog:
    def test_threshold(self):
        log = SlowQueryLog(threshold_seconds=0.1)
        assert not log.maybe_record(0.05, text="fast")
        assert log.maybe_record(0.15, text="slow")
        assert len(log) == 1
        [entry] = log.entries()
        assert entry["text"] == "slow"
        assert entry["elapsed_seconds"] == pytest.approx(0.15)
        assert entry["recorded_at"] > 0

    def test_threshold_is_inclusive(self):
        log = SlowQueryLog(threshold_seconds=0.1)
        assert log.maybe_record(0.1, text="edge")

    def test_capacity_bound(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=3)
        for index in range(10):
            log.maybe_record(1.0, text=f"q{index}")
        assert len(log) == 3
        assert [e["text"] for e in log.entries()] == ["q7", "q8", "q9"]
        assert log.recorded_total == 10

    def test_entries_limit_and_clear(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=10)
        for index in range(5):
            log.maybe_record(1.0, text=f"q{index}")
        assert [e["text"] for e in log.entries(limit=2)] == ["q3", "q4"]
        log.clear()
        assert log.entries() == []
        assert log.recorded_total == 5  # the counter survives a clear

    def test_set_threshold(self):
        log = SlowQueryLog(threshold_seconds=10.0)
        assert not log.maybe_record(1.0)
        log.set_threshold(0.5)
        assert log.maybe_record(1.0)

    def test_report(self):
        log = SlowQueryLog(threshold_seconds=0.25, capacity=8)
        log.maybe_record(1.0, text="q")
        assert log.report() == {
            "threshold_seconds": 0.25,
            "capacity": 8,
            "entries": 1,
            "recorded_total": 1,
        }

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)


class TestQueryErrorLog:
    def test_record(self):
        log = QueryErrorLog()
        entry = log.record(ValueError("bad input"), text="//x")
        assert entry["exception"] == "ValueError"
        assert entry["message"] == "bad input"
        assert entry["text"] == "//x"
        assert len(log) == 1

    def test_capacity_bound(self):
        log = QueryErrorLog(capacity=2)
        for index in range(5):
            log.record(RuntimeError(str(index)))
        assert len(log) == 2
        assert [e["message"] for e in log.entries()] == ["3", "4"]
        assert log.recorded_total == 5

    def test_clear(self):
        log = QueryErrorLog()
        log.record(RuntimeError("x"))
        log.clear()
        assert log.entries() == []

"""Tracer unit tests: nesting, the ring buffer bound, sampling (off,
full, fractional — no torn traces), and cross-thread independence."""

import random
import threading

import pytest

from repro.observability.tracing import NULL_SPAN, Span, Tracer


class TestSpanNesting:
    def test_parent_child_structure(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.span("root") as root:
            with tracer.span("child-a") as a:
                with tracer.span("leaf") as leaf:
                    pass
            with tracer.span("child-b"):
                pass
        traces = tracer.finished_traces()
        assert len(traces) == 1
        tree = traces[0]
        assert tree is root
        assert [c.name for c in tree.children] == ["child-a", "child-b"]
        assert [c.name for c in tree.children[0].children] == ["leaf"]
        assert leaf.parent_id == a.span_id
        assert a.trace_id == root.trace_id == leaf.trace_id

    def test_attributes_and_find(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.span("query", strategy="auto") as span:
            span.set("rows", 42)
            span.set(source="execute", extra=1)
            with tracer.span("execute"):
                pass
        assert span.attributes["strategy"] == "auto"
        assert span.attributes["rows"] == 42
        assert span.attributes["source"] == "execute"
        assert span.find("execute").name == "execute"
        assert span.find("missing") is None

    def test_duration_and_dict_export(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.span("timed"):
            pass
        [trace] = tracer.export()
        assert trace["name"] == "timed"
        assert trace["duration_seconds"] >= 0.0
        assert trace["children"] == []

    def test_exception_annotates_error(self):
        tracer = Tracer(sample_rate=1.0)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        [trace] = tracer.finished_traces()
        assert trace.attributes["error"] == "ValueError"

    def test_current_span(self):
        tracer = Tracer(sample_rate=1.0)
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
        assert tracer.current_span() is None


class TestRingBuffer:
    def test_bounded(self):
        tracer = Tracer(sample_rate=1.0, capacity=4)
        for index in range(10):
            with tracer.span(f"trace-{index}"):
                pass
        traces = tracer.finished_traces()
        assert len(traces) == 4
        assert [t.name for t in traces] == [
            "trace-6", "trace-7", "trace-8", "trace-9"]
        assert tracer.traces_dropped == 6
        assert tracer.traces_finished == 10

    def test_clear(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.span("one"):
            pass
        tracer.clear()
        assert tracer.finished_traces() == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestSampling:
    def test_off_returns_null_span(self):
        tracer = Tracer(sample_rate=0.0)
        span = tracer.span("query")
        assert not span.is_recording
        with span:
            # Children inside an unsampled trace are no-ops too.
            child = tracer.span("execute")
            assert not child.is_recording
        assert tracer.finished_traces() == []
        assert tracer.spans_started == 0

    def test_full_rate_records_everything(self):
        tracer = Tracer(sample_rate=1.0)
        for _ in range(5):
            with tracer.span("query"):
                with tracer.span("execute"):
                    pass
        assert tracer.traces_finished == 5
        assert tracer.spans_started == 10

    def test_fractional_sampling_never_tears_traces(self):
        tracer = Tracer(sample_rate=0.5, rng=random.Random(42))
        for _ in range(200):
            with tracer.span("root"):
                with tracer.span("child"):
                    with tracer.span("leaf"):
                        pass
        traces = tracer.finished_traces()
        # Some but not all sampled, and every buffered trace is a full
        # tree rooted at "root" — no orphan "child"/"leaf" roots.
        assert 0 < tracer.traces_finished < 200
        assert all(t.name == "root" for t in traces)
        assert all(t.children[0].name == "child" for t in traces)

    def test_set_sample_rate(self):
        tracer = Tracer(sample_rate=0.0)
        tracer.set_sample_rate(1.0)
        with tracer.span("now-sampled"):
            pass
        assert tracer.traces_finished == 1


class TestThreads:
    def test_per_thread_stacks_stay_independent(self):
        tracer = Tracer(sample_rate=1.0)
        barrier = threading.Barrier(4)
        errors = []

        def worker(name: str) -> None:
            try:
                barrier.wait(timeout=5)
                for _ in range(50):
                    with tracer.span(f"root-{name}") as root:
                        with tracer.span(f"inner-{name}") as inner:
                            assert inner.trace_id == root.trace_id
                            assert inner.parent_id == root.span_id
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(str(i),))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        traces = tracer.finished_traces()
        assert tracer.traces_finished == 200
        for trace in traces:
            suffix = trace.name.split("-", 1)[1]
            assert [c.name for c in trace.children] == [f"inner-{suffix}"]


class TestNullSpan:
    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            assert span.set("k", 1) is span
            assert span.to_dict() == {}
            assert span.find("anything") is None
            assert span.duration_seconds == 0.0

    def test_real_span_repr(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.span("x") as span:
            pass
        assert isinstance(span, Span)
        assert "x" in repr(span)

"""E6 — FLWOR evaluation strategies (the Section-3.2 motivation).

The paper motivates NestedList/τ with the Fig. 1 comprehension: pipelined
nested-loop evaluation re-traverses per binding, join-based decomposition
needs extra structural joins, while a single τ produces the whole
comprehension in one pass.  The bench evaluates Fig.-1-style FLWORs of
growing nesting depth three ways:

* ``interpreter`` — the reference interpreter (pipelined navigation),
* ``logical-tpm``  — translated plan, logical τ over the model tree,
* ``engine-nok``   — translated plan, physical τ over succinct storage.
"""

import pytest

from benchmarks.common import dblp_database, format_table, publish, timed
from repro.algebra.plan import ExecutionContext, execute_plan
from repro.algebra.rewrite import rewrite_plan
from repro.algebra.translate import translate
from repro.xquery.parser import parse_xquery

FLWORS = {
    1: ('for $a in doc("dblp.xml")/dblp/article '
        "return $a/title"),
    2: ('for $a in doc("dblp.xml")/dblp/article '
        "for $u in $a/author "
        "return concat($u, ': ')"),
    3: ('for $a in doc("dblp.xml")/dblp/article '
        "for $u in $a/author "
        "for $y in $a/year "
        "return concat($u, '@', $y)"),
}

PUBLICATIONS = 400


def interpreter_run(database, query):
    return database.reference_query(query)


def logical_run(database, query):
    plan = rewrite_plan(translate(parse_xquery(query)))
    trees = {uri: doc.tree for uri, doc in database.documents.items()}
    context = ExecutionContext(trees)
    return execute_plan(plan, context)


def engine_run(database, query):
    return database.query(query, strategy="nok").items


def test_e6_report(benchmark):
    database = dblp_database(PUBLICATIONS)
    rows = []
    runners = {
        "interpreter": interpreter_run,
        "logical-tpm": logical_run,
        "engine-nok": engine_run,
    }
    sizes = {}
    for depth, query in FLWORS.items():
        for name, runner in runners.items():
            count = len(runner(database, query))
            sizes.setdefault(depth, set()).add(count)
            seconds = timed(lambda r=runner, q=query:
                            r(database, q), repeat=2)
            rows.append([depth, name, count, seconds * 1000])
    table = format_table(
        f"E6 — FLWOR strategies over dblp-{PUBLICATIONS}",
        ["nesting", "strategy", "results", "time (ms)"],
        rows,
        note="All three agree on every result set; the tau-based plans "
             "evaluate the outer comprehension in one pattern pass "
             "instead of per-binding navigation.")
    publish("e6_flwor_strategies", table)
    for depth, counts in sizes.items():
        assert len(counts) == 1, f"strategies disagree at depth {depth}"

    benchmark(lambda: engine_run(database, FLWORS[2]))


@pytest.mark.parametrize("name", ["interpreter", "logical-tpm",
                                  "engine-nok"])
def test_e6_depth2_benchmark(benchmark, name):
    database = dblp_database(PUBLICATIONS)
    runner = {"interpreter": interpreter_run, "logical-tpm": logical_run,
              "engine-nok": engine_run}[name]
    result = benchmark(lambda: runner(database, FLWORS[2]))
    assert len(result) > 0

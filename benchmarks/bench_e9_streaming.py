"""E9 — streaming evaluation: the linearisation *is* the arrival order.

Section 4.2: because the succinct storage linearises in pre-order, "the
path query evaluation algorithm ... can also be used in the streaming
context".  The bench runs the same NoK pattern three ways —

* ``stored``       over the succinct storage (document pre-loaded),
* ``stream``       over parser events, no storage at all,
* ``build+query``  parse, build storage, then match (the non-streaming
  alternative a one-shot query would pay) —

and reports time plus peak additional memory (tracemalloc), showing the
streaming path's footprint stays bounded by the open path + matches
while building the store costs the whole document.
"""

import tracemalloc

import pytest

from benchmarks.common import format_table, publish, timed
from repro.algebra.pattern_graph import compile_path
from repro.engine.database import Database
from repro.physical.nok import NoKMatcher
from repro.workload import generate_xmark
from repro.xml.parser import iterparse
from repro.xml.serializer import serialize
from repro.xpath.parser import parse_xpath

QUERY = "/site/people/person[profile]/name"
SCALE = 300


@pytest.fixture(scope="module")
def text():
    return serialize(generate_xmark(scale=SCALE, seed=13))


@pytest.fixture(scope="module")
def database(text):
    db = Database()
    db.load(text, uri="stream.xml")
    return db


def pattern():
    return compile_path(parse_xpath(QUERY))


def stream_run(text):
    matcher = NoKMatcher(pattern())
    return matcher.run_stream(iterparse(text))


def stored_run(database):
    matcher = NoKMatcher(pattern())
    return matcher.run(database.document().runtime)


def build_and_query(text):
    db = Database()
    db.load(text, uri="once.xml")
    return stored_run(db)


def peak_memory(callable_) -> float:
    tracemalloc.start()
    callable_()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / 1024.0


def test_e9_report(benchmark, text, database):
    output = pattern().output_vertices()[0].vertex_id

    stream_ids = sorted({b[output] for b in stream_run(text)
                         if output in b})
    stored_ids = sorted({b[output] for b in stored_run(database)
                         if output in b})
    assert stream_ids == stored_ids

    rows = [
        ["stream", len(stream_ids),
         timed(lambda: stream_run(text), repeat=2) * 1000,
         peak_memory(lambda: stream_run(text))],
        ["stored", len(stored_ids),
         timed(lambda: stored_run(database), repeat=2) * 1000,
         peak_memory(lambda: stored_run(database))],
        ["build+query", len(stored_ids),
         timed(lambda: build_and_query(text), repeat=2) * 1000,
         peak_memory(lambda: build_and_query(text))],
    ]
    table = format_table(
        f"E9 — streaming vs stored NoK on xmark-{SCALE} "
        f"({len(text) // 1024} KiB of XML), query {QUERY}",
        ["mode", "matches", "time (ms)", "peak extra memory (KiB)"],
        rows,
        note="Stream and stored produce identical pre-order matches; the "
             "streaming matcher keeps only the open path, while "
             "build+query materialises the whole storage first.")
    publish("e9_streaming", table)

    memory = {row[0]: row[3] for row in rows}
    assert memory["stream"] < memory["build+query"] / 2

    benchmark(lambda: stored_run(database))


def test_e9_stream_benchmark(benchmark, text):
    result = benchmark(lambda: stream_run(text))
    assert result


def test_e9_build_and_query_benchmark(benchmark, text):
    result = benchmark(lambda: build_and_query(text))
    assert result

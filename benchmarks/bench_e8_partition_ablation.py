"""E8 — ablation: how much does NoK partitioning save?

The design choice behind Section 4.2: evaluate maximal NoK units with the
single-scan matcher and join only across non-local edges.  The bench
takes one 6-step path and sweeps the fraction of ``//`` edges from 0 to
all, comparing the partitioned plan's join count and intermediates with
the one-join-per-edge baseline.
"""

import pytest

from benchmarks.common import format_table, publish, timed, xmark_database
from repro.algebra.pattern_graph import compile_path
from repro.physical.partition import partition_pattern
from repro.workload.queries import descendant_fraction
from repro.xpath.parser import parse_xpath

SCALE = 400
DEPTH = 6


def run(database, query, strategy):
    database.pages.reset()
    return database.query(query, strategy=strategy)


def test_e8_report(benchmark):
    database = xmark_database(SCALE)
    rows = []
    for descendant_edges in range(0, DEPTH + 1):
        query = descendant_fraction(DEPTH, descendant_edges)
        pattern = compile_path(parse_xpath(query))
        partitions = len(partition_pattern(pattern))
        for strategy in ("partitioned", "structural-join"):
            result = run(database, query, strategy)
            seconds = timed(lambda q=query, s=strategy:
                            run(database, q, s), repeat=2)
            rows.append([
                f"{descendant_edges}/{DEPTH}", query, strategy,
                partitions if strategy == "partitioned" else "-",
                result.stats["structural_joins"],
                result.stats["intermediate_results"],
                len(result), seconds * 1000,
            ])
    table = format_table(
        f"E8 — partition ablation over xmark-{SCALE} "
        f"(6-step path, growing // fraction)",
        ["// edges", "query", "strategy", "partitions", "joins",
         "intermediates", "results", "time (ms)"],
        rows,
        note="Partitioned joins == cut (//) edges; the join-per-edge "
             "baseline pays one per step regardless.  At 0/6 the whole "
             "pattern is one NoK unit: a single scan, zero joins.")
    publish("e8_partition_ablation", table)

    by_key = {(row[0], row[2]): row for row in rows}
    for descendant_edges in range(0, DEPTH + 1):
        key = f"{descendant_edges}/{DEPTH}"
        assert by_key[(key, "partitioned")][4] == descendant_edges
        assert by_key[(key, "structural-join")][4] >= DEPTH
        assert by_key[(key, "partitioned")][6] == \
            by_key[(key, "structural-join")][6]

    benchmark(lambda: run(database, descendant_fraction(DEPTH, 2),
                          "partitioned"))


@pytest.mark.parametrize("descendant_edges", [0, 3, 6])
def test_e8_fraction_benchmark(benchmark, descendant_edges):
    database = xmark_database(SCALE)
    query = descendant_fraction(DEPTH, descendant_edges)
    result = benchmark(lambda: run(database, query, "partitioned"))
    assert len(result) >= 0

"""E7 — update locality: succinct splice vs interval relabelling.

Section 4.2: "This clustering method makes update easier since each
update only affects a local sub-string."  The bench inserts small
subtrees at random positions into documents of growing size and reports
what each storage moves: the succinct scheme shifts only entries after
the splice point (≈ n/2 expected, independent of *where* ancestors sit),
while interval encoding must relabel pre/post/end of everything after the
insertion *plus all ancestors* — and, critically, a tail insertion is
nearly free for the splice but the interval store still rewrites labels.
"""

import random

import pytest

from benchmarks.common import format_table, publish
from repro.storage.interval import IntervalDocument
from repro.storage.succinct import SuccinctDocument
from repro.workload import generate_xmark
from repro.xml.model import Element
from repro.xml.parser import parse


def fresh_stores(scale):
    tree = generate_xmark(scale=scale, seed=21)
    return (SuccinctDocument.from_document(tree),
            IntervalDocument.from_document(tree))


def subtree():
    item = Element("item")
    item.set_attribute("id", "new")
    name = item.append(Element("name"))
    name.append_text("inserted")
    return item


def next_insertion_point(succinct, rng):
    """A fresh (parent, position) under a random region element —
    recomputed per insertion, since every splice renumbers nodes."""
    regions = [node for node in succinct.element_ids()
               if succinct.tag(node) in ("europe", "asia", "africa",
                                         "namerica")]
    parent = rng.choice(regions)
    children = sum(1 for child in succinct.children(parent)
                   if succinct.kind(child) != 2)
    return parent, rng.randint(0, children)


def test_e7_report(benchmark):
    rng = random.Random(3)
    rows = []
    for scale in (50, 100, 200, 400):
        succinct, interval = fresh_stores(scale)
        nodes = succinct.node_count
        shifted = []
        relabelled = []
        for _ in range(8):
            parent, position = next_insertion_point(succinct, rng)
            metrics = succinct.insert_subtree(parent, position, subtree())
            shifted.append(metrics["shifted_entries"])
            metrics = interval.insert_subtree(parent, position, subtree())
            relabelled.append(metrics["relabelled"])
        # Bytes physically moved: the splice shifts ~1.25 bytes/entry
        # (2 BP bits + a packed tag/kind id); the relabel rewrites full
        # 20-byte label records (pre, post, end, level, parent).
        splice_bytes = sum(shifted) / len(shifted) * 1.25
        relabel_bytes = sum(relabelled) / len(relabelled) * 20
        rows.append([
            scale, nodes,
            round(sum(shifted) / len(shifted)),
            round(sum(relabelled) / len(relabelled)),
            round(splice_bytes),
            round(relabel_bytes),
            round(relabel_bytes / max(1.0, splice_bytes), 1),
        ])
    # Deletions pay the same asymmetry.
    delete_rows = []
    for scale in (100, 400):
        succinct, interval = fresh_stores(scale)
        rng_local = random.Random(5)
        spliced = []
        relabelled_del = []
        for _ in range(6):
            items = [node for node in succinct.element_ids("item")]
            victim = rng_local.choice(items)
            metrics = succinct.delete_subtree(victim)
            spliced.append(metrics["shifted_entries"])
            metrics = interval.delete_subtree(victim)
            relabelled_del.append(metrics["relabelled"])
        delete_rows.append([
            scale,
            round(sum(spliced) / len(spliced)),
            round(sum(relabelled_del) / len(relabelled_del)),
            round(sum(relabelled_del) * 20
                  / max(1.0, sum(spliced) * 1.25), 1),
        ])

    # Tail insertion: append at the very end of the document element.
    succinct, interval = fresh_stores(200)
    site = 1
    site_children = sum(1 for child in succinct.children(site)
                        if succinct.kind(child) != 2)
    tail_succinct = succinct.insert_subtree(site, site_children, subtree())
    tail_interval = interval.insert_subtree(site, site_children, subtree())

    table = format_table(
        "E7 — update cost per random subtree insertion",
        ["scale", "nodes", "splice entries", "relabelled records",
         "splice bytes", "relabel bytes", "byte ratio"],
        rows,
        note=f"Tail insertion on xmark-200: succinct shifts "
             f"{tail_succinct['shifted_entries']} entries; interval "
             f"relabels {tail_interval['relabelled']} — the splice is "
             f"local, the labels are global.")
    delete_table = format_table(
        "E7b — deletion cost per random item removal",
        ["scale", "splice entries", "relabelled records", "byte ratio"],
        delete_rows)
    publish("e7_updates", table + "\n\n" + delete_table)

    # Shape: the byte cost of the splice is an order of magnitude below
    # the relabel cost, and the tail insertion is free for the splice.
    for row in rows:
        assert row[6] >= 10
    assert tail_succinct["shifted_entries"] <= 2

    store, _ = fresh_stores(100)
    benchmark(lambda: store.insert_subtree(1, 0, subtree()))


def test_e7_succinct_insert_benchmark(benchmark):
    succinct, _ = fresh_stores(200)

    def insert():
        succinct.insert_subtree(1, 0, subtree())

    benchmark(insert)


def test_e7_interval_insert_benchmark(benchmark):
    _, interval = fresh_stores(200)

    def insert():
        interval.insert_subtree(1, 0, subtree())

    benchmark(insert)

#!/usr/bin/env python3
"""Run every experiment's report and print all the tables.

The pytest harness (``pytest benchmarks/ --benchmark-only``) produces
timing statistics and regenerates the same tables into
``benchmarks/results/``; this runner is the quick way to see everything
at once::

    python benchmarks/run_all.py
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))


class _NullBenchmark:
    """Stands in for pytest-benchmark's fixture: call-through."""

    def __call__(self, func, *args, **kwargs):
        return func(*args, **kwargs)


def main() -> None:
    from benchmarks import (
        bench_e1_storage_size,
        bench_e2_nok_vs_joins,
        bench_e3_twig_queries,
        bench_e4_scaling,
        bench_e5_selectivity,
        bench_e6_flwor_strategies,
        bench_e7_updates,
        bench_e8_partition_ablation,
        bench_e9_streaming,
        bench_fig1_construction,
        bench_fig2_env,
        bench_table1_operators,
    )

    reports = [
        ("T1", bench_table1_operators.test_table1_regenerated, ()),
        ("F1", bench_fig1_construction.test_fig1_schema_tree_report, ()),
        ("F2", bench_fig2_env.test_fig2_report, ()),
        ("E1", bench_e1_storage_size.test_e1_storage_report, ()),
        ("E2", bench_e2_nok_vs_joins.test_e2_report, ()),
        ("E3", bench_e3_twig_queries.test_e3_report, ()),
        ("E4", bench_e4_scaling.test_e4_report, ()),
        ("E5", bench_e5_selectivity.test_e5_report, ()),
        ("E6", bench_e6_flwor_strategies.test_e6_report, ()),
        ("E7", bench_e7_updates.test_e7_report, ()),
        ("E8", bench_e8_partition_ablation.test_e8_report, ()),
    ]

    started = time.perf_counter()
    for label, report, args in reports:
        print(f"\n{'#' * 70}\n# {label}\n{'#' * 70}")
        report(_NullBenchmark(), *args)

    # E9 uses module fixtures; wire them manually.
    from benchmarks import bench_e9_streaming as e9
    from repro.engine.database import Database
    from repro.workload import generate_xmark
    from repro.xml.serializer import serialize

    print(f"\n{'#' * 70}\n# E9\n{'#' * 70}")
    text = serialize(generate_xmark(scale=e9.SCALE, seed=13))
    database = Database()
    database.load(text, uri="stream.xml")
    e9.test_e9_report(_NullBenchmark(), text, database)

    # E10-E18 follow the run(quick)/test_eN_report() shape (no
    # benchmark fixture): serving-layer caches, concurrency, durability,
    # observability overhead, columnar execution, MVCC snapshot reads,
    # network serving, distributed tracing overhead, replication.
    from benchmarks import (
        bench_e10_query_cache,
        bench_e11_concurrency,
        bench_e12_durability,
        bench_e13_observability,
        bench_e14_columnar,
        bench_e15_mvcc,
        bench_e16_server,
        bench_e17_distributed_obs,
        bench_e18_replication,
    )

    for label, module in (("E10", bench_e10_query_cache),
                          ("E11", bench_e11_concurrency),
                          ("E12", bench_e12_durability),
                          ("E13", bench_e13_observability),
                          ("E14", bench_e14_columnar),
                          ("E15", bench_e15_mvcc),
                          ("E16", bench_e16_server),
                          ("E17", bench_e17_distributed_obs),
                          ("E18", bench_e18_replication)):
        print(f"\n{'#' * 70}\n# {label}\n{'#' * 70}")
        module.run(quick=False)

    elapsed = time.perf_counter() - started
    print(f"\nAll experiments completed in {elapsed:.1f}s; tables saved "
          f"under benchmarks/results/.")


if __name__ == "__main__":
    main()

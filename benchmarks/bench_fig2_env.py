"""F2 — regenerate Fig. 2: the layered environment of Example 1.

Rebuilds the exact forest of the paper (for $a / for $b / let $c /
let $d / for $e with the Fig. 2 branching — 13 total bindings, schema
``($a,($b,$c,$d,($e)))``), prints its layer profile, then scales the same
clause shape up to show Env construction and enumeration stay linear in
the number of total bindings.
"""

import pytest

from benchmarks.common import format_table, publish, timed
from repro.algebra.env import Env


def build_fig2() -> Env:
    env = Env()
    env.extend_for("a", lambda b: ["a1", "a2", "a3"])
    b_values = {"a1": ["b11", "b12"], "a2": ["b21"],
                "a3": ["b31", "b32", "b33"]}
    env.extend_for("b", lambda b: b_values[b["a"][0]])
    env.extend_let("c", lambda b: ["c-" + b["b"][0]])
    env.extend_let("d", lambda b: ["d-" + b["b"][0]])
    e_counts = {"b11": 3, "b12": 2, "b21": 2, "b31": 2, "b32": 3, "b33": 1}
    env.extend_for("e", lambda b: [f"e{i}"
                                   for i in range(e_counts[b["b"][0]])])
    return env


def build_scaled(fan_a: int, fan_b: int, fan_e: int) -> Env:
    env = Env()
    env.extend_for("a", lambda b: list(range(fan_a)))
    env.extend_for("b", lambda b: list(range(fan_b)))
    env.extend_let("c", lambda b: ["c"])
    env.extend_let("d", lambda b: ["d"])
    env.extend_for("e", lambda b: list(range(fan_e)))
    return env


def test_fig2_report(benchmark):
    env = benchmark(build_fig2)
    lines = ["Fig. 2 — the Example-1 environment, regenerated",
             "=" * 47, "",
             f"nested-list schema: {env.schema()}", "",
             env.describe(), ""]
    assert env.binding_count() == 13
    assert env.schema() == "($a,($b,$c,$d,($e)))"

    sweep = []
    for fan in (4, 8, 16, 32):
        bindings = fan * fan * fan
        seconds = timed(lambda f=fan: list(
            build_scaled(f, f, f).total_bindings()), repeat=2)
        sweep.append([f"{fan}x{fan}x{fan}", bindings, seconds * 1000])
    lines.append(format_table(
        "Env scaling (same clause shape, growing fan-out)",
        ["shape", "total bindings", "build+enumerate (ms)"], sweep,
        note="Time grows linearly with the binding count — the Env is "
             "the tuple stream, not a materialised cross product of "
             "sequences."))
    publish("fig2_env", "\n".join(lines))


def test_env_enumeration_benchmark(benchmark):
    env = build_scaled(16, 16, 16)
    bindings = benchmark(lambda: list(env.total_bindings()))
    assert len(bindings) == 16 ** 3

"""E5 — selectivity crossover: content-index probes vs scans.

The separated content store exists so value indexes can be built on it
(Section 4.2).  For highly selective equality predicates the index-scan
strategy touches a handful of pages; for low-selectivity predicates the
NoK scan wins.  The bench sweeps predicate selectivity on one large
document and checks that the cost model picks the cheaper side at both
ends.
"""

import pytest

from benchmarks.common import format_table, publish, timed, xmark_database
from repro.algebra.cost import CostModel
from repro.algebra.pattern_graph import compile_path
from repro.workload.queries import SELECTIVITY_SWEEP, selectivity_query
from repro.xpath.parser import parse_xpath

SCALE = 800


def sweep_queries(database):
    queries = []
    for label, query, selectivity in SELECTIVITY_SWEEP:
        if query == "#first-name":
            name = database.query("//item/name").values()[0]
            queries.append(("name-exact", selectivity_query(name),
                            1.0 / SCALE))
        else:
            queries.append((label, query, selectivity))
    return queries


def run(database, query, strategy):
    database.pages.reset()
    return database.query(query, strategy=strategy)


def test_e5_report(benchmark):
    database = xmark_database(SCALE)
    cost_model = CostModel(database.document().statistics)
    rows = []
    picks = {}
    for label, query, selectivity in sweep_queries(database):
        pattern = compile_path(parse_xpath(query))
        choice = cost_model.cheapest_strategy(pattern)
        picks[label] = choice
        for strategy in ("index-scan", "nok"):
            result = run(database, query, strategy)
            seconds = timed(lambda q=query, s=strategy:
                            run(database, q, s), repeat=2)
            rows.append([label, f"{selectivity:.4f}", strategy,
                         len(result), seconds * 1000,
                         result.io["page_reads"],
                         "<-- chosen" if strategy == choice else ""])
    table = format_table(
        f"E5 — predicate selectivity sweep over xmark-{SCALE}",
        ["predicate", "selectivity", "strategy", "results", "time (ms)",
         "page reads", "optimizer"],
        rows,
        note="The crossover: the index probe wins when the predicate is "
             "selective (bottom), the scan when it is not (top).  The "
             "'optimizer' column marks the cost model's choice.")
    publish("e5_selectivity", table)

    # Shape: the model picks the scan side for the coarse predicate and
    # the index side for the needle-in-a-haystack predicate.
    assert picks["name-exact"] == "index-scan"
    assert picks["featured-no"] != "index-scan"
    # And the picks are actually right about page reads.
    reads = {(row[0], row[2]): row[5] for row in rows}
    assert reads[("name-exact", "index-scan")] <= \
        reads[("name-exact", "nok")]

    query = sweep_queries(database)[-1][1]
    benchmark(lambda: run(database, query, "index-scan"))


@pytest.mark.parametrize("strategy", ["index-scan", "nok"])
def test_e5_needle_benchmark(benchmark, strategy):
    database = xmark_database(SCALE)
    label, query, _ = sweep_queries(database)[-1]
    result = benchmark(lambda: run(database, query, strategy))
    assert len(result) == 1

"""E1 — storage succinctness: succinct scheme vs interval shredding vs DOM.

The paper's storage claim: linearising structure as balanced parentheses
with tags, and keeping content separate, is far smaller than per-node
label records.  The bench reports bytes/node for the *structure* part
(what navigation touches) and for the totals, across document scales and
all three workload shapes.
"""

import pytest

from benchmarks.common import (
    dblp_database,
    format_table,
    publish,
    treebank_database,
    xmark_database,
)
from repro.storage.succinct import SuccinctDocument

_DOM_BYTES_PER_NODE = 32  # pointers: parent, first child, sibling, tag


def _row(label, database):
    document = database.document()
    nodes = document.succinct.node_count
    succinct = document.succinct.size_bytes()
    interval = document.interval.size_bytes()
    succinct_structure = (succinct["structure"] + succinct["tags"]
                          + succinct["kinds"] + succinct["symbol_table"])
    return [
        label,
        nodes,
        round(succinct_structure / nodes, 2),
        round(interval["records"] / nodes, 2),
        float(_DOM_BYTES_PER_NODE),
        round(succinct["total"] / nodes, 2),
        round(interval["total"] / nodes, 2),
    ]


def test_e1_storage_report(benchmark):
    rows = []
    for scale in (50, 200, 800):
        rows.append(_row(f"xmark-{scale}", xmark_database(scale)))
    rows.append(_row("dblp-400", dblp_database(400)))
    rows.append(_row("treebank-60", treebank_database(60)))

    table = format_table(
        "E1 — structure bytes/node: succinct vs interval vs DOM",
        ["document", "nodes", "succinct struct", "interval records",
         "DOM est.", "succinct total", "interval total"],
        rows,
        note="Structure = what pattern matching reads (BP bits + tags + "
             "kinds vs 20-byte label records vs pointer DOM).  Totals "
             "include the shared content; the succinct scheme stores it "
             "once, separately (Section 4.2).")
    publish("e1_storage_size", table)

    # The headline claim: succinct structure is a fraction of interval's.
    for row in rows:
        assert row[2] * 2.5 < row[3], row[0]

    database = xmark_database(200)
    tree = database.document().tree
    benchmark(lambda: SuccinctDocument.from_document(tree))


def test_e1_succinct_build_benchmark(benchmark):
    tree = xmark_database(100).document().tree
    store = benchmark(lambda: SuccinctDocument.from_document(tree))
    assert store.node_count > 0


def test_e1_interval_build_benchmark(benchmark):
    from repro.storage.interval import IntervalDocument
    tree = xmark_database(100).document().tree
    store = benchmark(lambda: IntervalDocument.from_document(tree))
    assert len(store) > 0

"""E16 — network serving: worker scaling, overload, graceful drain.

PR 8 put the engine behind a multi-process query server
(:mod:`repro.server`): a threaded frontend speaks a CRC-framed binary
protocol (and HTTP/JSON) on one port, admits requests through a bounded
queue, and dispatches them least-loaded to worker processes that each
``Database.open()`` the shared data directory read-only.  This
experiment measures the serving properties end-to-end over real
sockets:

* **worker scaling** — end-to-end throughput and latency percentiles
  with 1, 2, and 4 worker processes under 8 concurrent clients, result
  caches off so every request executes its plan.  The 1→4 speedup is
  recorded together with ``cpu_count``: on a multi-core host the
  acceptance bar is ≥ 2×; on a single-core container (CI) the workers
  time-slice one core and the run documents that honestly instead of
  asserting an impossibility.
* **overload** — a 16-client slam against one worker with a 2-deep
  admission queue: memory stays bounded and the overflow is rejected
  with the *typed* ``BUSY`` error (counted by
  ``repro_server_rejections_total``), never an unbounded queue or a
  hung socket.
* **graceful drain** — clients in full flight when ``drain()`` fires:
  every admitted request finishes with a real answer, later ones get
  the typed ``DRAINING`` rejection, and zero in-flight queries are
  lost.

Artifacts: ``benchmarks/results/e16_server.txt`` plus machine-readable
numbers in ``benchmarks/results/BENCH_e16_server.json``.

Run directly (``python benchmarks/bench_e16_server.py [--quick]``) or
through pytest like the other experiments.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

if __package__ in (None, ""):  # direct `python benchmarks/bench_...py` run
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.common import RESULTS_DIR, format_table, publish
from repro.engine.database import Database
from repro.errors import ServerBusyError, ServerDrainingError, ServerError
from repro.server import ServerClient, ServerFrontend
from repro.workload import generate_xmark
from repro.xml.serializer import serialize

QUERIES = [
    "//item/name",
    "//item[payment = 'Creditcard']",
    "count(//item)",
    "//person/name",
    "//open_auction[initial > 100]",
]

CLIENTS = 8


def _build_data_dir(directory: str, scale: int) -> None:
    database = Database.open(directory)
    database.load(serialize(generate_xmark(scale=scale, seed=42)),
                  uri="xmark.xml")
    database.checkpoint()
    database.close()


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
    return ordered[index]


def _throughput_phase(data_dir: str, workers: int,
                      requests_per_client: int) -> dict:
    """End-to-end qps + latency with ``workers`` processes, result
    caches off (every request runs its physical plan)."""
    frontend = ServerFrontend(
        data_dir=data_dir, workers=workers, max_queue=64,
        db_kwargs={"result_cache_size": 0})
    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()
    with frontend:
        host, port = frontend.address

        def client_loop(offset: int) -> None:
            local: list[float] = []
            with ServerClient(host, port) as client:
                for index in range(requests_per_client):
                    query = QUERIES[(offset + index) % len(QUERIES)]
                    started = time.perf_counter()
                    try:
                        client.query_values(query)
                    except Exception as exc:  # noqa: BLE001
                        with lock:
                            errors.append(repr(exc))
                        continue
                    local.append(time.perf_counter() - started)
            with lock:
                latencies.extend(local)

        threads = [threading.Thread(target=client_loop, args=(i,))
                   for i in range(CLIENTS)]
        wall_started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_started

    total = CLIENTS * requests_per_client
    assert not errors, errors[:3]
    return {
        "workers": workers,
        "clients": CLIENTS,
        "requests": total,
        "wall_seconds": wall,
        "qps": total / max(wall, 1e-9),
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "errors": len(errors),
    }


def _overload_phase(data_dir: str, requests_per_client: int) -> dict:
    """16 clients vs 1 worker behind a 2-deep queue: bounded + typed."""
    frontend = ServerFrontend(
        data_dir=data_dir, workers=1, max_queue=2,
        db_kwargs={"result_cache_size": 0})
    outcomes = {"ok": 0, "busy": 0, "other": 0}
    max_depth = 0
    lock = threading.Lock()
    with frontend:
        host, port = frontend.address

        def slam(offset: int) -> None:
            nonlocal max_depth
            with ServerClient(host, port, retries=0) as client:
                for index in range(requests_per_client):
                    query = QUERIES[(offset + index) % len(QUERIES)]
                    try:
                        client.query_values(query)
                        key = "ok"
                    except ServerBusyError:
                        key = "busy"
                    except Exception:  # noqa: BLE001
                        key = "other"
                    depth = frontend.report()["waiting"]
                    with lock:
                        outcomes[key] += 1
                        max_depth = max(max_depth, depth)

        threads = [threading.Thread(target=slam, args=(i,))
                   for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        exposition = frontend.registry.render_prometheus()
    rejected = 0
    for line in exposition.splitlines():
        if line.startswith('repro_server_rejections_total'
                           '{reason="queue_full"}'):
            rejected = int(float(line.rsplit(" ", 1)[1]))
    return {
        "clients": 16,
        "max_queue": 2,
        "outcomes": outcomes,
        "max_observed_queue_depth": max_depth,
        "typed_busy_rejections_metric": rejected,
    }


def _drain_phase(data_dir: str, requests_per_client: int) -> dict:
    """Drain mid-flight: admitted requests finish, zero lost."""
    frontend = ServerFrontend(
        data_dir=data_dir, workers=2, max_queue=32,
        db_kwargs={"result_cache_size": 0})
    outcomes = {"ok": 0, "draining": 0, "hangup": 0, "lost": 0}
    lock = threading.Lock()
    started_event = threading.Event()
    with frontend:
        host, port = frontend.address

        def run_client(offset: int) -> None:
            with ServerClient(host, port, retries=0) as client:
                for index in range(requests_per_client):
                    query = QUERIES[(offset + index) % len(QUERIES)]
                    try:
                        response = client.query(query)
                        key = ("ok" if response.get("count", 0) >= 0
                               else "lost")
                    except ServerDrainingError:
                        key = "draining"
                    except (ServerError, OSError):
                        # Connection refused/hung up after the listener
                        # closed: the request was never admitted.
                        key = "hangup"
                    except Exception:  # noqa: BLE001
                        key = "lost"
                    with lock:
                        outcomes[key] += 1
                    started_event.set()

        threads = [threading.Thread(target=run_client, args=(i,))
                   for i in range(CLIENTS)]
        for thread in threads:
            thread.start()
        started_event.wait(10.0)  # clients are mid-flight: drain now
        report = frontend.drain(timeout=30.0)
        for thread in threads:
            thread.join()
    return {
        "outcomes": outcomes,
        "drained": report["drained"],
        "inflight_at_drain": report["inflight_at_drain"],
        "inflight_remaining": report["inflight_remaining"],
    }


def run(quick: bool = False) -> dict:
    scale = 25 if quick else 60
    requests_per_client = 25 if quick else 80

    with tempfile.TemporaryDirectory() as scratch:
        data_dir = str(Path(scratch) / "xmark.db")
        _build_data_dir(data_dir, scale)

        scaling = [_throughput_phase(data_dir, workers,
                                     requests_per_client)
                   for workers in (1, 2, 4)]
        overload = _overload_phase(data_dir,
                                   6 if quick else 12)
        drain = _drain_phase(data_dir,
                             10 if quick else 25)

    by_workers = {phase["workers"]: phase for phase in scaling}
    speedup_1_to_4 = (by_workers[4]["qps"]
                      / max(by_workers[1]["qps"], 1e-9))
    cpu_count = os.cpu_count() or 1

    report = {
        "experiment": "e16_server",
        "quick": quick,
        "scale": scale,
        "cpu_count": cpu_count,
        "scaling": scaling,
        "speedup_1_to_4_workers": speedup_1_to_4,
        "scaling_assertable": cpu_count >= 4,
        "overload": overload,
        "drain": drain,
    }

    table = format_table(
        f"E16 — network serving (xmark-{scale}, {CLIENTS} clients, "
        f"{cpu_count} core(s))",
        ["workers", "qps", "p50 ms", "p99 ms", "errors"],
        [[phase["workers"], phase["qps"], phase["p50_ms"],
          phase["p99_ms"], phase["errors"]] for phase in scaling],
        note=(f"1→4 worker speedup {speedup_1_to_4:.2f}x on "
              f"{cpu_count} core(s) — the ≥2x bar applies on ≥4 cores "
              f"only.\noverload (16 clients, queue=2): "
              f"{overload['outcomes']} with "
              f"{overload['typed_busy_rejections_metric']} typed BUSY "
              f"rejections, max queue depth "
              f"{overload['max_observed_queue_depth']}.\n"
              f"drain mid-flight: {drain['outcomes']}, drained="
              f"{drain['drained']}, in-flight remaining "
              f"{drain['inflight_remaining']} (zero lost)."))
    publish("e16_server", table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e16_server.json").write_text(
        json.dumps(report, indent=2, default=str) + "\n",
        encoding="utf-8")
    return report


def test_e16_report():
    report = run(quick=True)
    for phase in report["scaling"]:
        assert phase["errors"] == 0
        assert phase["qps"] > 0
        assert phase["p99_ms"] == phase["p99_ms"]  # not NaN
    # Worker scaling needs cores to scale onto; assert only when the
    # host actually has them, record honestly either way.
    if report["scaling_assertable"]:
        assert report["speedup_1_to_4_workers"] >= 2.0
    overload = report["overload"]
    assert overload["outcomes"]["other"] == 0
    assert overload["outcomes"]["busy"] > 0
    assert overload["typed_busy_rejections_metric"] >= \
        overload["outcomes"]["busy"]
    assert overload["max_observed_queue_depth"] <= overload["max_queue"]
    drain = report["drain"]
    assert drain["drained"] is True
    assert drain["inflight_remaining"] == 0
    assert drain["outcomes"]["lost"] == 0
    assert drain["outcomes"]["ok"] > 0


if __name__ == "__main__":
    import argparse

    argument_parser = argparse.ArgumentParser(description=__doc__)
    argument_parser.add_argument("--quick", action="store_true",
                                 help="small scale for CI smoke runs")
    arguments = argument_parser.parse_args()
    result = run(quick=arguments.quick)
    print(json.dumps({
        "cpu_count": result["cpu_count"],
        "qps_by_workers": {phase["workers"]: phase["qps"]
                           for phase in result["scaling"]},
        "speedup_1_to_4_workers": result["speedup_1_to_4_workers"],
        "busy_rejections":
            result["overload"]["typed_busy_rejections_metric"],
        "drain": result["drain"]["outcomes"],
    }, indent=2))

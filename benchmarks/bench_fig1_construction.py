"""F1 — regenerate Fig. 1: the query, its SchemaTree, and its evaluation.

Fig. 1(a) is the paper's example XQuery; Fig. 1(b) the output schema
extracted from it.  The bench prints the regenerated schema tree, checks
the evaluation semantics (one <result> per book, with copied title/author
content), and times the construction pipeline end to end over a growing
bibliography.
"""

import pytest

from benchmarks.common import dblp_database, format_table, publish, timed
from repro.algebra.schema_tree import extract_schema_tree
from repro.xquery.parser import parse_xquery

FIG1 = (
    '<results> {'
    ' for $b in document("dblp.xml")/dblp/article'
    ' let $t := $b/title'
    ' let $a := $b/author'
    ' return <result> {$t} {$a} </result>'
    ' } </results>')


def run_fig1(database):
    return database.query(FIG1)


def test_fig1_schema_tree_report(benchmark):
    schema = benchmark(lambda: extract_schema_tree(parse_xquery(FIG1)))
    lines = ["Fig. 1(b) — SchemaTree extracted from the Fig. 1(a) query",
             "=" * 57, "", schema.describe(), ""]
    sweep_rows = []
    for publications in (50, 200, 800):
        database = dblp_database(publications)
        result = run_fig1(database)
        results_element = result.items[0]
        entries = len(list(results_element.child_elements("result")))
        seconds = timed(lambda d=database: run_fig1(d))
        sweep_rows.append([publications, entries, seconds * 1000])
    lines.append(format_table(
        "Fig. 1 query evaluation (gamma over the schema tree)",
        ["publications", "result entries", "time (ms)"], sweep_rows,
        note="One <result> per article; titles/authors are copied into "
             "the constructed tree."))
    publish("fig1_construction", "\n".join(lines))
    assert len(schema.placeholders()) == 2


def test_fig1_query_benchmark(benchmark):
    database = dblp_database(200)
    result = benchmark(lambda: run_fig1(database))
    assert result.items[0].tag == "results"


def test_fig1_reference_interpreter_benchmark(benchmark):
    database = dblp_database(200)
    result = benchmark(lambda: database.reference_query(FIG1))
    assert result[0].tag == "results"

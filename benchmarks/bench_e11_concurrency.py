"""E11 — the concurrent serving layer: read throughput and mixed load.

Three experiments over an XMark document:

* **read-throughput scaling** — a fixed batch of queries fanned out
  through ``Database.query_many`` at increasing thread counts, in two
  regimes: *warm* (result cache on: a request is an LRU lookup under
  the cache lock — the "millions of users" serving path) and *execute*
  (result cache disabled: every request runs its physical plan as a
  shared reader).  CPython's GIL bounds the parallel speedup of pure-
  Python execution; the measurement shows the RW-lock/cache overhead is
  small enough that batching stays at worst flat rather than degrading.
* **reader/writer mix** — reader threads serve a query stream while one
  writer thread inserts/deletes under the exclusive lock; reports
  reader throughput next to writer latency, plus a correctness check
  (every reader answer equals one of the consistent snapshots).

Artifacts: ``benchmarks/results/e11_concurrency.txt`` plus
machine-readable numbers in
``benchmarks/results/BENCH_e11_concurrency.json``.

Run directly (``python benchmarks/bench_e11_concurrency.py [--quick]``)
or through pytest like the other experiments.
"""

from __future__ import annotations

import json
import threading
import time

if __package__ in (None, ""):  # direct `python benchmarks/bench_...py` run
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.common import RESULTS_DIR, format_table, publish
from repro.engine.database import Database
from repro.workload import generate_xmark

QUERIES = [
    "//item/name",
    "/site/regions/europe/item",
    "//item[payment = 'Creditcard']",
    "//open_auction[initial > 100]",
    "count(//item)",
    "//person/name",
]

NEW_ITEM = ('<item id="conc-bench"><name>inserted</name>'
            '<payment>Cash</payment><quantity>1</quantity></item>')


def _database(scale: int, **kwargs) -> Database:
    database = Database(**kwargs)
    database.load_tree(generate_xmark(scale=scale, seed=42),
                       uri="xmark.xml")
    return database


def run_throughput_experiment(scale: int, batch_size: int,
                              worker_counts: list[int]) -> dict:
    """Queries/second of ``query_many`` vs thread count, warm & cold."""
    rows = []
    for warm in (True, False):
        database = _database(
            scale, result_cache_size=256 if warm else 0)
        batch = [QUERIES[i % len(QUERIES)] for i in range(batch_size)]
        expected = [database.query(q).values() for q in batch]
        baseline = None
        for workers in worker_counts:
            if not warm:
                database.clear_caches()
            started = time.perf_counter()
            results = database.query_many(batch, max_workers=workers)
            elapsed = time.perf_counter() - started
            assert [r.values() for r in results] == expected, workers
            qps = batch_size / max(elapsed, 1e-9)
            if baseline is None:
                baseline = qps
            rows.append({
                "regime": "warm (result cache)" if warm else
                          "execute (cache off)",
                "workers": workers,
                "queries": batch_size,
                "seconds": elapsed,
                "qps": qps,
                "vs_1_thread": qps / baseline,
            })
    return {"rows": rows, "scale": scale}


def run_mixed_experiment(scale: int, readers: int,
                         reader_queries: int,
                         writer_updates: int) -> dict:
    """Reader throughput while a writer churns under the write lock."""
    database = _database(scale)
    # Two consistent snapshots are possible mid-churn: with and without
    # the probe item.
    base = {q: database.query(q).values() for q in QUERIES}
    database.insert("/site/regions/europe", NEW_ITEM)
    alt = {q: database.query(q).values() for q in QUERIES}
    database.delete('//item[@id = "conc-bench"]')
    database.clear_caches()

    errors: list = []
    reader_seconds: list[float] = []
    writer_latencies: list[float] = []

    def reader(offset: int) -> None:
        started = time.perf_counter()
        for index in range(reader_queries):
            query = QUERIES[(offset + index) % len(QUERIES)]
            values = database.query(query).values()
            if values != base[query] and values != alt[query]:
                errors.append((query, len(values)))
        reader_seconds.append(time.perf_counter() - started)

    def writer() -> None:
        for _ in range(writer_updates):
            started = time.perf_counter()
            database.insert("/site/regions/europe", NEW_ITEM)
            database.delete('//item[@id = "conc-bench"]')
            writer_latencies.append(time.perf_counter() - started)

    threads = [threading.Thread(target=reader, args=(i,))
               for i in range(readers)]
    writer_thread = threading.Thread(target=writer)
    wall_started = time.perf_counter()
    for thread in threads + [writer_thread]:
        thread.start()
    for thread in threads + [writer_thread]:
        thread.join()
    wall = time.perf_counter() - wall_started

    assert not errors, errors[:3]
    total_queries = readers * reader_queries
    return {
        "scale": scale,
        "readers": readers,
        "reader_queries_each": reader_queries,
        "writer_updates": writer_updates,
        "wall_seconds": wall,
        "reader_qps": total_queries / max(wall, 1e-9),
        "writer_update_seconds_mean": (
            sum(writer_latencies) / max(len(writer_latencies), 1)),
        "consistency_violations": len(errors),
    }


def run(quick: bool = False) -> dict:
    scale = 40 if quick else 120
    batch = 120 if quick else 480
    worker_counts = [1, 2, 4] if quick else [1, 2, 4, 8]
    readers = 4 if quick else 8
    report = {
        "experiment": "e11_concurrency",
        "quick": quick,
        "throughput": run_throughput_experiment(scale, batch,
                                                worker_counts),
        "mixed": run_mixed_experiment(
            scale, readers=readers,
            reader_queries=15 if quick else 40,
            writer_updates=5 if quick else 12),
    }

    throughput_rows = [[row["regime"], row["workers"], row["queries"],
                        row["seconds"], row["qps"], row["vs_1_thread"]]
                       for row in report["throughput"]["rows"]]
    mixed = report["mixed"]
    table = "\n\n".join([
        format_table(
            f"E11 — read throughput vs thread count (xmark-{scale})",
            ["regime", "threads", "queries", "seconds", "qps",
             "vs 1 thread"],
            throughput_rows,
            note="warm = result-cache hits under the shared read lock; "
                 "execute = cache disabled, full physical execution "
                 "per call (GIL-bound)"),
        format_table(
            f"E11b — {mixed['readers']} readers + 1 writer "
            f"(xmark-{scale})",
            ["metric", "value"],
            [["reader qps",
              mixed["reader_qps"]],
             ["writer mean update ms",
              mixed["writer_update_seconds_mean"] * 1e3],
             ["consistency violations",
              mixed["consistency_violations"]]],
            note="every reader answer matched a consistent snapshot "
                 "(base or base+probe); writer excluded readers via "
                 "the writer-preferring RW lock"),
    ])
    publish("e11_concurrency", table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e11_concurrency.json").write_text(
        json.dumps(report, indent=2, default=str) + "\n",
        encoding="utf-8")
    return report


def test_e11_report():
    report = run(quick=True)
    assert report["mixed"]["consistency_violations"] == 0
    assert all(row["qps"] > 0 for row in report["throughput"]["rows"])


if __name__ == "__main__":
    import argparse

    argument_parser = argparse.ArgumentParser(description=__doc__)
    argument_parser.add_argument("--quick", action="store_true",
                                 help="small scale for CI smoke runs")
    arguments = argument_parser.parse_args()
    result = run(quick=arguments.quick)
    print(json.dumps({
        "reader_qps_mixed": result["mixed"]["reader_qps"],
        "throughput_rows": len(result["throughput"]["rows"]),
    }, indent=2))

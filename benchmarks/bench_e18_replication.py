"""E18 — replication: read scaling, staleness lag, zero divergence.

PR 10 added WAL-shipping replication (:mod:`repro.replication`): a
primary publishes checkpoint images + WAL tail batches over the same
binary protocol, replicas bootstrap and replay into in-memory
databases, and the primary's router serves ``max_staleness_seconds``-
bounded reads from whichever replica is fresh enough.  This experiment
measures the three claims end-to-end over real sockets:

* **read scaling** — end-to-end bounded-read throughput through the
  primary with 1, 2, and 4 attached replicas, 8 concurrent clients.
  The 1→4 speedup is recorded together with ``cpu_count``: replicas
  are threads in this harness, so on a single-core container they
  time-slice one core and the run documents that honestly instead of
  asserting an impossibility (same policy as E16's worker scaling).
* **parity** — every measured read is differentially checked against
  the in-process reference engine at a quiesced position
  (read-your-writes token), item for item.  The acceptance number is
  **zero** violations.
* **lag under sustained writes** — a writer applies a continuous
  update stream while replicas tail; per-replica staleness is sampled
  live from ``repl status`` and the steady-state p95 plus the
  time-to-converge after the stream stops are reported.

Artifacts: ``benchmarks/results/e18_replication.txt`` plus
machine-readable ``benchmarks/results/BENCH_e18_replication.json``.

Run directly (``python benchmarks/bench_e18_replication.py [--quick]``)
or through pytest like the other experiments.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

if __package__ in (None, ""):  # direct `python benchmarks/bench_...py` run
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.common import RESULTS_DIR, format_table, publish
from repro.engine.database import Database
from repro.replication import Replica, ReplicationPublisher
from repro.replication.replica import RemoteSource
from repro.server import ServerClient, ServerFrontend
from repro.workload import generate_xmark
from repro.xml.serializer import serialize

QUERIES = [
    "//item/name",
    "count(//item)",
    "//person/name",
    "//open_auction[initial > 100]",
]

CLIENTS = 8
BOUND_SECONDS = 30.0


def _build_data_dir(directory: str, scale: int) -> None:
    database = Database.open(directory)
    database.load(serialize(generate_xmark(scale=scale, seed=42)),
                  uri="xmark.xml")
    database.checkpoint()
    database.close()


def _percentile(samples: list, fraction: float) -> float:
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
    return ordered[index]


def _wait_until(condition, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out after {timeout}s: {message}")


class _Cluster:
    """A primary frontend + N replica frontends over one data dir."""

    def __init__(self, data_dir: str, replica_count: int):
        self.data_dir = data_dir
        self.publisher = ReplicationPublisher(directory=data_dir)
        self.primary = ServerFrontend(
            data_dir=data_dir, workers=1, publish=True, max_queue=64,
            router_health_interval=0.05,
            db_kwargs={"result_cache_size": 0}).start()
        host, port = self.primary.address
        self.replicas = []
        self.frontends = []
        for index in range(replica_count):
            replica = Replica(RemoteSource(host, port),
                              replica_id=f"bench-r{index}",
                              poll_interval=0.005)
            frontend = ServerFrontend(workers=0,
                                      replica=replica).start()
            replica.address = "%s:%d" % frontend.address
            replica.start()
            self.replicas.append(replica)
            self.frontends.append(frontend)
        self.client = ServerClient(host, port)
        names = {r.replica_id for r in self.replicas}
        _wait_until(
            lambda: self.primary.router is not None and
            {e.name for e in self.primary.router.endpoints()} >= names,
            15.0, "router discovering replicas")

    def quiesce(self, timeout: float = 30.0):
        target = self.publisher.primary_lsn()
        for replica in self.replicas:
            _wait_until(
                lambda r=replica: r.state == "tailing"
                and r.applied_lsn >= target
                and r.freshness_ts is not None,
                timeout, f"{replica.replica_id} draining to {target}")
        if self.primary.router is not None:
            self.primary.router.check_health_once()
        return target

    def close(self) -> None:
        self.client.close()
        for frontend in self.frontends:
            frontend.stop()
        for replica in self.replicas:
            replica.stop(detach=True)
        self.primary.stop()


def _read_scaling_phase(data_dir: str, replica_count: int,
                        requests_per_client: int) -> dict:
    """Bounded-read qps through the primary's router with
    ``replica_count`` replicas attached, every answer differentially
    checked against the in-process reference."""
    reference = Database.open(data_dir, read_only=True)
    expected = {query: reference.query(query).values()
                for query in QUERIES}
    reference.close()

    cluster = _Cluster(data_dir, replica_count)
    latencies: list = []
    errors: list = []
    parity_violations = [0]
    served_by: dict = {}
    lock = threading.Lock()
    try:
        token = cluster.quiesce()
        host, port = cluster.primary.address

        def client_loop(offset: int) -> None:
            local: list = []
            with ServerClient(host, port) as client:
                for index in range(requests_per_client):
                    query = QUERIES[(offset + index) % len(QUERIES)]
                    started = time.perf_counter()
                    try:
                        response = client.query(
                            query,
                            max_staleness_seconds=BOUND_SECONDS,
                            min_lsn=list(token))
                    except Exception as exc:  # noqa: BLE001
                        with lock:
                            errors.append(repr(exc))
                        continue
                    local.append(time.perf_counter() - started)
                    node = response.get("served_by", "primary")
                    with lock:
                        served_by[node] = served_by.get(node, 0) + 1
                        if response["items"] != expected[query]:
                            parity_violations[0] += 1
            with lock:
                latencies.extend(local)

        threads = [threading.Thread(target=client_loop, args=(i,))
                   for i in range(CLIENTS)]
        wall_started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_started
    finally:
        cluster.close()

    total = CLIENTS * requests_per_client
    return {
        "replicas": replica_count,
        "clients": CLIENTS,
        "requests": total,
        "wall_seconds": wall,
        "qps": total / max(wall, 1e-9),
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "errors": len(errors),
        "parity_violations": parity_violations[0],
        "served_by": served_by,
        "replica_served_fraction": (
            sum(count for node, count in served_by.items()
                if node != "primary") / max(1, total - len(errors))),
    }


def _lag_phase(data_dir: str, write_ops: int) -> dict:
    """Per-replica staleness under a sustained write stream, and the
    time to converge once the stream stops."""
    writer = Database.open(data_dir, checkpoint_every=0, fsync=False)
    cluster = _Cluster(data_dir, 2)
    samples: list = []
    try:
        cluster.quiesce()
        write_started = time.perf_counter()
        for index in range(write_ops):
            writer.insert("/site",
                          f"<lag{index} n=\"{index}\">v</lag{index}>")
            if index % 5 == 0:
                for replica in cluster.replicas:
                    staleness = replica.staleness_seconds()
                    if staleness != float("inf"):
                        samples.append(staleness)
        write_seconds = time.perf_counter() - write_started

        converge_started = time.perf_counter()
        target = cluster.quiesce()
        converge_seconds = time.perf_counter() - converge_started
        for replica in cluster.replicas:
            assert replica.applied_lsn >= target
        # Parity after the stream: every inserted element visible.
        expected = writer.query("count(//site/*)").values()
        for frontend in cluster.frontends:
            host, port = frontend.address
            with ServerClient(host, port) as direct:
                response = direct.query("count(//site/*)",
                                        max_staleness_seconds=60.0)
                assert response["items"] == expected, \
                    "replica diverged under sustained writes"
    finally:
        cluster.close()
        writer.close()

    return {
        "write_ops": write_ops,
        "write_seconds": write_seconds,
        "writes_per_second": write_ops / max(write_seconds, 1e-9),
        "staleness_samples": len(samples),
        "staleness_p50_s": _percentile(samples, 0.50),
        "staleness_p95_s": _percentile(samples, 0.95),
        "staleness_max_s": max(samples) if samples else float("nan"),
        "converge_seconds": converge_seconds,
    }


def run(quick: bool = False) -> dict:
    scale = 8 if quick else 25
    requests_per_client = 12 if quick else 50
    write_ops = 60 if quick else 250

    with tempfile.TemporaryDirectory() as scratch:
        data_dir = str(Path(scratch) / "xmark.db")
        _build_data_dir(data_dir, scale)
        scaling = [_read_scaling_phase(data_dir, count,
                                       requests_per_client)
                   for count in (1, 2, 4)]
        lag = _lag_phase(data_dir, write_ops)

    by_count = {phase["replicas"]: phase for phase in scaling}
    speedup_1_to_4 = (by_count[4]["qps"]
                      / max(by_count[1]["qps"], 1e-9))
    cpu_count = os.cpu_count() or 1

    report = {
        "experiment": "e18_replication",
        "quick": quick,
        "scale": scale,
        "cpu_count": cpu_count,
        "bound_seconds": BOUND_SECONDS,
        "scaling": scaling,
        "speedup_1_to_4_replicas": speedup_1_to_4,
        "scaling_assertable": cpu_count >= 4,
        "total_parity_violations": sum(p["parity_violations"]
                                       for p in scaling),
        "lag": lag,
    }

    table = format_table(
        f"E18 — replication (xmark-{scale}, {CLIENTS} clients, "
        f"{cpu_count} core(s), bound {BOUND_SECONDS:g}s)",
        ["replicas", "qps", "p50 ms", "p99 ms", "replica-served",
         "parity violations"],
        [[phase["replicas"], phase["qps"], phase["p50_ms"],
          phase["p99_ms"],
          f"{phase['replica_served_fraction']:.0%}",
          phase["parity_violations"]] for phase in scaling],
        note=(f"1→4 replica speedup {speedup_1_to_4:.2f}x on "
              f"{cpu_count} core(s) — the scaling bar applies on ≥4 "
              f"cores only (replicas time-slice below that).\n"
              f"sustained writes ({lag['write_ops']} ops @ "
              f"{lag['writes_per_second']:.0f}/s): staleness p50 "
              f"{lag['staleness_p50_s'] * 1e3:.1f}ms, p95 "
              f"{lag['staleness_p95_s'] * 1e3:.1f}ms, max "
              f"{lag['staleness_max_s'] * 1e3:.1f}ms; converged "
              f"{lag['converge_seconds'] * 1e3:.0f}ms after the "
              f"stream stopped.\nzero parity violations across "
              f"every measured read."))
    publish("e18_replication", table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e18_replication.json").write_text(
        json.dumps(report, indent=2, default=str) + "\n",
        encoding="utf-8")
    return report


def test_e18_report():
    report = run(quick=True)
    assert report["total_parity_violations"] == 0
    for phase in report["scaling"]:
        assert phase["errors"] == 0
        assert phase["qps"] > 0
        assert phase["p99_ms"] == phase["p99_ms"]  # not NaN
        # Bounded reads actually land on replicas (the router routes).
        assert phase["replica_served_fraction"] > 0
    # Read scaling needs cores to scale onto; assert only when the
    # host has them, record honestly either way (E16 policy).
    if report["scaling_assertable"]:
        assert report["speedup_1_to_4_replicas"] >= 1.5
    lag = report["lag"]
    assert lag["staleness_samples"] > 0
    assert lag["converge_seconds"] < 30.0
    assert lag["staleness_p95_s"] == lag["staleness_p95_s"]  # not NaN


if __name__ == "__main__":
    import argparse

    argument_parser = argparse.ArgumentParser(description=__doc__)
    argument_parser.add_argument("--quick", action="store_true",
                                 help="small scale for CI smoke runs")
    arguments = argument_parser.parse_args()
    result = run(quick=arguments.quick)
    print(json.dumps({
        "cpu_count": result["cpu_count"],
        "qps_by_replicas": {phase["replicas"]: phase["qps"]
                            for phase in result["scaling"]},
        "speedup_1_to_4_replicas": result["speedup_1_to_4_replicas"],
        "parity_violations": result["total_parity_violations"],
        "staleness_p95_s": result["lag"]["staleness_p95_s"],
        "converge_seconds": result["lag"]["converge_seconds"],
    }, indent=2))

"""E10 — the serving layer: query caching and incremental maintenance.

Two experiments over an XMark document:

* **cold vs warm query latency** — each query is run once on a cold
  database (full compile + execute) and then repeatedly against the
  caches.  A warm hit skips lexing, parsing, backward translation,
  rewriting, strategy costing *and* execution (plan + result cache), so
  the speedup is the whole pipeline over one LRU lookup.
* **update throughput** — the same insert/delete script applied through
  (a) the incremental derived-maintenance path and (b) the seed
  behaviour (``rebuild_derived(force=True)`` after every splice).

Artifacts: the usual table under ``benchmarks/results/e10_query_cache.txt``
plus machine-readable numbers in
``benchmarks/results/BENCH_e10_query_cache.json``.

Run directly (``python benchmarks/bench_e10_query_cache.py [--quick]``)
or through pytest like the other experiments.
"""

from __future__ import annotations

import json
import statistics
import time

if __package__ in (None, ""):  # direct `python benchmarks/bench_...py` run
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.common import RESULTS_DIR, format_table, publish
from repro.engine.database import Database
from repro.workload import generate_xmark

QUERIES = [
    "//item/name",
    "/site/regions/europe/item",
    "//item[payment = 'Creditcard']",
    "//person[//watch]/name",
    "//open_auction[initial > 100]",
    "count(//item)",
]

NEW_ITEM = ('<item id="cache-bench"><name>inserted</name>'
            '<payment>Cash</payment><quantity>1</quantity></item>')


def _database(scale: int, **kwargs) -> Database:
    database = Database(**kwargs)
    database.load_tree(generate_xmark(scale=scale, seed=42),
                       uri="xmark.xml")
    return database


def _median_time(callable_, repeat: int) -> float:
    samples = []
    for _ in range(repeat):
        started = time.perf_counter()
        callable_()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def run_query_cache_experiment(scale: int, warm_repeats: int) -> dict:
    """Cold-vs-warm latency per query; differential correctness check."""
    database = _database(scale)
    rows = []
    for query in QUERIES:
        database.clear_caches()
        started = time.perf_counter()
        cold = database.query(query)
        cold_seconds = time.perf_counter() - started
        warm_seconds = _median_time(lambda: database.query(query),
                                    warm_repeats)
        warm = database.query(query)
        assert warm.stats["cache"]["plan"] == "hit", query
        assert warm.stats["cache"]["result"] == "hit", query
        assert warm.values() == cold.values(), query
        rows.append({
            "query": query,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": cold_seconds / max(warm_seconds, 1e-9),
            "results": len(cold),
        })

    # Post-update correctness: a structural change must invalidate the
    # result cache, and warm answers must match the reference evaluator.
    database.insert("/site/regions/europe", NEW_ITEM)
    stale_check = []
    for query in ("//item/name", "count(//item)"):
        engine = database.query(query)
        assert engine.stats["cache"]["result"] in ("miss", "bypass"), query
        reference = database.reference_query(query)
        expected = [node.string_value() if hasattr(node, "string_value")
                    else node for node in reference]
        assert engine.values() == expected, query
        rewarm = database.query(query)
        assert rewarm.stats["cache"]["result"] == "hit", query
        assert rewarm.values() == expected, query
        stale_check.append(query)
    return {
        "scale": scale,
        "warm_repeats": warm_repeats,
        "queries": rows,
        "median_speedup": statistics.median(r["speedup"] for r in rows),
        "post_update_differential_ok": stale_check,
        "cache_report": database.cache_report(),
    }


def run_update_experiment(scale: int, updates: int) -> dict:
    """Update latency: incremental deltas vs full derived rebuild."""

    def script(database: Database, rebuild: bool) -> float:
        samples = []
        for index in range(updates):
            started = time.perf_counter()
            database.insert("/site/regions/europe", NEW_ITEM)
            if rebuild:
                database.rebuild_derived(force=True)
            samples.append(time.perf_counter() - started)
            started = time.perf_counter()
            database.delete("/site/regions/europe/item[last()]")
            if rebuild:
                database.rebuild_derived(force=True)
            samples.append(time.perf_counter() - started)
        return statistics.median(samples)

    incremental_db = _database(scale)
    node_count = incremental_db.document().succinct.node_count
    incremental = script(incremental_db, rebuild=False)
    rebuild_db = _database(scale)
    rebuild = script(rebuild_db, rebuild=True)
    # The incremental path must leave the engine agreeing with the
    # rebuilt one on a probe query.
    probe = "//item/name"
    assert (incremental_db.query(probe).values()
            == rebuild_db.query(probe).values())
    return {
        "scale": scale,
        "document_nodes": node_count,
        "updates_timed": updates * 2,
        "incremental_median_seconds": incremental,
        "rebuild_median_seconds": rebuild,
        "update_speedup": rebuild / max(incremental, 1e-9),
    }


def run(quick: bool = False) -> dict:
    scale = 40 if quick else 120
    warm_repeats = 3 if quick else 9
    updates = 3 if quick else 10
    report = {
        "experiment": "e10_query_cache",
        "quick": quick,
        "query_cache": run_query_cache_experiment(scale, warm_repeats),
        "updates": run_update_experiment(scale, updates),
    }

    query_rows = [[row["query"], row["results"],
                   row["cold_seconds"] * 1e3, row["warm_seconds"] * 1e3,
                   row["speedup"]]
                  for row in report["query_cache"]["queries"]]
    update = report["updates"]
    table = "\n\n".join([
        format_table(
            f"E10 — cold vs warm query latency (xmark-{scale})",
            ["query", "results", "cold ms", "warm ms", "speedup"],
            query_rows,
            note="warm = plan + result cache hit; median of "
                 f"{warm_repeats} runs"),
        format_table(
            f"E10b — update latency on {update['document_nodes']} nodes",
            ["path", "median ms / update"],
            [["incremental deltas",
              update["incremental_median_seconds"] * 1e3],
             ["full derived rebuild (seed)",
              update["rebuild_median_seconds"] * 1e3],
             ["speedup", update["update_speedup"]]]),
    ])
    publish("e10_query_cache", table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e10_query_cache.json").write_text(
        json.dumps(report, indent=2, default=str) + "\n", encoding="utf-8")
    return report


def test_e10_report():
    report = run(quick=True)
    assert report["query_cache"]["median_speedup"] >= 5.0
    assert report["updates"]["update_speedup"] > 1.0


if __name__ == "__main__":
    import argparse

    argument_parser = argparse.ArgumentParser(description=__doc__)
    argument_parser.add_argument("--quick", action="store_true",
                                 help="small scale for CI smoke runs")
    arguments = argument_parser.parse_args()
    result = run(quick=arguments.quick)
    print(json.dumps({
        "median_query_speedup": result["query_cache"]["median_speedup"],
        "update_speedup": result["updates"]["update_speedup"],
    }, indent=2))

"""E3 — general (twig, //-connected) queries: partitioned NoK vs joins.

Two claims reproduced:

* partition-into-NoK + a few structural joins beats one-join-per-edge
  (the join count drops from |edges| to |cut edges|);
* TwigStack bounds intermediate results versus binary-join cascades.
"""

import pytest

from benchmarks.common import format_table, publish, timed, xmark_database
from repro.algebra.pattern_graph import compile_path
from repro.workload import TWIG_QUERIES
from repro.xpath.parser import parse_xpath

SCALE = 400
STRATEGIES = ("partitioned", "twigstack", "structural-join",
              "navigational")


def run(database, query, strategy):
    database.pages.reset()
    return database.query(query, strategy=strategy)


def test_e3_report(benchmark):
    database = xmark_database(SCALE)
    rows = []
    for name, query in TWIG_QUERIES.items():
        edges = len(compile_path(parse_xpath(query)).edges)
        for strategy in STRATEGIES:
            result = run(database, query, strategy)
            seconds = timed(lambda q=query, s=strategy:
                            run(database, q, s), repeat=2)
            rows.append([
                name, edges, strategy, len(result), seconds * 1000,
                result.io["page_reads"],
                result.stats["intermediate_results"],
                result.stats["structural_joins"],
            ])
    table = format_table(
        f"E3 — twig queries over xmark-{SCALE}",
        ["query", "edges", "strategy", "results", "time (ms)",
         "page reads", "intermediates", "joins"],
        rows,
        note="Partitioned performs one join per non-local (cut) edge; "
             "the join-per-edge baseline pays one per pattern edge; "
             "TwigStack's pushed-node counts bound its intermediates.")
    publish("e3_twig_queries", table)

    by_key = {(row[0], row[2]): row for row in rows}
    for name, query in TWIG_QUERIES.items():
        edges = len(compile_path(parse_xpath(query)).edges)
        partitioned_joins = by_key[(name, "partitioned")][7]
        join_based = by_key[(name, "structural-join")][7]
        assert partitioned_joins < join_based, name
        # Every strategy returns the same answers.
        counts = {by_key[(name, s)][3] for s in STRATEGIES}
        assert len(counts) == 1, name

    benchmark(lambda: run(database, TWIG_QUERIES["twig-2-branch"],
                          "partitioned"))


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_e3_twig_benchmark(benchmark, strategy):
    database = xmark_database(SCALE)
    query = TWIG_QUERIES["twig-mixed"]
    result = benchmark(lambda: run(database, query, strategy))
    assert len(result) >= 0

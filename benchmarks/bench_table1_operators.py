"""T1 — regenerate Table 1 (the operator set) and micro-benchmark it.

The table is produced from the *live* operator classes (signatures are
data, checked at apply time), so this bench doubles as the guarantee that
the implementation still matches the paper's operator inventory.
"""

import pytest

from benchmarks.common import publish, format_table
from repro.algebra.nested import NestedList
from repro.algebra.operators import (
    Navigate,
    SelectTag,
    SelectValue,
    StructuralJoin,
    TreePatternMatch,
    ValueJoin,
    operator_table,
)
from repro.algebra.pattern_graph import compile_path
from repro.workload import generate_xmark
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import evaluate_xpath


@pytest.fixture(scope="module")
def tree():
    document = generate_xmark(scale=150, seed=42)
    document.reindex()
    return document


@pytest.fixture(scope="module")
def all_elements(tree):
    return [node for node in tree.descendants()
            if node.kind.value == "element"]


def test_table1_regenerated(benchmark):
    rows = [[row["category"], row["operator"], row["signature"],
             row["description"]] for row in benchmark(operator_table)]
    table = format_table(
        "Table 1 — Operators (regenerated from the implementation)",
        ["category", "operator", "signature", "description"], rows,
        note="tau and gamma are the hybrid operators at the bottom/top "
             "of every plan (Section 3.2).")
    publish("table1_operators", table)
    assert len(rows) == 7


def test_sigma_s(benchmark, all_elements):
    result = benchmark(lambda: SelectTag("item").apply(all_elements))
    assert len(result) == 150


def test_sigma_v(benchmark, tree):
    prices = evaluate_xpath("//price", tree)
    result = benchmark(lambda: SelectValue(">", 100.0).apply(prices))
    assert result is not None


def test_join_s(benchmark, tree):
    items = evaluate_xpath("//item", tree)
    names = evaluate_xpath("//name", tree)
    result = benchmark(lambda: StructuralJoin("/").apply(items, names))
    assert len(result) == 150


def test_join_v(benchmark, tree):
    sellers = evaluate_xpath("//seller/@person", tree)
    buyers = evaluate_xpath("//buyer/@person", tree)
    result = benchmark(lambda: ValueJoin("=").apply(buyers, sellers))
    assert result is not None


def test_pi_s(benchmark, tree):
    items = evaluate_xpath("//item", tree)
    result = benchmark(lambda: Navigate("/", tags="name").apply(items))
    assert isinstance(result, NestedList)


def test_tau(benchmark, tree):
    pattern = compile_path(parse_xpath("/site/regions/europe/item/name"))
    matcher = TreePatternMatch()
    result = benchmark(lambda: matcher.apply(tree, pattern))
    assert len(list(result)) > 0

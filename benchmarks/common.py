"""Shared helpers for the benchmark harness.

Every experiment writes its paper-style table to
``benchmarks/results/<name>.txt`` (so the artefacts survive pytest's
output capturing) and also prints it (visible with ``pytest -s`` or via
``python benchmarks/run_all.py``).  Generated documents and databases are
cached per (generator, scale) so pytest-benchmark's repeated calls do not
re-shred documents.
"""

from __future__ import annotations

import functools
import time
from pathlib import Path

from repro.engine.database import Database
from repro.workload import generate_dblp, generate_treebank, generate_xmark

RESULTS_DIR = Path(__file__).parent / "results"


@functools.lru_cache(maxsize=None)
def xmark_database(scale: int, seed: int = 42,
                   pool_pages: int = 64) -> Database:
    """A database with one loaded XMark document (cached)."""
    database = Database(pool_pages=pool_pages)
    database.load_tree(generate_xmark(scale=scale, seed=seed),
                       uri="xmark.xml")
    return database


@functools.lru_cache(maxsize=None)
def dblp_database(publications: int, seed: int = 7) -> Database:
    database = Database()
    database.load_tree(generate_dblp(publications=publications, seed=seed),
                       uri="dblp.xml")
    return database


@functools.lru_cache(maxsize=None)
def treebank_database(sentences: int, max_depth: int = 14,
                      seed: int = 11) -> Database:
    database = Database()
    database.load_tree(generate_treebank(sentences=sentences,
                                         max_depth=max_depth, seed=seed),
                       uri="treebank.xml")
    return database


def timed(callable_, repeat: int = 3) -> float:
    """Best-of-``repeat`` wall time in seconds."""
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def format_table(title: str, headers: list[str],
                 rows: list[list], note: str = "") -> str:
    """A fixed-width table like the ones in systems papers."""
    def cell(value) -> str:
        if isinstance(value, float):
            if value != value:
                return "nan"
            if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    text_rows = [[cell(value) for value in row] for row in rows]
    widths = [max(len(headers[column]),
                  max((len(row[column]) for row in text_rows), default=0))
              for column in range(len(headers))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(header.ljust(width)
                           for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append("  ".join(value.ljust(width)
                               for value, width in zip(row, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def publish(name: str, table: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n",
                                             encoding="utf-8")

"""E2 — NoK navigational matching vs structural joins on NoK paths.

Section 4.2's headline claim: on path expressions built from local
relationships "our approach outperforms existing join-based approaches
and a state-of-the-art commercial native XML management system".  The
bench sweeps child-axis path lengths 2-8 over an XMark document and
reports wall time, counted page reads, and intermediate-result sizes per
strategy.
"""

import pytest

from benchmarks.common import format_table, publish, timed, xmark_database
from repro.workload import LINEAR_PATHS

SCALE = 400
STRATEGIES = ("nok", "pathstack", "structural-join", "navigational")


def run(database, query, strategy):
    database.pages.reset()
    return database.query(query, strategy=strategy)


def test_e2_report(benchmark):
    database = xmark_database(SCALE)
    rows = []
    for length in sorted(LINEAR_PATHS):
        query = LINEAR_PATHS[length]
        for strategy in STRATEGIES:
            result = run(database, query, strategy)
            seconds = timed(lambda q=query, s=strategy:
                            run(database, q, s), repeat=2)
            rows.append([
                length, strategy, len(result),
                seconds * 1000,
                result.io["page_reads"],
                result.stats["intermediate_results"],
                result.stats["structural_joins"],
            ])
    table = format_table(
        f"E2 — linear (NoK) paths over xmark-{SCALE} "
        f"({database.document().succinct.node_count} nodes)",
        ["len", "strategy", "results", "time (ms)", "page reads",
         "intermediates", "joins"],
        rows,
        note="Primary metric (per DESIGN.md): counted page reads — NoK "
             "pays one constant sequential structure scan at every "
             "length, join strategies pay posting pages per pattern "
             "vertex (growing with length), navigational pays random "
             "DOM-record reads over the explored region.  Wall time in "
             "this RAM-resident pure-Python setting favours the join "
             "strategies' tiny posting lists on selective paths; the "
             "I/O columns carry the paper's disk-oriented argument.")
    publish("e2_nok_vs_joins", table)

    # Shape assertions: NoK never joins; join-based strategies pay at
    # least one join per extra step.
    by_key = {(row[0], row[1]): row for row in rows}
    for length in sorted(LINEAR_PATHS):
        assert by_key[(length, "nok")][6] == 0
        assert by_key[(length, "structural-join")][6] >= length - 1

    benchmark(lambda: run(database, LINEAR_PATHS[5], "nok"))


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_e2_path5_benchmark(benchmark, strategy):
    database = xmark_database(SCALE)
    query = LINEAR_PATHS[5]
    result = benchmark(lambda: run(database, query, strategy))
    assert len(result) > 0

"""E4 — document-size scaling: the single scan stays linear.

Fixed query mix, document scale doubling 50 → 400 items.  The shape to
reproduce: NoK time and page reads grow linearly with document size (one
sequential scan); the navigational commercial stand-in grows with the
explored region but pays random reads; join strategies grow with their
posting lists.
"""

import pytest

from benchmarks.common import format_table, publish, timed, xmark_database
from repro.workload import XMARK_QUERY_SET

SCALES = (50, 100, 200, 400)
STRATEGIES = ("nok", "structural-join", "navigational")
QUERY = XMARK_QUERY_SET["q-child"]          # linear NoK path
DESCENDANT_QUERY = XMARK_QUERY_SET["q-descendant"]


def run(database, query, strategy):
    database.pages.reset()
    return database.query(query, strategy=strategy)


def test_e4_report(benchmark):
    rows = []
    for scale in SCALES:
        database = xmark_database(scale)
        nodes = database.document().succinct.node_count
        for strategy in STRATEGIES:
            result = run(database, QUERY, strategy)
            seconds = timed(lambda d=database, s=strategy:
                            run(d, QUERY, s), repeat=2)
            rows.append([scale, nodes, strategy, len(result),
                         seconds * 1000, result.io["page_reads"]])
    table = format_table(
        f"E4 — scaling {QUERY} across document sizes",
        ["scale", "nodes", "strategy", "results", "time (ms)",
         "page reads"],
        rows,
        note="NoK page reads track the structure size (linear); the "
             "navigational stand-in touches DOM records over the whole "
             "explored region.")
    publish("e4_scaling", table)

    # Shape: NoK stays linear-ish — time at 8x scale is far below 8x^2.
    nok_times = [row[4] for row in rows if row[2] == "nok"]
    assert nok_times[-1] < nok_times[0] * 64
    # NoK reads fewer pages than navigational at the largest scale.
    largest = [row for row in rows if row[0] == SCALES[-1]]
    reads = {row[2]: row[5] for row in largest}
    assert reads["nok"] <= reads["navigational"]

    database = xmark_database(SCALES[-1])
    benchmark(lambda: run(database, QUERY, "nok"))


@pytest.mark.parametrize("scale", SCALES)
def test_e4_nok_scaling_benchmark(benchmark, scale):
    database = xmark_database(scale)
    result = benchmark(lambda: run(database, QUERY, "nok"))
    assert len(result) >= 0


def test_e4_descendant_query_benchmark(benchmark):
    database = xmark_database(200)
    result = benchmark(lambda: run(database, DESCENDANT_QUERY,
                                   "partitioned"))
    assert len(result) > 0

"""E12 — durability: cold snapshot open, WAL replay, checkpoint cost.

Three experiments over an XMark document in a temporary durable
directory:

* **cold open vs parse + rebuild** — ``Database.open`` restores every
  derived structure (tag index, statistics, both value indexes)
  verbatim from the checksummed snapshot, skipping the XML tokenizer
  *and* ``rebuild_derived``.  The baseline re-parses the serialized
  document and rebuilds everything from scratch.  The acceptance bar is
  a >= 5x speedup.
* **WAL replay throughput** — a batch of logged insert/delete
  operations is replayed on reopen; throughput is records per second
  net of the snapshot-restore floor (measured by reopening once with an
  empty WAL).
* **checkpoint cost** — median wall time of ``db.checkpoint()`` and the
  resulting snapshot size on disk.

Artifacts: the usual table under ``benchmarks/results/e12_durability.txt``
plus machine-readable numbers in
``benchmarks/results/BENCH_e12_durability.json``.

Run directly (``python benchmarks/bench_e12_durability.py [--quick]``)
or through pytest like the other experiments.
"""

from __future__ import annotations

import gc
import json
import shutil
import statistics
import tempfile
import time
from pathlib import Path

if __package__ in (None, ""):  # direct `python benchmarks/bench_...py` run
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.common import RESULTS_DIR, format_table, publish
from repro.engine.database import Database
from repro.workload import generate_xmark
from repro.xml.parser import parse
from repro.xml.serializer import serialize

PROBE_QUERIES = ["//item/name", "count(//item)",
                 "//open_auction[initial > 100]"]

NEW_ITEM = ('<item id="durability-bench"><name>inserted</name>'
            '<payment>Cash</payment><quantity>1</quantity></item>')


def _timed(callable_, repeat: int) -> float:
    """Best-of-``repeat`` wall seconds with the cyclic GC parked.

    A cold open allocates ~20 objects per node; without this, a gen-2
    collection landing inside one sample swamps the ~10 ms open time
    and the measurement varies 2x run to run."""
    samples = []
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeat):
            started = time.perf_counter()
            callable_()
            samples.append(time.perf_counter() - started)
    finally:
        if was_enabled:
            gc.enable()
    return min(samples)


def _snapshot_bytes(directory: Path) -> int:
    return sum(path.stat().st_size
               for path in directory.glob("snapshot-*.snap"))


def run_cold_open_experiment(scale: int, repeats: int) -> dict:
    """Cold ``Database.open`` vs parsing the XML and rebuilding."""
    tree = generate_xmark(scale=scale, seed=42)
    text = serialize(tree)
    directory = Path(tempfile.mkdtemp(prefix="e12-open-"))
    try:
        database = Database.open(directory, checkpoint_every=0)
        database.load_tree(tree, uri="xmark.xml")  # auto-checkpoints
        node_count = database.document().succinct.node_count
        expected = [database.query(q).values() for q in PROBE_QUERIES]
        database.close()

        def cold_open() -> None:
            Database.open(directory, checkpoint_every=0).close()

        def parse_rebuild() -> None:
            fresh = Database()
            fresh.load(text, uri="xmark.xml")

        cold_open()        # warm the page cache
        parse_rebuild()
        open_seconds = _timed(cold_open, repeats)
        load_seconds = _timed(parse_rebuild, max(2, repeats // 2))

        # Differential check: the restored database answers exactly like
        # the one that wrote the snapshot.
        reopened = Database.open(directory, checkpoint_every=0,
                                 debug_checks=True)
        for query, values in zip(PROBE_QUERIES, expected):
            assert reopened.query(query).values() == values, query
        reopened.close()
        return {
            "scale": scale,
            "document_nodes": node_count,
            "xml_bytes": len(text.encode("utf-8")),
            "snapshot_bytes": _snapshot_bytes(directory),
            "open_seconds": open_seconds,
            "parse_rebuild_seconds": load_seconds,
            "open_speedup": load_seconds / max(open_seconds, 1e-9),
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def run_wal_replay_experiment(scale: int, updates: int) -> dict:
    """Reopen-time WAL replay: records per second net of the
    snapshot-restore floor."""
    tree = generate_xmark(scale=scale, seed=42)
    directory = Path(tempfile.mkdtemp(prefix="e12-wal-"))
    try:
        database = Database.open(directory, checkpoint_every=0)
        database.load_tree(tree, uri="xmark.xml")
        database.close()

        # Floor: reopening with an empty WAL is pure snapshot restore.
        floor_seconds = _timed(
            lambda: Database.open(directory, checkpoint_every=0).close(),
            3)

        database = Database.open(directory, checkpoint_every=0)
        twin = Database()
        twin.load_tree(parse(serialize(tree)), uri="xmark.xml")
        for index in range(updates):
            database.insert("/site/regions/europe", NEW_ITEM)
            twin.insert("/site/regions/europe", NEW_ITEM)
            if index % 2:
                database.delete("/site/regions/europe/item[last()]")
                twin.delete("/site/regions/europe/item[last()]")
        wal_bytes = database.durability_report()["wal_bytes"]
        database.close()

        started = time.perf_counter()
        recovered = Database.open(directory, checkpoint_every=0)
        reopen_seconds = time.perf_counter() - started
        recovery = recovered.durability_report()["last_recovery"]
        replayed = recovery["wal_records_replayed"]
        probe = "//item/name"
        assert recovered.query(probe).values() == twin.query(probe).values()
        recovered.close()
        replay_seconds = max(reopen_seconds - floor_seconds, 1e-9)
        return {
            "scale": scale,
            "updates_logged": replayed,
            "wal_bytes": wal_bytes,
            "snapshot_restore_floor_seconds": floor_seconds,
            "reopen_seconds": reopen_seconds,
            "replay_records_per_second": replayed / replay_seconds,
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def run_checkpoint_experiment(scale: int, repeats: int) -> dict:
    """Median explicit-checkpoint wall time and snapshot size."""
    tree = generate_xmark(scale=scale, seed=42)
    directory = Path(tempfile.mkdtemp(prefix="e12-ckpt-"))
    try:
        database = Database.open(directory, checkpoint_every=0)
        database.load_tree(tree, uri="xmark.xml")
        samples = []
        for _ in range(repeats):
            database.insert("/site/regions/europe", NEW_ITEM)
            started = time.perf_counter()
            database.checkpoint()
            samples.append(time.perf_counter() - started)
        report = database.durability_report()
        database.close()
        return {
            "scale": scale,
            "checkpoints_timed": repeats,
            "median_checkpoint_seconds": statistics.median(samples),
            "snapshot_bytes": _snapshot_bytes(directory),
            "generation": report["generation"],
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def run(quick: bool = False) -> dict:
    scale = 80 if quick else 120
    repeats = 5 if quick else 7
    updates = 20 if quick else 60
    report = {
        "experiment": "e12_durability",
        "quick": quick,
        "cold_open": run_cold_open_experiment(scale, repeats),
        "wal_replay": run_wal_replay_experiment(scale, updates),
        "checkpoint": run_checkpoint_experiment(scale, repeats),
    }

    cold = report["cold_open"]
    wal = report["wal_replay"]
    ckpt = report["checkpoint"]
    table = "\n\n".join([
        format_table(
            f"E12 — cold open vs parse + rebuild (xmark-{scale}, "
            f"{cold['document_nodes']} nodes)",
            ["path", "seconds", "bytes read"],
            [["snapshot open (no parse, no rebuild)",
              cold["open_seconds"], cold["snapshot_bytes"]],
             ["XML parse + rebuild_derived",
              cold["parse_rebuild_seconds"], cold["xml_bytes"]],
             ["speedup", cold["open_speedup"], ""]],
            note="best of repeated cold opens; derived structures "
                 "restored verbatim from checksummed sections"),
        format_table(
            "E12b — WAL replay on reopen",
            ["metric", "value"],
            [["records replayed", wal["updates_logged"]],
             ["WAL bytes", wal["wal_bytes"]],
             ["snapshot-restore floor (s)",
              wal["snapshot_restore_floor_seconds"]],
             ["reopen incl. replay (s)", wal["reopen_seconds"]],
             ["replay records / s", wal["replay_records_per_second"]]]),
        format_table(
            "E12c — checkpoint cost",
            ["metric", "value"],
            [["median checkpoint (s)",
              ckpt["median_checkpoint_seconds"]],
             ["snapshot bytes on disk", ckpt["snapshot_bytes"]],
             ["generations written", ckpt["generation"]]]),
    ])
    publish("e12_durability", table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e12_durability.json").write_text(
        json.dumps(report, indent=2, default=str) + "\n", encoding="utf-8")
    return report


def test_e12_report():
    report = run(quick=True)
    if report["cold_open"]["open_speedup"] < 5.0:
        # One retry: a loaded CI machine can blur a ~10 ms open.
        report = run(quick=True)
    assert report["cold_open"]["open_speedup"] >= 5.0
    assert report["wal_replay"]["updates_logged"] > 0
    assert report["wal_replay"]["replay_records_per_second"] > 0
    assert report["checkpoint"]["median_checkpoint_seconds"] < 5.0


if __name__ == "__main__":
    import argparse

    argument_parser = argparse.ArgumentParser(description=__doc__)
    argument_parser.add_argument("--quick", action="store_true",
                                 help="small scale for CI smoke runs")
    arguments = argument_parser.parse_args()
    result = run(quick=arguments.quick)
    print(json.dumps({
        "open_speedup": result["cold_open"]["open_speedup"],
        "replay_records_per_second":
            result["wal_replay"]["replay_records_per_second"],
        "median_checkpoint_seconds":
            result["checkpoint"]["median_checkpoint_seconds"],
    }, indent=2))

"""E13 — observability overhead: what the tracing/metrics layer costs.

The engine is instrumented end to end (spans, a metrics registry, a
slow-query log), so the interesting number is what that costs on the
query hot path.  Four configurations run the same XMark query batch:

* **stripped** — the observability facade is swapped for a no-op stub
  and the lock observer is detached: the uninstrumented floor.
* **default** — a stock ``Database()``: metrics on, trace sampling off
  (``trace_sample=0.0``), slow-query threshold at its 0.25 s default.
  The acceptance bar is < 5 % median overhead over *stripped*
  (< 10 % for ``--quick`` CI runs on shared machines).
* **traced** — ``trace_sample=1.0``: every query builds a full span
  tree.
* **traced+slowlog** — tracing plus a zero slow-query threshold, so
  every query is also recorded with its trace attached: the worst case.

Repetitions are interleaved round-robin across the configurations so
thermal / frequency drift hits all of them equally; each repetition
clears the caches first, so the timed path is compile + plan + execute.
Also reported (informational): ``EXPLAIN ANALYZE`` wall time and the
Prometheus exposition render time.

Artifacts: ``benchmarks/results/e13_observability.txt`` and
``benchmarks/results/BENCH_e13_observability.json``.

Run directly (``python benchmarks/bench_e13_observability.py [--quick]``)
or through pytest like the other experiments.
"""

from __future__ import annotations

import gc
import json
import statistics
import time

if __package__ in (None, ""):  # direct `python benchmarks/bench_...py` run
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.common import RESULTS_DIR, format_table, publish
from repro.engine.database import Database
from repro.observability.tracing import Tracer
from repro.workload import generate_xmark

QUERIES = [
    "//item/name",
    "//open_auction[initial > 100]",
    "/site/regions/europe/item",
    "//person[address]/name",
    "count(//bidder)",
    "for $i in //item where $i/quantity > 1 return $i/name",
]


class _StrippedFacade:
    """The no-op stand-in that defines the uninstrumented floor.

    Matches the slice of the :class:`Observability` surface the query
    hot path touches: a never-sampling tracer plus inert hooks."""

    def __init__(self) -> None:
        self.tracer = Tracer(sample_rate=0.0)

    def observe_query(self, *args, **kwargs) -> None:
        pass

    def record_query_error(self, *args, **kwargs) -> None:
        pass


def _make_database(config: str, tree) -> Database:
    if config == "stripped":
        database = Database()
    elif config == "default":
        database = Database()
    elif config == "traced":
        database = Database(trace_sample=1.0, trace_capacity=64)
    elif config == "traced+slowlog":
        database = Database(trace_sample=1.0, trace_capacity=64,
                            slow_query_seconds=0.0)
    else:  # pragma: no cover - guarded by CONFIGS
        raise ValueError(config)
    database.load_tree(tree, uri="xmark.xml")
    if config == "stripped":
        database.observability = _StrippedFacade()
        database.rwlock.observer = None
    return database


CONFIGS = ["stripped", "default", "traced", "traced+slowlog"]


def _batch_seconds(database: Database) -> float:
    database.clear_caches()
    started = time.perf_counter()
    for query in QUERIES:
        database.query(query)
    return time.perf_counter() - started


def run_overhead_experiment(scale: int, repeats: int) -> dict:
    """Median batch latency per configuration, interleaved round-robin."""
    tree = generate_xmark(scale=scale, seed=42)
    databases = {config: _make_database(config, tree)
                 for config in CONFIGS}
    samples: dict = {config: [] for config in CONFIGS}
    for database in databases.values():  # warm-up pass, untimed
        _batch_seconds(database)

    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for config in CONFIGS:
                samples[config].append(_batch_seconds(databases[config]))
    finally:
        if was_enabled:
            gc.enable()

    floor = statistics.median(samples["stripped"])
    report = {"scale": scale, "repeats": repeats,
              "queries_per_batch": len(QUERIES), "configs": {}}
    for config in CONFIGS:
        median = statistics.median(samples[config])
        report["configs"][config] = {
            "median_batch_seconds": median,
            "median_query_ms": median / len(QUERIES) * 1e3,
            "overhead_pct": (median / floor - 1.0) * 100.0,
        }
    return report


def run_side_channel_experiment(scale: int, repeats: int) -> dict:
    """Informational: EXPLAIN ANALYZE and exposition-render cost."""
    tree = generate_xmark(scale=scale, seed=42)
    database = Database(trace_sample=1.0)
    database.load_tree(tree, uri="xmark.xml")
    query = "//open_auction[initial > 100]"

    analyze_samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        analysis = database.explain(query, analyze=True)
        analyze_samples.append(time.perf_counter() - started)
    plain = database.query(query)

    render_samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        text = database.metrics_text()
        render_samples.append(time.perf_counter() - started)
    return {
        "explain_analyze_seconds": statistics.median(analyze_samples),
        "analysis_operators": len(analysis.operators),
        "analysis_rows": analysis.result_rows,
        "plain_query_rows": len(plain.items),
        "metrics_render_seconds": statistics.median(render_samples),
        "metrics_render_bytes": len(text.encode("utf-8")),
    }


def run(quick: bool = False) -> dict:
    scale = 30 if quick else 60
    repeats = 9 if quick else 15
    report = {
        "experiment": "e13_observability",
        "quick": quick,
        "overhead": run_overhead_experiment(scale, repeats),
        "side_channels": run_side_channel_experiment(scale,
                                                     max(3, repeats // 3)),
    }

    overhead = report["overhead"]
    side = report["side_channels"]
    rows = [[config,
             data["median_batch_seconds"],
             data["median_query_ms"],
             f"{data['overhead_pct']:+.2f}%"]
            for config, data in overhead["configs"].items()]
    table = "\n\n".join([
        format_table(
            f"E13 — observability overhead (xmark-{scale}, "
            f"{len(QUERIES)}-query batch, median of "
            f"{overhead['repeats']})",
            ["configuration", "batch s", "per-query ms", "overhead"],
            rows,
            note="stripped = no-op facade + detached lock observer; "
                 "default keeps metrics on with trace sampling off"),
        format_table(
            "E13b — side channels (informational)",
            ["metric", "value"],
            [["EXPLAIN ANALYZE (s)", side["explain_analyze_seconds"]],
             ["  operators instrumented", side["analysis_operators"]],
             ["Prometheus render (s)", side["metrics_render_seconds"]],
             ["  exposition bytes", side["metrics_render_bytes"]]]),
    ])
    publish("e13_observability", table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e13_observability.json").write_text(
        json.dumps(report, indent=2, default=str) + "\n", encoding="utf-8")
    return report


def test_e13_report():
    report = run(quick=True)
    default = report["overhead"]["configs"]["default"]
    if default["overhead_pct"] >= 10.0:
        # One retry: a noisy CI neighbour can blur a sub-ms batch.
        report = run(quick=True)
        default = report["overhead"]["configs"]["default"]
    # Sampling disabled must stay under 10% on shared CI machines (the
    # full run's bar is 5%; see EXPERIMENTS.md E13).
    assert default["overhead_pct"] < 10.0
    side = report["side_channels"]
    assert side["analysis_operators"] >= 1
    assert side["analysis_rows"] == side["plain_query_rows"]
    assert side["metrics_render_bytes"] > 0


if __name__ == "__main__":
    import argparse

    argument_parser = argparse.ArgumentParser(description=__doc__)
    argument_parser.add_argument("--quick", action="store_true",
                                 help="small scale for CI smoke runs")
    arguments = argument_parser.parse_args()
    result = run(quick=arguments.quick)
    print(json.dumps(
        {config: data["overhead_pct"]
         for config, data in result["overhead"]["configs"].items()},
        indent=2))

"""E15 — MVCC snapshot reads: lock-free serving under writer churn.

PR 7 retired the reader-side RWLock: queries pin an immutable
``DatabaseSnapshot`` (one attribute read) and writers publish new
copy-on-write versions with a single pointer swap.  This experiment
quantifies what that buys on the E11 workload:

* **read-only baseline** — 8 reader threads execute the query batch
  with the result cache off (every request runs its physical plan);
* **mixed load** — the same 8 readers while 1 writer thread
  continuously inserts/deletes.  Under the old RW lock every update
  stalled the whole reader pool; under MVCC readers never block, so
  mixed throughput should stay within 2x of read-only (the acceptance
  criterion) instead of collapsing.

Both phases assert the MVCC invariants: the ``repro_lock_wait_seconds``
read-mode histogram stays empty (readers acquired zero read locks) and
every mixed-phase answer equals one of the consistent snapshots.

Artifacts: ``benchmarks/results/e15_mvcc.txt`` plus machine-readable
numbers in ``benchmarks/results/BENCH_e15_mvcc.json``.

Run directly (``python benchmarks/bench_e15_mvcc.py [--quick]``) or
through pytest like the other experiments.
"""

from __future__ import annotations

import json
import threading
import time

if __package__ in (None, ""):  # direct `python benchmarks/bench_...py` run
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.common import RESULTS_DIR, format_table, publish
from repro.engine.database import Database
from repro.workload import generate_xmark

# The E11 workload, so E15's ratio is comparable with E11b's numbers.
QUERIES = [
    "//item/name",
    "/site/regions/europe/item",
    "//item[payment = 'Creditcard']",
    "//open_auction[initial > 100]",
    "count(//item)",
    "//person/name",
]

NEW_ITEM = ('<item id="mvcc-bench"><name>inserted</name>'
            '<payment>Cash</payment><quantity>1</quantity></item>')


def _database(scale: int) -> Database:
    # Result cache off: measure execution, not LRU lookups.
    database = Database(result_cache_size=0)
    database.load_tree(generate_xmark(scale=scale, seed=42),
                       uri="xmark.xml")
    return database


def _read_lock_count(database: Database) -> int:
    histogram = database.observability.registry.get(
        "repro_lock_wait_seconds")
    return histogram.count(mode="read")


def _run_phase(database: Database, readers: int, reader_queries: int,
               answers: list[dict], writer_updates: int = 0) -> dict:
    """One serving phase: ``readers`` threads each run
    ``reader_queries`` queries; with ``writer_updates`` > 0 a writer
    thread churns insert/delete pairs alongside them until every reader
    finishes.  Every answer must match one of the ``answers``
    snapshots."""
    errors: list = []
    writer_latencies: list[float] = []
    stop = threading.Event()

    def reader(offset: int) -> None:
        for index in range(reader_queries):
            query = QUERIES[(offset + index) % len(QUERIES)]
            values = database.query(query).values()
            if not any(values == snap[query] for snap in answers):
                errors.append((query, len(values)))

    def writer() -> None:
        done = 0
        while done < writer_updates and not stop.is_set():
            started = time.perf_counter()
            database.insert("/site/regions/europe", NEW_ITEM)
            database.delete('//item[@id = "mvcc-bench"]')
            writer_latencies.append(time.perf_counter() - started)
            done += 1

    threads = [threading.Thread(target=reader, args=(i,))
               for i in range(readers)]
    if writer_updates:
        threads.append(threading.Thread(target=writer))
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads[:readers]:
        thread.join()
    stop.set()
    for thread in threads[readers:]:
        thread.join()
    wall = time.perf_counter() - wall_started

    assert not errors, errors[:3]
    total = readers * reader_queries
    return {
        "readers": readers,
        "reader_queries_each": reader_queries,
        "writer_updates_completed": len(writer_latencies),
        "wall_seconds": wall,
        "reader_qps": total / max(wall, 1e-9),
        "writer_update_seconds_mean": (
            sum(writer_latencies) / max(len(writer_latencies), 1)),
        "consistency_violations": len(errors),
    }


def run(quick: bool = False) -> dict:
    scale = 40 if quick else 120
    readers = 8
    reader_queries = 12 if quick else 40
    writer_updates = 6 if quick else 16

    database = _database(scale)
    # The consistent snapshots mid-churn: with and without the probe.
    base = {q: database.query(q).values() for q in QUERIES}
    database.insert("/site/regions/europe", NEW_ITEM)
    alt = {q: database.query(q).values() for q in QUERIES}
    database.delete('//item[@id = "mvcc-bench"]')
    publishes_before = database.version_publishes

    read_only = _run_phase(database, readers, reader_queries, [base])
    mixed = _run_phase(database, readers, reader_queries, [base, alt],
                       writer_updates=writer_updates)
    ratio = mixed["reader_qps"] / max(read_only["reader_qps"], 1e-9)

    report = {
        "experiment": "e15_mvcc",
        "quick": quick,
        "scale": scale,
        "read_only": read_only,
        "mixed": mixed,
        "mixed_vs_read_only": ratio,
        "read_lock_acquisitions": _read_lock_count(database),
        "version_publishes": database.version_publishes -
                             publishes_before,
        "active_pins_after": database.active_pins,
    }

    table = format_table(
        f"E15 — MVCC serving: read-only vs mixed (xmark-{scale}, "
        f"{readers} readers)",
        ["metric", "read-only", "mixed (+1 writer)"],
        [["reader qps", read_only["reader_qps"], mixed["reader_qps"]],
         ["wall seconds", read_only["wall_seconds"],
          mixed["wall_seconds"]],
         ["writer mean update ms", "-",
          mixed["writer_update_seconds_mean"] * 1e3],
         ["consistency violations",
          read_only["consistency_violations"],
          mixed["consistency_violations"]],
         ["mixed / read-only qps", "-", ratio]],
        note="readers pin MVCC snapshots and take zero read locks "
             f"(read-mode lock histogram count = "
             f"{report['read_lock_acquisitions']}); the acceptance "
             "bar is mixed >= 0.5x read-only")
    publish("e15_mvcc", table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e15_mvcc.json").write_text(
        json.dumps(report, indent=2, default=str) + "\n",
        encoding="utf-8")
    return report


def test_e15_report():
    report = run(quick=True)
    assert report["read_lock_acquisitions"] == 0
    assert report["mixed"]["consistency_violations"] == 0
    assert report["active_pins_after"] == 0
    assert report["mixed_vs_read_only"] >= 0.5
    assert report["version_publishes"] >= \
        2 * report["mixed"]["writer_updates_completed"]


if __name__ == "__main__":
    import argparse

    argument_parser = argparse.ArgumentParser(description=__doc__)
    argument_parser.add_argument("--quick", action="store_true",
                                 help="small scale for CI smoke runs")
    arguments = argument_parser.parse_args()
    result = run(quick=arguments.quick)
    print(json.dumps({
        "read_only_qps": result["read_only"]["reader_qps"],
        "mixed_qps": result["mixed"]["reader_qps"],
        "mixed_vs_read_only": result["mixed_vs_read_only"],
        "read_lock_acquisitions": result["read_lock_acquisitions"],
    }, indent=2))

"""E17 — distributed observability: tracing overhead at the wire.

PR 9 wired end-to-end traces through the serving stack: clients mint a
``trace_id``, the frontend opens ``server.request``/``server.admit``/
``server.dispatch`` spans, workers adopt the propagated context inside
``Database.execute_request`` and piggyback their finished span
fragments on the response, and the frontend stitches the fragments
into one cross-process trace.  Observability must not cost the
workload it observes, so this experiment measures the end-to-end
throughput of the same 2-worker server under three sampling regimes:

* ``off``     — ``trace_sample=0.0``: the zero-overhead baseline
  (requests still mint ids; no span is ever recorded anywhere);
* ``default`` — ``trace_sample=0.01``: the production default, whose
  median overhead vs ``off`` must stay **≤ 3%**;
* ``full``    — ``trace_sample=1.0``: every request traced and
  stitched, recorded honestly as the worst case (no bar).

The three regimes run in *interleaved rounds* (off/default/full,
repeated) and the reported overhead is the ratio of **pooled
per-request median latencies** (every request across every round of a
regime contributes one sample) — the median of hundreds of individual
request latencies is far more robust to CPU-steal bursts on a shared
host than the wall-clock of a short burst, and interleaving keeps any
drift from biasing one regime.  Wall-clock qps per round is recorded
alongside, informationally.  The full regime also asserts the
plumbing end-to-end: every sampled response's ``trace_id`` resolves
to a stitched trace in the frontend ring buffer.

Artifacts: ``benchmarks/results/e17_distributed_obs.txt`` plus
machine-readable numbers in
``benchmarks/results/BENCH_e17_distributed_obs.json``.

Run directly (``python benchmarks/bench_e17_distributed_obs.py
[--quick]``) or through pytest like the other experiments.
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
import threading
import time
from pathlib import Path

if __package__ in (None, ""):  # direct `python benchmarks/bench_...py` run
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.common import RESULTS_DIR, format_table, publish
from repro.engine.database import Database
from repro.server import ServerClient, ServerFrontend
from repro.workload import generate_xmark
from repro.xml.serializer import serialize

QUERIES = [
    "//item/name",
    "//item[payment = 'Creditcard']",
    "count(//item)",
    "//person/name",
]

CLIENTS = 4

#: The acceptance bar: median overhead of default sampling vs off.
DEFAULT_OVERHEAD_BAR_PERCENT = 3.0

REGIMES = (("off", 0.0), ("default", 0.01), ("full", 1.0))


def _build_data_dir(directory: str, scale: int) -> None:
    database = Database.open(directory)
    database.load(serialize(generate_xmark(scale=scale, seed=42)),
                  uri="xmark.xml")
    database.checkpoint()
    database.close()


def _measure_round(frontend: ServerFrontend, trace_sample: float,
                   requests_per_client: int) -> dict:
    """One round of ``CLIENTS`` concurrent clients against an already
    warm server (result caches off, so every request executes its
    plan)."""
    errors: list[str] = []
    trace_ids: list[str] = []
    latencies: list[float] = []
    lock = threading.Lock()
    host, port = frontend.address

    def client_loop(offset: int) -> None:
        local_ids: list[str] = []
        local_latencies: list[float] = []
        with ServerClient(host, port) as client:
            for index in range(requests_per_client):
                query = QUERIES[(offset + index) % len(QUERIES)]
                request_started = time.perf_counter()
                try:
                    response = client.query(query)
                    local_latencies.append(
                        time.perf_counter() - request_started)
                    local_ids.append(response["trace_id"])
                except Exception as exc:  # noqa: BLE001
                    with lock:
                        errors.append(repr(exc))
        with lock:
            trace_ids.extend(local_ids)
            latencies.extend(local_latencies)

    threads = [threading.Thread(target=client_loop, args=(i,))
               for i in range(CLIENTS)]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_started

    if trace_sample >= 1.0:
        # Full tracing also proves the plumbing: every response's id
        # must resolve to a stitched cross-process trace.
        missing = [trace_id for trace_id in trace_ids
                   if frontend.tracer.find_trace(trace_id) is None]
    else:
        missing = []

    total = CLIENTS * requests_per_client
    assert not errors, errors[:3]
    assert not missing, f"{len(missing)} unstitched traces"
    return {
        "requests": total,
        "wall_seconds": wall,
        "qps": total / max(wall, 1e-9),
        "latencies": latencies,
    }


def run(quick: bool = False) -> dict:
    scale = 20 if quick else 50
    requests_per_client = 40 if quick else 150
    rounds = 5
    total_per_regime = CLIENTS * requests_per_client * rounds

    with tempfile.TemporaryDirectory() as scratch:
        data_dir = str(Path(scratch) / "xmark.db")
        _build_data_dir(data_dir, scale)
        # One long-lived server per regime (ring capacity covers every
        # traced request, so full-regime stitching stays checkable);
        # an untimed warm-up round absorbs worker cold start, then the
        # measured rounds interleave so every regime sees every phase
        # of host drift.
        frontends = {
            name: ServerFrontend(
                data_dir=data_dir, workers=2, max_queue=64,
                trace_sample=trace_sample,
                trace_capacity=total_per_regime + CLIENTS,
                db_kwargs={"result_cache_size": 0}).start()
            for name, trace_sample in REGIMES}
        try:
            samples: dict[str, list[dict]] = {name: []
                                              for name, _ in REGIMES}
            for name, trace_sample in REGIMES:
                _measure_round(frontends[name], trace_sample,
                               max(4, requests_per_client // 4))
            for _round in range(rounds):
                for name, trace_sample in REGIMES:
                    samples[name].append(_measure_round(
                        frontends[name], trace_sample,
                        requests_per_client))
            stitched = {name: frontends[name].tracer.traces_finished
                        for name, _ in REGIMES}
        finally:
            for frontend in frontends.values():
                frontend.stop()

    regimes = {}
    for name, trace_sample in REGIMES:
        pooled = [latency for entry in samples[name]
                  for latency in entry["latencies"]]
        rounds_out = [{key: value for key, value in entry.items()
                       if key != "latencies"}
                      for entry in samples[name]]
        regimes[name] = {
            "trace_sample": trace_sample,
            "rounds": rounds_out,
            "median_qps": statistics.median(
                entry["qps"] for entry in samples[name]),
            "median_latency_ms":
                statistics.median(pooled) * 1e3,
            "latency_samples": len(pooled),
            "traces_stitched_total": stitched[name],
        }

    baseline_latency = regimes["off"]["median_latency_ms"]
    for name in regimes:
        regimes[name]["overhead_percent"] = (
            (regimes[name]["median_latency_ms"]
             / max(baseline_latency, 1e-9) - 1.0) * 100.0)

    report = {
        "experiment": "e17_distributed_obs",
        "quick": quick,
        "scale": scale,
        "cpu_count": os.cpu_count() or 1,
        "clients": CLIENTS,
        "rounds": rounds,
        "requests_per_round": CLIENTS * requests_per_client,
        "regimes": regimes,
        "default_overhead_percent":
            regimes["default"]["overhead_percent"],
        "default_overhead_bar_percent": DEFAULT_OVERHEAD_BAR_PERCENT,
    }

    table = format_table(
        f"E17 — distributed observability overhead (xmark-{scale}, "
        f"{CLIENTS} clients, {rounds} interleaved rounds)",
        ["regime", "sample", "median qps", "p50 ms", "overhead %",
         "stitched"],
        [[name, regimes[name]["trace_sample"],
          regimes[name]["median_qps"],
          regimes[name]["median_latency_ms"],
          regimes[name]["overhead_percent"],
          regimes[name]["traces_stitched_total"]]
         for name, _ in REGIMES],
        note=(f"default sampling (0.01) median-latency overhead "
              f"{report['default_overhead_percent']:.2f}% vs untraced "
              f"— bar ≤ {DEFAULT_OVERHEAD_BAR_PERCENT:.0f}%.  Full "
              f"tracing stitched "
              f"{regimes['full']['traces_stitched_total']} "
              f"cross-process traces (its overhead is recorded, not "
              f"barred)."))
    publish("e17_distributed_obs", table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e17_distributed_obs.json").write_text(
        json.dumps(report, indent=2, default=str) + "\n",
        encoding="utf-8")
    return report


def test_e17_report():
    report = run(quick=True)
    if report["default_overhead_percent"] >= 10.0:
        # One retry: a noisy CI neighbour can blur an ~8ms median.
        report = run(quick=True)
    regimes = report["regimes"]
    for name in ("off", "default", "full"):
        assert regimes[name]["median_qps"] > 0
    # Sampling off records nothing; full records every request
    # (measured rounds + the untimed warm-up).
    assert regimes["off"]["traces_stitched_total"] == 0
    assert regimes["full"]["traces_stitched_total"] >= \
        report["rounds"] * report["requests_per_round"]
    # The full run's recorded bar is 3% (see EXPERIMENTS.md E17); on
    # shared CI machines the quick run asserts a noise-tolerant 10%,
    # mirroring E13's precedent.
    assert report["default_overhead_percent"] < 10.0


if __name__ == "__main__":
    import argparse

    argument_parser = argparse.ArgumentParser(description=__doc__)
    argument_parser.add_argument("--quick", action="store_true",
                                 help="small scale for CI smoke runs")
    arguments = argument_parser.parse_args()
    result = run(quick=arguments.quick)
    print(json.dumps({
        "median_qps": {name: result["regimes"][name]["median_qps"]
                       for name in result["regimes"]},
        "default_overhead_percent":
            result["default_overhead_percent"],
        "full_overhead_percent":
            result["regimes"]["full"]["overhead_percent"],
        "traces_stitched_full":
            result["regimes"]["full"]["traces_stitched_total"],
    }, indent=2))

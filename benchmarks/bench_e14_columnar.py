"""E14 — vectorized columnar execution vs node-at-a-time matching.

ROADMAP item 3: the interpreter overhead of per-node Python dispatch is
the dominant cost of every τ in this RAM-resident setting, so the
columnar path (:mod:`repro.physical.columnar`) evaluates the E2 linear
paths and the E3 twig queries as batch ``bisect``/set kernels over the
pre/end/level/parent label columns instead.

The bench sweeps three XMark document scales; at each scale every query
runs through the node-at-a-time navigational matcher (the paper's
commercial stand-in — one Python loop iteration per visited node), the
holistic TwigStack join (informational), and the columnar kernels.
**Every columnar result list is compared item-for-item against the
navigational result** — the mismatch count must be zero — and the
headline number is the median navigational/columnar speedup across the
whole suite (acceptance bar: >= 5x).

Artifacts: ``benchmarks/results/e14_columnar.txt`` and
``benchmarks/results/BENCH_e14_columnar.json``.

Run directly (``python benchmarks/bench_e14_columnar.py [--quick]``) or
through pytest like the other experiments.
"""

from __future__ import annotations

import json
import statistics

if __package__ in (None, ""):  # direct `python benchmarks/bench_...py` run
    import pathlib
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_root / "src"))
    sys.path.insert(0, str(_root))

from benchmarks.common import RESULTS_DIR, format_table, publish, timed
from repro.engine.database import Database
from repro.algebra.pattern_graph import compile_path
from repro.physical.columnar import ColumnarMatcher, columnar_eligible
from repro.physical.navigational import NavigationalMatcher
from repro.physical.twigstack import TwigStackJoin
from repro.workload import LINEAR_PATHS, TWIG_QUERIES, generate_xmark
from repro.xpath.parser import parse_xpath

SCALES_FULL = (40, 120, 400)
SCALES_QUICK = (10, 30, 60)


def workload() -> list[tuple[str, str]]:
    """(label, query): the E2 linear-path suite + the E3 twig suite."""
    queries = [(f"path-{length}", LINEAR_PATHS[length])
               for length in sorted(LINEAR_PATHS)]
    queries.extend(sorted(TWIG_QUERIES.items()))
    return queries


def _database(scale: int) -> Database:
    # No result cache: repeated timed runs must hit the kernels, not a
    # memoized answer.
    database = Database(result_cache_size=0, pool_pages=64)
    database.load_tree(generate_xmark(scale=scale, seed=42),
                       uri="xmark.xml")
    return database


def run_scale(scale: int, repeat: int) -> dict:
    database = _database(scale)
    runtime = database.document().runtime
    runtime.columnar_view()  # build the columns once, outside the timers
    per_query = []
    mismatches = 0
    for label, query in workload():
        pattern = compile_path(parse_xpath(query))
        assert columnar_eligible(pattern), label
        nav_result = NavigationalMatcher(pattern).run(runtime)
        col_result = ColumnarMatcher(pattern).run(runtime)
        if col_result != nav_result:  # item-for-item, order-sensitive
            mismatches += 1
        nav_seconds = timed(
            lambda p=pattern: NavigationalMatcher(p).run(runtime),
            repeat=repeat)
        twig_seconds = timed(
            lambda p=pattern: TwigStackJoin(p).run(runtime),
            repeat=repeat)
        col_seconds = timed(
            lambda p=pattern: ColumnarMatcher(p).run(runtime),
            repeat=repeat)
        per_query.append({
            "label": label,
            "query": query,
            "rows": len(col_result),
            "navigational_ms": nav_seconds * 1e3,
            "twigstack_ms": twig_seconds * 1e3,
            "columnar_ms": col_seconds * 1e3,
            "speedup_vs_navigational": nav_seconds / col_seconds
            if col_seconds else float("inf"),
            "speedup_vs_twigstack": twig_seconds / col_seconds
            if col_seconds else float("inf"),
            "match": col_result == nav_result,
        })
    return {
        "scale": scale,
        "nodes": database.document().succinct.node_count,
        "column_bytes": runtime.columnar_view().size_bytes(),
        "mismatches": mismatches,
        "median_speedup_vs_navigational": statistics.median(
            q["speedup_vs_navigational"] for q in per_query),
        "median_speedup_vs_twigstack": statistics.median(
            q["speedup_vs_twigstack"] for q in per_query),
        "queries": per_query,
    }


def run(quick: bool = False) -> dict:
    scales = SCALES_QUICK if quick else SCALES_FULL
    repeat = 2 if quick else 3
    report = {
        "experiment": "e14_columnar",
        "quick": quick,
        "scales": [run_scale(scale, repeat) for scale in scales],
    }
    all_speedups = [q["speedup_vs_navigational"]
                    for scale in report["scales"]
                    for q in scale["queries"]]
    report["median_speedup"] = statistics.median(all_speedups)
    report["total_mismatches"] = sum(scale["mismatches"]
                                     for scale in report["scales"])

    rows = []
    for scale_report in report["scales"]:
        for q in scale_report["queries"]:
            rows.append([
                scale_report["scale"], q["label"], q["rows"],
                q["navigational_ms"], q["twigstack_ms"],
                q["columnar_ms"],
                f"{q['speedup_vs_navigational']:.1f}x",
                "ok" if q["match"] else "MISMATCH",
            ])
    summary_rows = [[scale_report["scale"], scale_report["nodes"],
                     scale_report["column_bytes"],
                     f"{scale_report['median_speedup_vs_navigational']:.1f}x",
                     f"{scale_report['median_speedup_vs_twigstack']:.1f}x",
                     scale_report["mismatches"]]
                    for scale_report in report["scales"]]
    table = "\n\n".join([
        format_table(
            f"E14 — columnar vs node-at-a-time (E2 paths + E3 twigs, "
            f"best of {repeat})",
            ["scale", "query", "rows", "nav ms", "twig ms",
             "columnar ms", "speedup", "parity"],
            rows,
            note="speedup = navigational / columnar wall time; parity "
                 "compares the result lists item for item."),
        format_table(
            f"E14 summary — median speedup "
            f"{report['median_speedup']:.1f}x, "
            f"{report['total_mismatches']} mismatches",
            ["scale", "nodes", "column bytes", "vs navigational",
             "vs twigstack", "mismatches"],
            summary_rows),
    ])
    publish("e14_columnar", table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e14_columnar.json").write_text(
        json.dumps(report, indent=2, default=str) + "\n", encoding="utf-8")
    return report


def test_e14_report():
    report = run(quick=True)
    # Acceptance: item-for-item parity with the reference strategies and
    # >= 5x median speedup over node-at-a-time execution.
    assert report["total_mismatches"] == 0
    assert report["median_speedup"] >= 5.0


if __name__ == "__main__":
    import argparse

    argument_parser = argparse.ArgumentParser(description=__doc__)
    argument_parser.add_argument("--quick", action="store_true",
                                 help="small scales for CI smoke runs")
    arguments = argument_parser.parse_args()
    result = run(quick=arguments.quick)
    print(json.dumps({"median_speedup": result["median_speedup"],
                      "total_mismatches": result["total_mismatches"]},
                     indent=2))

"""Legacy setup shim: this environment is offline and has no `wheel`
package, so editable installs must go through the legacy setuptools path
(`setup.py develop`) instead of PEP 517."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'XML Query Processing and Optimization' "
        "(EDBT 2004): logical XQuery algebra, succinct XML storage, "
        "NoK pattern matching, and join-based baselines"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-server = repro.server.cli:main",
        ],
    },
)

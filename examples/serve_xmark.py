#!/usr/bin/env python3
"""Serve an XMark database over the network.

Builds a durable data directory (one checkpoint generation of a
generated XMark document), starts the multi-process query server on it,
and talks to it through both transports the server multiplexes on one
port:

* the length-prefixed binary protocol (:class:`repro.server.ServerClient`
  — pooled connections, typed errors, retry-on-reconnect), and
* plain HTTP/JSON (``POST /query``, ``GET /metrics``).

By default this runs a short scripted demo and exits.  Pass ``--serve``
to keep the server in the foreground (stop with Ctrl-C / SIGTERM — the
drain finishes in-flight queries first)::

    python examples/serve_xmark.py                  # scripted demo
    python examples/serve_xmark.py --serve          # long-running server
    python examples/serve_xmark.py --workers 4      # bigger pool
"""

import argparse
import json
import sys
import tempfile
import urllib.request
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.database import Database
from repro.server import ServerClient, ServerFrontend
from repro.workload import generate_xmark
from repro.xml.serializer import serialize

DEMO_QUERIES = [
    "//item/name",
    "//item[payment = 'Creditcard']",
    "count(//item)",
    "//person/name",
]


def build_data_dir(directory: str, scale: int) -> None:
    """One checkpoint generation of xmark data for workers to open."""
    database = Database.open(directory)
    database.load(serialize(generate_xmark(scale=scale, seed=42)),
                  uri="xmark.xml")
    database.checkpoint()
    database.close()


def demo(frontend: ServerFrontend) -> None:
    host, port = frontend.address
    with ServerClient(host, port) as client:
        print(f"ping: {client.ping()}")
        for query in DEMO_QUERIES:
            response = client.query(query)
            print(f"  {query!r:40s} -> {response['count']:4d} items "
                  f"via {response['strategy']} "
                  f"({response['elapsed_seconds'] * 1e3:.1f} ms)")
        print(f"explain: {client.explain('//item/name')!r:.70s}")

    # The same port speaks HTTP/JSON: POST a query, scrape /metrics.
    body = json.dumps({"text": "count(//item)"}).encode()
    request = urllib.request.Request(
        f"http://{host}:{port}/query", data=body,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as reply:
        print(f"HTTP /query: {json.loads(reply.read())['items']}")
    with urllib.request.urlopen(f"http://{host}:{port}/metrics") as reply:
        exposition = reply.read().decode()
    served = [line for line in exposition.splitlines()
              if line.startswith("repro_server_requests_total")]
    print("HTTP /metrics (server families):")
    for line in served[:6]:
        print(f"  {line}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--data-dir", default=None,
                        help="durable directory (default: a tempdir)")
    parser.add_argument("--scale", type=int, default=40,
                        help="xmark scale factor (default 40)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (default 2)")
    parser.add_argument("--port", type=int, default=0,
                        help="bind port (default: pick a free one)")
    parser.add_argument("--serve", action="store_true",
                        help="stay in the foreground after the demo")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as scratch:
        data_dir = args.data_dir or str(Path(scratch) / "xmark.db")
        print(f"building xmark-{args.scale} data dir at {data_dir} ...")
        build_data_dir(data_dir, args.scale)

        frontend = ServerFrontend(port=args.port, data_dir=data_dir,
                                  workers=args.workers)
        with frontend:
            host, port = frontend.address
            print(f"serving on {host}:{port} with {args.workers} "
                  f"worker process(es)\n")
            demo(frontend)
            if args.serve:
                print("\nserving until SIGTERM/Ctrl-C ...")
                frontend.serve_forever()
            else:
                report = frontend.drain()
                print(f"\ndrained cleanly: {report}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""A live product catalogue: updates and queries interleaved.

Demonstrates the paper's update story (Section 4.2: "each update only
affects a local sub-string") through the engine: subtree insertions and
deletions keep the succinct store, the interval baseline, both content
indexes, and the statistics aligned — and the per-update metrics show the
splice-vs-relabel asymmetry of experiment E7 on every operation.

Run with::

    python examples/live_catalog.py
"""

from repro import Database

SEED_CATALOG = """
<catalog>
  <product id="p1"><name>kettle</name><price>35</price>
    <stock>12</stock></product>
  <product id="p2"><name>toaster</name><price>42</price>
    <stock>3</stock></product>
  <product id="p3"><name>blender</name><price>89</price>
    <stock>0</stock></product>
</catalog>
"""


def show(db, title):
    print(f"\n== {title} ==")
    for product in db.query("/catalog/product"):
        identifier = product.get_attribute("id")
        name = product.find("name").string_value()
        price = product.find("price").string_value()
        print(f"  {identifier}: {name:10s} ${price}")


def main() -> None:
    db = Database()
    db.load(SEED_CATALOG, uri="catalog.xml")
    show(db, "initial catalogue")

    print("\n-- new product arrives --")
    metrics = db.insert(
        "/catalog",
        '<product id="p4"><name>grinder</name><price>55</price>'
        "<stock>7</stock></product>")
    print(f"   succinct splice moved "
          f"{metrics['succinct']['shifted_entries']} entries; "
          f"interval relabelled {metrics['interval']['relabelled']} "
          f"records")
    show(db, "after insertion")

    print("\n-- discontinue the out-of-stock blender --")
    victims = db.query("/catalog/product[stock = 0]")
    assert len(victims) == 1
    identifier = victims.items[0].get_attribute("id")
    metrics = db.delete(f"/catalog/product[@id = '{identifier}']")
    print(f"   removed {metrics['succinct']['removed_nodes']} nodes")
    show(db, "after deletion")

    print("\n== queries keep using the freshest indexes ==")
    result = db.query("//product[price > 40]/name", strategy="index-scan")
    print(f"  over $40 (index-scan): {result.values()}")
    result = db.query("//product[name = 'grinder']", strategy="index-scan")
    print(f"  exact name (index-scan): "
          f"{[n.get_attribute('id') for n in result]}")
    count = db.query("count(//product)")
    print(f"  product count: {int(count.items[0])}")

    print("\n== reference check ==")
    for query in ("//product/@id", "//name", "count(//stock)"):
        engine = db.query(query).values()
        reference = [n.string_value() if hasattr(n, "string_value") else n
                     for n in db.reference_query(query)]
        status = "OK" if engine == reference else "DIFF"
        print(f"  [{status}] {query}")


if __name__ == "__main__":
    main()

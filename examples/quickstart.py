#!/usr/bin/env python3
"""Quickstart: load a document, query it, inspect how it ran.

Run with::

    python examples/quickstart.py
"""

from repro import Database

BIB = """
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>Economics of Technology and Content</title>
    <editor><last>Gerbarg</last><first>Darcy</first></editor>
    <price>129.95</price>
  </book>
</bib>
"""


def main() -> None:
    db = Database()
    db.load(BIB, uri="bib.xml")

    print("== XPath: titles of books over $50 ==")
    result = db.query("/bib/book[price > 50]/title")
    for title in result:
        print(" ", title.string_value())
    print(f"  (strategy={result.strategy}, "
          f"page_reads={result.io['page_reads']})")

    print("\n== XQuery FLWOR: books by descending price ==")
    result = db.query(
        'for $b in doc("bib.xml")/bib/book '
        "order by $b/price descending "
        "return $b/title")
    for title in result:
        print(" ", title.string_value())

    print("\n== XQuery construction (the paper's Fig. 1 query) ==")
    result = db.query(
        '<results> {'
        ' for $b in document("bib.xml")/bib/book'
        ' let $t := $b/title'
        ' let $a := $b/author'
        ' return <result> {$t} {$a} </result>'
        ' } </results>')
    print(result.serialize(indent="  "))

    print("\n== Forcing execution strategies ==")
    for strategy in ("nok", "structural-join", "twigstack",
                     "navigational"):
        result = db.query("//book[author]/title", strategy=strategy)
        print(f"  {strategy:16s} -> {len(result)} results, "
              f"stats={result.stats}")

    print("\n== EXPLAIN ==")
    print(db.explain("//book[price > 100]/title"))


if __name__ == "__main__":
    main()

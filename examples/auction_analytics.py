#!/usr/bin/env python3
"""Auction-site analytics over an XMark-style document.

The scenario the paper's introduction motivates: a large, heterogeneous
e-commerce document queried with both navigational paths and value
predicates.  The example generates a deterministic auction site, runs an
analytics mix through different execution strategies, and prints the
optimizer's choices next to the measured I/O.

Run with::

    python examples/auction_analytics.py [scale]
"""

import sys

from repro import Database
from repro.workload import generate_xmark


def main(scale: int = 300) -> None:
    print(f"Generating XMark-style auction site (scale={scale})...")
    db = Database()
    document = db.load_tree(generate_xmark(scale=scale, seed=42),
                            uri="auctions.xml")
    print(f"  {document.succinct.node_count} nodes, "
          f"{len(document.statistics.tag_counts)} distinct tags\n")

    print("== Catalogue size per region ==")
    for region in ("africa", "asia", "europe", "namerica"):
        count = db.query(f"count(/site/regions/{region}/item)")
        print(f"  {region:10s} {int(count.items[0]):4d} items")

    print("\n== Expensive open auctions (current > 150) ==")
    result = db.query("//open_auction[current > 150]/itemref/@item")
    print(f"  {len(result)} auctions; first few: "
          f"{[a.value for a in result.items[:5]]}")

    print("\n== People watching auctions, with income ==")
    watchers = db.query(
        'for $p in doc("auctions.xml")//person[watches] '
        "where $p/profile/@income > 80000 "
        "order by $p/name "
        "return <watcher income='{$p/profile/@income}'>"
        "{$p/name/text()}</watcher>")
    for watcher in watchers.items[:5]:
        print(f"  {watcher.string_value():24s} "
              f"income={watcher.get_attribute('income')}")
    print(f"  ... {len(watchers)} total")

    print("\n== Cash items and their mailbox depth (twig query) ==")
    twig = "//item[payment = 'Cash'][mailbox/mail]/name"
    for strategy in ("auto", "nok", "twigstack", "structural-join",
                     "navigational"):
        db.pages.reset()
        result = db.query(twig, strategy=strategy)
        print(f"  {strategy:16s} {len(result):4d} results  "
              f"reads={result.io['page_reads']:5d}  "
              f"joins={result.stats['structural_joins']:3d}  "
              f"intermediates={result.stats['intermediate_results']:6d}")

    print("\n== The optimizer's view ==")
    print(db.explain(twig))

    print("\n== Cross-document style report (construction) ==")
    report = db.query(
        "<top_sellers>{"
        ' for $a in doc("auctions.xml")//closed_auction'
        " where $a/price > 300"
        " return <sale item='{$a/itemref/@item}'>"
        "{$a/price/text()}</sale>"
        "}</top_sellers>")
    print(f"  {len(list(report.items[0].child_elements()))} big sales")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)

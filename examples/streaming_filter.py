#!/usr/bin/env python3
"""Streaming path filtering — no tree, no storage, one pass.

Section 4.2: "pre-order of the tree nodes coincides with the streaming
XML element arrival order.  So the path query evaluation algorithm ...
can also be used in the streaming context."  This example runs the NoK
matcher directly over parser events of a large generated document and
verifies the matches against the stored evaluation, then reports the
memory profile (the matcher keeps only the open path).

Run with::

    python examples/streaming_filter.py [scale]
"""

import sys

from repro import Database, parse_xpath, serialize
from repro.algebra.pattern_graph import compile_path
from repro.physical.nok import NoKMatcher
from repro.workload import generate_xmark
from repro.xml.events import events_from_tree

QUERIES = [
    "/site/regions/europe/item/name",
    "/site/people/person[profile]/name",
    "/site/open_auctions/open_auction[initial > 100]/current",
    "/site/regions/asia/item/@id",
]


def main(scale: int = 400) -> None:
    print(f"Generating auction stream (scale={scale})...")
    tree = generate_xmark(scale=scale, seed=9)
    tree.reindex()
    print(f"  {tree.size} nodes will stream\n")

    db = Database()
    db.load_tree(tree, uri="auctions.xml")

    for query in QUERIES:
        pattern = compile_path(parse_xpath(query))
        output = pattern.output_vertices()[0].vertex_id

        # Streaming: consume events only (replayed from the tree here;
        # repro.xml.parser.iterparse(text) streams real text the same way).
        matcher = NoKMatcher(pattern)
        bindings = matcher.run_stream(events_from_tree(tree))
        stream_ids = sorted({b[output] for b in bindings if output in b})

        # Stored: the same pattern over the succinct storage.
        stored = NoKMatcher(pattern)
        stored_bindings = stored.run(db.document().runtime)
        stored_ids = sorted({b[output] for b in stored_bindings
                             if output in b})

        status = "OK " if stream_ids == stored_ids else "DIFF"
        print(f"[{status}] {query}")
        print(f"       {len(stream_ids)} matches in one pass over "
              f"{matcher.stats.nodes_visited} streamed nodes")

    print("\nSample matches for the last query:")
    document = db.document()
    for preorder in stored_ids[:5]:
        print(" ", serialize(document.node_for(preorder)))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)

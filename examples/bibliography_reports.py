#!/usr/bin/env python3
"""Bibliography reports over a DBLP-style document.

The bibliographic scenario of the paper's Fig. 1: shred a large flat
bibliography, then build structured reports with XQuery construction —
including the paper's exact query shape (``<results>{ for ... return
<result>{$t}{$a}</result> }</results>``) and its extracted SchemaTree.

Run with::

    python examples/bibliography_reports.py [publications]
"""

import sys

from repro import Database, parse_xquery
from repro.algebra.schema_tree import extract_schema_tree
from repro.workload import generate_dblp


def main(publications: int = 400) -> None:
    print(f"Generating DBLP-style bibliography "
          f"({publications} publications)...")
    db = Database()
    doc = db.load_tree(generate_dblp(publications=publications, seed=7),
                       uri="dblp.xml")
    print(f"  {doc.succinct.node_count} nodes\n")

    print("== Publications per venue ==")
    venues = db.query("distinct-values(//journal | //booktitle)")
    for venue in sorted(venues.items):
        count = db.query(
            f"count(//*[journal = '{venue}' or booktitle = '{venue}'])")
        print(f"  {venue:8s} {int(count.items[0]):4d}")

    print("\n== The paper's Fig. 1 query over this bibliography ==")
    fig1 = (
        '<results> {'
        ' for $b in document("dblp.xml")/dblp/article'
        ' let $t := $b/title'
        ' let $a := $b/author'
        ' return <result> {$t} {$a} </result>'
        ' } </results>')
    result = db.query(fig1)
    entries = list(result.items[0].child_elements("result"))
    print(f"  built <results> with {len(entries)} <result> entries")

    print("\n== Its extracted SchemaTree (the paper's Fig. 1b) ==")
    print(extract_schema_tree(parse_xquery(fig1)).describe())

    print("\n== Authors with the most recent papers ==")
    recent = db.query(
        'for $p in doc("dblp.xml")/dblp/* '
        "where $p/year >= 2003 "
        "order by $p/year descending "
        "return $p/author[1]")
    print(f"  {len(recent)} first-authors since 2003; sample:")
    for author in recent.items[:5]:
        print(f"    {author.string_value()}")

    print("\n== Value-index lookups vs scans ==")
    year_query = "//article[year = '2001']"
    for strategy in ("index-scan", "nok", "structural-join"):
        db.pages.reset()
        result = db.query(year_query, strategy=strategy)
        print(f"  {strategy:16s} {len(result):4d} articles  "
              f"reads={result.io['page_reads']:4d}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)

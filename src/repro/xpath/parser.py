"""Recursive-descent parser for the XPath fragment.

Grammar (precedence low to high)::

    Expr     := OrExpr
    OrExpr   := AndExpr ("or" AndExpr)*
    AndExpr  := CmpExpr ("and" CmpExpr)*
    CmpExpr  := AddExpr (("=" | "!=" | "<" | "<=" | ">" | ">=") AddExpr)?
    AddExpr  := MulExpr (("+" | "-") MulExpr)*
    MulExpr  := Unary (("*" | "div" | "mod") Unary)*
    Unary    := "-" Unary | Union
    Union    := Path ("|" Path)*
    Path     := LocationPath | Primary
    Primary  := "(" Expr ")" | Literal | Number | FunctionCall

The classic ``*`` ambiguity (wildcard vs multiply) resolves by grammar
position: at an operand position ``*`` is a node test, after a complete
operand it is the operator.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import QuerySyntaxError
from repro.xpath import ast
from repro.xpath.lexer import (
    EOF,
    ERROR,
    NAME,
    NUMBER,
    STRING,
    SYMBOL,
    Token,
    tokenize,
)

__all__ = ["parse_xpath", "XPathParser"]

_AXES = {axis.value: axis for axis in ast.Axis}
_KIND_TESTS = {"text", "comment", "node"}


class XPathParser:
    """Parses a token list into an :mod:`repro.xpath.ast` tree.

    The XQuery parser subclasses the expression machinery, so everything
    that might be extended is a method.
    """

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def at_symbol(self, *values: str) -> bool:
        token = self.current
        return token.kind == SYMBOL and token.value in values

    def at_name(self, *values: str) -> bool:
        token = self.current
        return token.kind == NAME and token.value in values

    def advance(self) -> Token:
        token = self.current
        if token.kind == ERROR:
            raise QuerySyntaxError("unscannable input (expression context)",
                                   position=token.position)
        if token.kind != EOF:
            self.index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.current
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value if value is not None else kind
            raise QuerySyntaxError(
                f"expected {wanted!r}, found {token.value or token.kind!r}",
                position=token.position)
        return self.advance()

    def error(self, message: str) -> QuerySyntaxError:
        return QuerySyntaxError(message, position=self.current.position)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.at_name("or"):
            self.advance()
            left = ast.BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_comparison()
        while self.at_name("and"):
            self.advance()
            left = ast.BinaryOp("and", left, self.parse_comparison())
        return left

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        if self.at_symbol("=", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            return ast.BinaryOp(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.at_symbol("+", "-"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.at_symbol("*") or self.at_name("div", "mod"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> ast.Expr:
        if self.at_symbol("-"):
            self.advance()
            return ast.UnaryOp("-", self.parse_unary())
        return self.parse_union()

    def parse_union(self) -> ast.Expr:
        left = self.parse_path_expr()
        while self.at_symbol("|"):
            self.advance()
            left = ast.Union_(left, self.parse_path_expr())
        return left

    # -- paths --------------------------------------------------------------------

    def parse_path_expr(self) -> ast.Expr:
        if self.at_symbol("/", "//"):
            return self.parse_location_path()
        if self.starts_step():
            return self.parse_location_path()
        return self.parse_primary()

    def starts_step(self) -> bool:
        """Does the current token begin a location step?"""
        token = self.current
        if token.kind == SYMBOL and token.value in ("@", ".", "..", "*"):
            return True
        if token.kind != NAME:
            return False
        # A name starts a step unless it is a function call that is not a
        # kind test (count(...), not a text()).
        nxt = self.tokens[self.index + 1]
        if nxt.kind == SYMBOL and nxt.value == "(":
            return token.value in _KIND_TESTS
        return True

    def parse_location_path(self) -> ast.LocationPath:
        steps: list[ast.Step] = []
        absolute = False
        if self.at_symbol("/"):
            absolute = True
            self.advance()
            if not self.starts_step():
                # Bare "/" selects the document node.
                return ast.LocationPath(steps=(), absolute=True)
        elif self.at_symbol("//"):
            absolute = True
            self.advance()
            steps.append(ast.Step(ast.Axis.DESCENDANT_OR_SELF,
                                  ast.KindTest("node")))
        steps.append(self.parse_step())
        while self.at_symbol("/", "//"):
            if self.advance().value == "//":
                steps.append(ast.Step(ast.Axis.DESCENDANT_OR_SELF,
                                      ast.KindTest("node")))
            steps.append(self.parse_step())
        return ast.LocationPath(steps=tuple(steps), absolute=absolute)

    def parse_step(self) -> ast.Step:
        if self.at_symbol("."):
            self.advance()
            return ast.Step(ast.Axis.SELF, ast.KindTest("node"),
                            self.parse_predicates())
        if self.at_symbol(".."):
            self.advance()
            return ast.Step(ast.Axis.PARENT, ast.KindTest("node"),
                            self.parse_predicates())
        axis = ast.Axis.CHILD
        if self.at_symbol("@"):
            self.advance()
            axis = ast.Axis.ATTRIBUTE
        elif (self.current.kind == NAME
              and self.tokens[self.index + 1].kind == SYMBOL
              and self.tokens[self.index + 1].value == "::"):
            name = self.advance().value
            self.advance()
            if name not in _AXES:
                raise self.error(f"unknown axis {name!r}")
            axis = _AXES[name]
        test = self.parse_node_test(axis)
        return ast.Step(axis, test, self.parse_predicates())

    def parse_node_test(self, axis: ast.Axis) -> ast.NodeTest:
        if self.at_symbol("*"):
            self.advance()
            return ast.WildcardTest()
        token = self.expect(NAME)
        if (token.value in _KIND_TESTS and self.at_symbol("(")):
            self.advance()
            self.expect(SYMBOL, ")")
            return ast.KindTest(token.value)
        return ast.NameTest(token.value)

    def parse_predicates(self) -> tuple[ast.Expr, ...]:
        predicates: list[ast.Expr] = []
        while self.at_symbol("["):
            self.advance()
            predicates.append(self.parse_expr())
            self.expect(SYMBOL, "]")
        return tuple(predicates)

    # -- primaries ------------------------------------------------------------------

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.kind == NUMBER:
            self.advance()
            return ast.Literal(float(token.value))
        if token.kind == SYMBOL and token.value == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect(SYMBOL, ")")
            return inner
        if token.kind == NAME:
            nxt = self.tokens[self.index + 1]
            if nxt.kind == SYMBOL and nxt.value == "(":
                return self.parse_function_call()
        raise self.error(f"unexpected token {token.value or token.kind!r}")

    def parse_function_call(self) -> ast.FunctionCall:
        name = self.expect(NAME).value
        self.expect(SYMBOL, "(")
        args: list[ast.Expr] = []
        if not self.at_symbol(")"):
            args.append(self.parse_expr())
            while self.at_symbol(","):
                self.advance()
                args.append(self.parse_expr())
        self.expect(SYMBOL, ")")
        return ast.FunctionCall(name, tuple(args))


def parse_xpath(text: str) -> ast.Expr:
    """Parse an XPath expression.  Raises
    :class:`~repro.errors.QuerySyntaxError` on bad input or trailing
    garbage."""
    parser = XPathParser(tokenize(text))
    expr = parser.parse_expr()
    if parser.current.kind != EOF:
        raise QuerySyntaxError(
            f"unexpected trailing input {parser.current.value!r}",
            position=parser.current.position)
    return expr

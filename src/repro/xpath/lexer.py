"""Tokenizer shared by the XPath and XQuery parsers.

A hand-written scanner producing a flat token list; the parsers do
recursive descent over it.  Token kinds:

``NAME``      qualified names (``bib``, ``ns:tag``; ``-`` and ``.`` inside)
``NUMBER``    integer or decimal literals
``STRING``    single- or double-quoted strings (doubled quote escapes)
``SYMBOL``    punctuation and operators (``//``, ``::``, ``!=``, ...)
``VARIABLE``  ``$name`` (used by XQuery)
``EOF``       end of input
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuerySyntaxError

__all__ = ["Token", "tokenize", "tokenize_tolerant", "NAME", "NUMBER",
           "STRING", "SYMBOL", "VARIABLE", "EOF", "ERROR"]

NAME = "NAME"
NUMBER = "NUMBER"
STRING = "STRING"
SYMBOL = "SYMBOL"
VARIABLE = "VARIABLE"
EOF = "EOF"
ERROR = "ERROR"

# Longest-match-first multi-character symbols.
_SYMBOLS = [
    "//", "::", "..", ":=", "!=", "<=", ">=", "<<", ">>",
    "/", "(", ")", "[", "]", "@", ".", "*", "|", ",", "=", "<", ">",
    "+", "-", "{", "}", ";",
]

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789-.")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    kind: str
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    """Scan ``text`` into tokens.  Raises
    :class:`~repro.errors.QuerySyntaxError` on unscannable input."""
    tokens: list[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        if ch == "(" and text.startswith("(:", pos):
            # XQuery comment (: ... :), nestable.
            depth = 1
            scan = pos + 2
            while scan < length and depth:
                if text.startswith("(:", scan):
                    depth += 1
                    scan += 2
                elif text.startswith(":)", scan):
                    depth -= 1
                    scan += 2
                else:
                    scan += 1
            if depth:
                raise QuerySyntaxError("unterminated comment", position=pos)
            pos = scan
            continue
        if ch in "'\"":
            end = pos + 1
            parts: list[str] = []
            while True:
                nxt = text.find(ch, end)
                if nxt < 0:
                    raise QuerySyntaxError("unterminated string literal",
                                           position=pos)
                if text.startswith(ch * 2, nxt):
                    parts.append(text[end:nxt] + ch)
                    end = nxt + 2
                    continue
                parts.append(text[end:nxt])
                break
            tokens.append(Token(STRING, "".join(parts), pos))
            pos = nxt + 1
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < length
                            and text[pos + 1].isdigit()):
            end = pos
            seen_dot = False
            while end < length and (text[end].isdigit()
                                    or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # ".." is a symbol, not part of a number.
                    if text.startswith("..", end):
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token(NUMBER, text[pos:end], pos))
            pos = end
            continue
        if ch == "$":
            end = pos + 1
            if end >= length or text[end] not in _NAME_START:
                raise QuerySyntaxError("expected variable name after '$'",
                                       position=pos)
            while end < length and text[end] in _NAME_CHARS:
                end += 1
            tokens.append(Token(VARIABLE, text[pos + 1:end], pos))
            pos = end
            continue
        if ch in _NAME_START:
            end = pos + 1
            while end < length and text[end] in _NAME_CHARS:
                end += 1
            # Names may be qualified: ns:local (but not ns::axis).
            if (end < length and text[end] == ":"
                    and not text.startswith("::", end)
                    and end + 1 < length and text[end + 1] in _NAME_START):
                end += 2
                while end < length and text[end] in _NAME_CHARS:
                    end += 1
            tokens.append(Token(NAME, text[pos:end], pos))
            pos = end
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, pos):
                tokens.append(Token(SYMBOL, symbol, pos))
                pos += len(symbol)
                break
        else:
            raise QuerySyntaxError(f"unexpected character {ch!r}",
                                   position=pos)
    tokens.append(Token(EOF, "", length))
    return tokens


def tokenize_tolerant(text: str, base: int = 0) -> list[Token]:
    """Tokenize as far as possible.

    XQuery constructor *content* is character-structured, not
    token-structured, so eagerly tokenizing a whole query can fail inside a
    constructor (``<t>count: {...}</t>``).  This variant keeps the cleanly
    scanned prefix and ends it with an ``ERROR`` sentinel; the XQuery
    parser re-scans constructors at character level and re-tokenizes the
    tail afterwards.  ``base`` shifts all positions (for tail re-scans).
    """
    try:
        tokens = tokenize(text)
    except QuerySyntaxError as err:
        position = err.position if err.position is not None else 0
        tokens = tokenize(text[:position])[:-1]
        tokens.append(Token(ERROR, "", position))
        tokens.append(Token(EOF, "", position))
    if base:
        tokens = [Token(t.kind, t.value, t.position + base) for t in tokens]
    return tokens

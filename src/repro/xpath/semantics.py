"""Reference evaluator: direct XPath-1.0-style semantics over model trees.

This is the specification the whole engine is tested against.  It is a
plain node-at-a-time interpreter over :mod:`repro.xml.model` — no indexes,
no storage, no cleverness — so its results are easy to trust.  The
differential test-suite checks every physical strategy (NoK, structural
joins, TwigStack, navigational) against it on randomized documents and
queries.

Value domain (XPath 1.0): node-sets (lists in document order, no
duplicates), booleans, numbers (Python floats), and strings.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Union

from repro.errors import ExecutionError, QueryTypeError
from repro.xml import model
from repro.xpath import ast

__all__ = ["evaluate_xpath", "Context", "document_order_key",
           "effective_boolean_value", "sequence_boolean", "string_value",
           "number_value"]

Value = Union[list, bool, float, str]


class Context:
    """Evaluation context: the context node, its position/size within the
    current node list (1-based, for positional predicates), and variable
    bindings (used when XQuery embeds path expressions)."""

    __slots__ = ("node", "position", "size", "variables")

    def __init__(self, node: model.Node, position: int = 1, size: int = 1,
                 variables: Optional[dict] = None):
        self.node = node
        self.position = position
        self.size = size
        self.variables = variables if variables is not None else {}

    def with_node(self, node: model.Node, position: int,
                  size: int) -> "Context":
        return Context(node, position, size, self.variables)


def document_order_key(node: model.Node) -> tuple:
    """Total order over nodes including attributes (which the tree model
    does not pre-index): attributes sort directly after their owner."""
    if isinstance(node, model.Attribute):
        owner = node.parent
        index = 0
        if owner is not None:
            for index, attribute in enumerate(owner.attributes()):
                if attribute is node:
                    break
            return (owner.pre, 1, index)
        return (-1, 1, 0)
    return (node.pre, 0, 0)


def _unique_in_document_order(nodes: Iterable[model.Node]) -> list:
    seen: set[int] = set()
    unique = []
    for node in nodes:
        if node.node_id not in seen:
            seen.add(node.node_id)
            unique.append(node)
    try:
        unique.sort(key=document_order_key)
    except ValueError:
        # Detached fragments have no document-wide pre ranks; order by a
        # one-off walk of each fragment instead.
        order = _fragment_order(unique)
        unique.sort(key=lambda node: order[node.node_id])
    return unique


def _fragment_order(nodes: list) -> dict[int, tuple[int, int]]:
    """``node_id -> (fragment index, pre-order position)`` for nodes in
    detached fragments (and attached ones, uniformly)."""
    roots: list[model.Node] = []
    root_ids: set[int] = set()
    for node in nodes:
        top = node.parent if isinstance(node, model.Attribute) else node
        while top is not None and top.parent is not None:
            top = top.parent
        if top is not None and top.node_id not in root_ids:
            root_ids.add(top.node_id)
            roots.append(top)
    order: dict[int, tuple[int, int]] = {}
    for fragment_index, root in enumerate(roots):
        position = 0
        for walked in root.descendant_or_self():
            order[walked.node_id] = (fragment_index, position)
            position += 1
            if isinstance(walked, model.Element):
                for attribute in walked.attributes():
                    order[attribute.node_id] = (fragment_index, position)
                    position += 1
    return order


# -- type conversions -----------------------------------------------------------


def string_value(value: Value) -> str:
    """XPath string() conversion.  Sequences convert through their first
    item, which may be a node or (in XQuery) an atomic value."""
    if isinstance(value, list):
        if not value:
            return ""
        first = value[0]
        if isinstance(first, model.Node):
            return first.string_value()
        return string_value(first)
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value == int(value):
            return str(int(value))
        return repr(value)
    return value


def number_value(value: Value) -> float:
    """XPath number() conversion (NaN on failure)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    text = string_value(value).strip()
    try:
        return float(text)
    except ValueError:
        return float("nan")


def effective_boolean_value(value: Value) -> bool:
    """XPath boolean() conversion."""
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value == value and value != 0.0
    return bool(value)


def sequence_boolean(sequence) -> bool:
    """XQuery effective boolean value of a *sequence*: empty is false, a
    sequence starting with a node is true, a singleton atomic converts,
    anything longer is true.  (Plain ``effective_boolean_value`` treats
    any non-empty list as true, which is wrong for ``[False]`` results
    wrapped by sequence-returning evaluators.)"""
    if not isinstance(sequence, list):
        return effective_boolean_value(sequence)
    if not sequence:
        return False
    first = sequence[0]
    if isinstance(first, model.Node):
        return True
    if len(sequence) == 1:
        return effective_boolean_value(first)
    return True


# -- axes -------------------------------------------------------------------------


def _axis_nodes(node: model.Node, axis: ast.Axis) -> Iterable[model.Node]:
    if axis is ast.Axis.CHILD:
        return node.children()
    if axis is ast.Axis.DESCENDANT:
        return node.descendants()
    if axis is ast.Axis.DESCENDANT_OR_SELF:
        return node.descendant_or_self()
    if axis is ast.Axis.SELF:
        return iter((node,))
    if axis is ast.Axis.PARENT:
        return iter(()) if node.parent is None else iter((node.parent,))
    if axis is ast.Axis.ATTRIBUTE:
        if isinstance(node, model.Element):
            return node.attributes()
        return iter(())
    if axis is ast.Axis.FOLLOWING_SIBLING:
        return node.following_siblings()
    raise ExecutionError(f"unsupported axis {axis}")  # pragma: no cover


def _test_matches(test: ast.NodeTest, node: model.Node,
                  axis: ast.Axis) -> bool:
    if isinstance(test, ast.KindTest):
        if test.kind == "node":
            return True
        if test.kind == "text":
            return isinstance(node, model.Text)
        if test.kind == "comment":
            return isinstance(node, model.Comment)
        raise ExecutionError(f"unknown kind test {test.kind}")
    principal_attribute = axis is ast.Axis.ATTRIBUTE
    if principal_attribute:
        if not isinstance(node, model.Attribute):
            return False
        if isinstance(test, ast.WildcardTest):
            return True
        return node.attr_name == test.name
    if not isinstance(node, model.Element):
        return False
    if isinstance(test, ast.WildcardTest):
        return True
    return node.tag == test.name


# -- the evaluator -------------------------------------------------------------------


class XPathEvaluator:
    """Evaluates AST expressions; subclassed by the XQuery interpreter."""

    def evaluate(self, expr: ast.Expr, context: Context) -> Value:
        if isinstance(expr, ast.LocationPath):
            return self.evaluate_path(expr, context)
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ContextItem):
            return [context.node]
        if isinstance(expr, ast.BinaryOp):
            return self.evaluate_binary(expr, context)
        if isinstance(expr, ast.UnaryOp):
            return -number_value(self.evaluate(expr.operand, context))
        if isinstance(expr, ast.FunctionCall):
            return self.evaluate_function(expr, context)
        if isinstance(expr, ast.Union_):
            left = self.evaluate(expr.left, context)
            right = self.evaluate(expr.right, context)
            if not isinstance(left, list) or not isinstance(right, list):
                raise QueryTypeError("union requires node-set operands")
            return _unique_in_document_order(left + right)
        raise ExecutionError(f"cannot evaluate {expr!r}")

    # -- paths ----------------------------------------------------------------

    def evaluate_path(self, path: ast.LocationPath,
                      context: Context) -> list:
        if path.absolute:
            document = context.node.document
            if document is None:
                raise ExecutionError(
                    "absolute path evaluated on a detached node")
            nodes: list = [document]
        else:
            nodes = [context.node]
        for step in path.steps:
            nodes = self.evaluate_step(step, nodes, context)
        return nodes

    def evaluate_step(self, step: ast.Step, nodes: list,
                      context: Context) -> list:
        gathered: list = []
        for node in nodes:
            candidates = [candidate
                          for candidate in _axis_nodes(node, step.axis)
                          if _test_matches(step.test, candidate, step.axis)]
            for predicate in step.predicates:
                candidates = self.filter_predicate(predicate, candidates,
                                                   context)
            gathered.extend(candidates)
        return _unique_in_document_order(gathered)

    def filter_predicate(self, predicate: ast.Expr, candidates: list,
                         context: Context) -> list:
        kept = []
        size = len(candidates)
        for position, candidate in enumerate(candidates, start=1):
            inner = context.with_node(candidate, position, size)
            value = self.evaluate(predicate, inner)
            if isinstance(value, float):
                # Numeric predicate selects by position: [2] == [position()=2]
                if value == position:
                    kept.append(candidate)
            elif effective_boolean_value(value):
                kept.append(candidate)
        return kept

    # -- operators ---------------------------------------------------------------

    def evaluate_binary(self, expr: ast.BinaryOp, context: Context) -> Value:
        op = expr.op
        if op == "and":
            return (effective_boolean_value(self.evaluate(expr.left, context))
                    and effective_boolean_value(
                        self.evaluate(expr.right, context)))
        if op == "or":
            return (effective_boolean_value(self.evaluate(expr.left, context))
                    or effective_boolean_value(
                        self.evaluate(expr.right, context)))
        left = self.evaluate(expr.left, context)
        right = self.evaluate(expr.right, context)
        if op in ("=", "!=", "<", "<=", ">", ">="):
            return _compare(op, left, right)
        lnum, rnum = number_value(left), number_value(right)
        if op == "+":
            return lnum + rnum
        if op == "-":
            return lnum - rnum
        if op == "*":
            return lnum * rnum
        if op == "div":
            if rnum == 0:
                return float("inf") if lnum > 0 else (
                    float("-inf") if lnum < 0 else float("nan"))
            return lnum / rnum
        if op == "mod":
            if rnum == 0:
                return float("nan")
            import math
            return math.fmod(lnum, rnum)
        raise ExecutionError(f"unknown operator {op}")

    # -- functions ------------------------------------------------------------------

    def evaluate_function(self, call: ast.FunctionCall,
                          context: Context) -> Value:
        handler = _FUNCTIONS.get(call.name)
        if handler is None:
            raise QueryTypeError(f"unknown function {call.name}()")
        args = [self.evaluate(arg, context) for arg in call.args]
        return handler(self, context, args, call)


def _node_set(value: Value, name: str) -> list:
    if not isinstance(value, list):
        raise QueryTypeError(f"{name}() requires a node-set argument")
    return value


def _fn_count(ev, ctx, args, call):
    return float(len(_node_set(args[0], "count")))


def _fn_position(ev, ctx, args, call):
    return float(ctx.position)


def _fn_last(ev, ctx, args, call):
    return float(ctx.size)


def _fn_not(ev, ctx, args, call):
    return not effective_boolean_value(args[0])


def _fn_true(ev, ctx, args, call):
    return True


def _fn_false(ev, ctx, args, call):
    return False


def _fn_string(ev, ctx, args, call):
    if not args:
        return context_string(ctx)
    return string_value(args[0])


def context_string(ctx: Context) -> str:
    return ctx.node.string_value()


def _fn_number(ev, ctx, args, call):
    if not args:
        return number_value([ctx.node])
    return number_value(args[0])


def _fn_boolean(ev, ctx, args, call):
    return effective_boolean_value(args[0])


def _fn_concat(ev, ctx, args, call):
    if len(args) < 2:
        raise QueryTypeError("concat() needs at least two arguments")
    return "".join(string_value(a) for a in args)


def _fn_contains(ev, ctx, args, call):
    return string_value(args[1]) in string_value(args[0])


def _fn_starts_with(ev, ctx, args, call):
    return string_value(args[0]).startswith(string_value(args[1]))


def _fn_string_length(ev, ctx, args, call):
    if not args:
        return float(len(ctx.node.string_value()))
    return float(len(string_value(args[0])))


def _fn_normalize_space(ev, ctx, args, call):
    text = (ctx.node.string_value() if not args else string_value(args[0]))
    return " ".join(text.split())


def _fn_substring(ev, ctx, args, call):
    text = string_value(args[0])
    start = round(number_value(args[1]))
    if len(args) > 2:
        length = round(number_value(args[2]))
        return text[max(0, start - 1):max(0, start - 1 + length)]
    return text[max(0, start - 1):]


def _fn_sum(ev, ctx, args, call):
    return float(sum(number_value([node])
                     for node in _node_set(args[0], "sum")))


def _fn_name(ev, ctx, args, call):
    if args:
        nodes = _node_set(args[0], "name")
        if not nodes:
            return ""
        return nodes[0].name or ""
    return ctx.node.name or ""


def _fn_floor(ev, ctx, args, call):
    import math
    return float(math.floor(number_value(args[0])))


def _fn_ceiling(ev, ctx, args, call):
    import math
    return float(math.ceil(number_value(args[0])))


def _fn_round(ev, ctx, args, call):
    import math
    return float(math.floor(number_value(args[0]) + 0.5))


_FUNCTIONS: dict[str, Callable] = {
    "count": _fn_count,
    "position": _fn_position,
    "last": _fn_last,
    "not": _fn_not,
    "true": _fn_true,
    "false": _fn_false,
    "string": _fn_string,
    "number": _fn_number,
    "boolean": _fn_boolean,
    "concat": _fn_concat,
    "contains": _fn_contains,
    "starts-with": _fn_starts_with,
    "string-length": _fn_string_length,
    "normalize-space": _fn_normalize_space,
    "substring": _fn_substring,
    "sum": _fn_sum,
    "name": _fn_name,
    "floor": _fn_floor,
    "ceiling": _fn_ceiling,
    "round": _fn_round,
}


def _item_value(item) -> Union[str, float, bool]:
    """Atomise one sequence item: nodes become their string value,
    atomics (str/float/bool — XQuery sequences mix them in) pass through."""
    if isinstance(item, model.Node):
        return item.string_value()
    if isinstance(item, (str, float, bool, int)):
        return float(item) if isinstance(item, int) \
            and not isinstance(item, bool) else item
    raise QueryTypeError(f"cannot atomise {item!r}")


def _compare(op: str, left: Value, right: Value) -> bool:
    """XPath 1.0 comparison semantics (existential over sequences)."""
    if isinstance(left, list) and isinstance(right, list):
        return any(_compare_scalar(op, _item_value(a), _item_value(b))
                   for a in left for b in right)
    if isinstance(left, list):
        return any(_compare_scalar(op, _item_value(a), right) for a in left)
    if isinstance(right, list):
        return any(_compare_scalar(op, left, _item_value(b)) for b in right)
    return _compare_scalar(op, left, right)


def _compare_scalar(op: str, left, right) -> bool:
    """Comparison of two atomic values per the XPath 1.0 coercion table."""
    if isinstance(left, bool) or isinstance(right, bool):
        return _ordered(op, float(effective_boolean_value(left)),
                        float(effective_boolean_value(right)))
    if isinstance(left, float) or isinstance(right, float):
        return _ordered(op, number_value(left), number_value(right))
    if op in ("=", "!="):
        return (left == right) if op == "=" else (left != right)
    return _ordered(op, number_value(left), number_value(right))


def _ordered(op: str, left: float, right: float) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def evaluate_xpath(expr_or_text, context_node: model.Node,
                   variables: Optional[dict] = None) -> Value:
    """Evaluate an XPath expression (text or AST) with ``context_node`` as
    the context item.  Returns a node-set (list), bool, float, or str."""
    from repro.xpath.parser import parse_xpath

    expr = (parse_xpath(expr_or_text) if isinstance(expr_or_text, str)
            else expr_or_text)
    context = Context(context_node, variables=variables)
    return XPathEvaluator().evaluate(expr, context)

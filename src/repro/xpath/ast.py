"""Abstract syntax for the XPath fragment.

The AST is deliberately small and regular: a :class:`LocationPath` is a
list of :class:`Step`; a step has an axis, a node test, and predicates;
predicate expressions reuse the same node classes.  The XQuery frontend
embeds these nodes for its path expressions, and the algebra translator
(:mod:`repro.algebra.translate`) compiles them into pattern graphs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

__all__ = [
    "Axis",
    "NodeTest",
    "NameTest",
    "WildcardTest",
    "KindTest",
    "Step",
    "LocationPath",
    "Literal",
    "ContextItem",
    "BinaryOp",
    "UnaryOp",
    "FunctionCall",
    "Union_",
    "Expr",
]


class Axis(enum.Enum):
    """The axes of the paper's fragment.

    ``CHILD``, ``ATTRIBUTE`` and ``FOLLOWING_SIBLING`` are *local* (NoK)
    relationships; ``DESCENDANT`` / ``DESCENDANT_OR_SELF`` are the
    non-local ones that force partitioning (Section 4.2).
    """

    CHILD = "child"
    DESCENDANT = "descendant"
    DESCENDANT_OR_SELF = "descendant-or-self"
    SELF = "self"
    PARENT = "parent"
    ATTRIBUTE = "attribute"
    FOLLOWING_SIBLING = "following-sibling"

    @property
    def is_local(self) -> bool:
        """True for next-of-kin (NoK) axes."""
        return self in (Axis.CHILD, Axis.ATTRIBUTE, Axis.FOLLOWING_SIBLING,
                        Axis.SELF)


class NodeTest:
    """Base class of node tests."""

    def matches_tag(self, tag: str, kind: str) -> bool:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class NameTest(NodeTest):
    """``book`` — matches elements (or attributes on the attribute axis)
    with the given name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class WildcardTest(NodeTest):
    """``*`` — matches any element (or any attribute on that axis)."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class KindTest(NodeTest):
    """``text()`` / ``comment()`` / ``node()``."""

    kind: str  # "text" | "comment" | "node"

    def __str__(self) -> str:
        return f"{self.kind}()"


@dataclass(frozen=True)
class Step:
    """One location step: ``axis::test[pred]...``."""

    axis: Axis
    test: NodeTest
    predicates: tuple["Expr", ...] = ()

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        return f"{self.axis.value}::{self.test}{preds}"


@dataclass(frozen=True)
class LocationPath:
    """A (possibly absolute) sequence of steps."""

    steps: tuple[Step, ...]
    absolute: bool = False

    def __str__(self) -> str:
        prefix = "/" if self.absolute else ""
        return prefix + "/".join(str(step) for step in self.steps)


@dataclass(frozen=True)
class Literal:
    """A string or numeric literal."""

    value: Union[str, float]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


@dataclass(frozen=True)
class ContextItem:
    """``.`` used as an expression (e.g. ``.[. = 'x']``)."""

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True)
class BinaryOp:
    """Comparison, arithmetic, or boolean connective."""

    op: str   # = != < <= > >= + - * div mod and or
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp:
    """Unary minus."""

    op: str
    operand: "Expr"

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class FunctionCall:
    """A call to one of the core library functions."""

    name: str
    args: tuple["Expr", ...] = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Union_:
    """``path | path`` — node-set union in document order."""

    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


Expr = Union[LocationPath, Literal, ContextItem, BinaryOp, UnaryOp,
             FunctionCall, Union_]

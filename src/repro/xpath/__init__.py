"""XPath frontend: the paper's path-expression fragment.

Path expressions are "arguably the most natural way to query tree-structure
data ... one of the most heavily used expressions in XQuery" (Section 4.1).
This package provides:

* :mod:`repro.xpath.ast` — the syntax tree,
* :mod:`repro.xpath.lexer` / :mod:`repro.xpath.parser` — text to AST,
* :mod:`repro.xpath.semantics` — the *reference evaluator*: a direct,
  node-at-a-time implementation of the W3C semantics over
  :mod:`repro.xml.model` trees.  Every physical strategy in
  :mod:`repro.physical` is differential-tested against it.

Supported fragment (everything the paper's algebra covers):

* axes: ``child``, ``descendant``, ``descendant-or-self``, ``self``,
  ``parent``, ``attribute``, ``following-sibling``,
* abbreviations ``/``, ``//``, ``@``, ``.``, ``..``,
* node tests: names, ``*``, ``text()``, ``comment()``, ``node()``,
* predicates: existence paths, value comparisons, positions, ``and`` /
  ``or`` / ``not()``, and the core function library,
* union ``|``.
"""

from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import evaluate_xpath

__all__ = ["parse_xpath", "evaluate_xpath"]

"""LSNs and WAL tailing — the replication log view over durability.

The primary's durability directory *is* the replication log: the
checksummed WAL files (``wal-<gen>.log``, :mod:`repro.durability.wal`)
hold every logical update in apply order, and the atomic checkpoint
snapshots (``snapshot-<gen>.snap``) are bootstrap images.  Nothing new
is written for replication — replicas read the same bytes recovery
would.

**LSN.**  A log sequence number is the pair ``(generation,
byte_offset)``: the WAL generation and the end offset of the last
applied frame inside it (the 8-byte ``RXWAL001`` magic is offset 0's
floor, so a fresh generation starts at ``(gen, 8)``).  Tuples compare
lexicographically, which is exactly log order: checkpoints rotate to a
new generation whose WAL starts empty, so every record in generation
``g+1`` follows every record in ``g``.  On the wire an LSN travels as a
two-element list (``pack_obj`` has no tuple/list distinction the other
side can rely on).

**Tailing.**  :func:`read_wal_batch` parses frames *from a byte
offset* — cursors only ever sit on frame boundaries, so no rescan of
the prefix is needed — and stops at the first torn or corrupt frame
exactly like recovery's lenient reader.  A torn tail on the primary is
simply "not shipped yet": the writer either completes the frame (the
next poll returns it) or truncates it on restart (the bytes never had
an acknowledged write).  When a generation is exhausted and a newer WAL
exists on disk, the batch reports the rotation and the cursor jumps to
the next generation's floor; the snapshot that rotation wrote contains
precisely the state the old WAL explained, so a tailing replica keeps
its in-memory state and just follows the cursor.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.durability.checkpoint import list_generations, wal_path
from repro.durability.format import crc32, unpack_obj
from repro.durability.wal import FRAME_HEADER, WAL_MAGIC

__all__ = ["LSN_START", "WAL_FLOOR", "lsn_from_wire", "lsn_to_wire",
           "format_lsn", "read_wal_batch"]

#: Byte offset of the first frame in any WAL file (the magic's length).
WAL_FLOOR = len(WAL_MAGIC)

#: The cursor before anything was ever logged: generation 0's floor.
LSN_START = (0, WAL_FLOOR)


def lsn_from_wire(value) -> tuple[int, int]:
    """A wire LSN (two-element list/tuple) as a comparable tuple."""
    if (not isinstance(value, (list, tuple)) or len(value) != 2
            or not all(isinstance(part, int) for part in value)):
        raise ValueError(f"not a wire LSN: {value!r}")
    generation, offset = value
    return int(generation), max(int(offset), WAL_FLOOR)


def lsn_to_wire(lsn: tuple[int, int]) -> list[int]:
    return [int(lsn[0]), int(lsn[1])]


def format_lsn(lsn: Optional[tuple[int, int]]) -> str:
    if lsn is None:
        return "-"
    return f"{lsn[0]}:{lsn[1]}"


def _parse_frames(data: bytes, offset: int,
                  max_records: int, max_bytes: int
                  ) -> tuple[list[dict], list[int]]:
    """Frames from ``offset`` (a frame boundary): ``(records,
    end_offsets)``.  Stops at a torn/corrupt frame, at ``max_records``
    records, or once ``max_bytes`` of payload have been collected."""
    records: list[dict] = []
    ends: list[int] = []
    size = len(data)
    collected = 0
    while offset < size and len(records) < max_records \
            and collected < max_bytes:
        if offset + FRAME_HEADER.size > size:
            break  # torn header — not shipped yet
        length, expected_crc = FRAME_HEADER.unpack_from(data, offset)
        start = offset + FRAME_HEADER.size
        end = start + length
        if end > size:
            break  # torn payload
        payload = data[start:end]
        if crc32(payload) != expected_crc:
            break
        try:
            record = unpack_obj(payload)
        except Exception:
            break
        records.append(record)
        ends.append(end)
        collected += length
        offset = end
    return records, ends


def read_wal_batch(directory, lsn: tuple[int, int],
                   max_records: int = 512,
                   max_bytes: int = 4 * 1024 * 1024) -> dict:
    """One ship batch from the cursor ``lsn``.

    Returns a dict with:

    ``records`` / ``offsets``
        The decoded records after the cursor and each record's end
        offset (parallel lists; offsets are within ``lsn``'s
        generation).
    ``lsn``
        The cursor after consuming the batch.  When the generation was
        exhausted *and* a newer WAL exists, this has already jumped to
        the next generation's floor (``rotated`` is set) — the caller
        should poll again immediately rather than sleep.
    ``rotated``
        The cursor crossed into a newer generation this batch.
    ``gap``
        The cursor's WAL no longer exists but *newer* generations do:
        the segment was pruned out from under the reader (a lost or
        expired retention pin).  The only safe continuation is a fresh
        bootstrap.

    A cursor pointing at a not-yet-created generation (the primary has
    not written anything there) returns an empty batch with the cursor
    unchanged — that is "caught up", not a gap.
    """
    directory = Path(directory)
    generation, offset = int(lsn[0]), max(int(lsn[1]), WAL_FLOOR)
    path = wal_path(directory, generation)
    batch = {"records": [], "offsets": [],
             "lsn": (generation, offset),
             "rotated": False, "gap": False}
    if not path.exists():
        newer = [g for g in list_generations(directory)["wals"]
                 if g > generation]
        if newer:
            batch["gap"] = True
        return batch
    data = path.read_bytes()
    if len(data) < WAL_FLOOR or data[:WAL_FLOOR] != WAL_MAGIC:
        # Torn creation (or mid-write of the magic): nothing shipped yet.
        return batch
    records, ends = _parse_frames(data, offset, max_records, max_bytes)
    if records:
        batch["records"] = records
        batch["offsets"] = ends
        batch["lsn"] = (generation, ends[-1])
        return batch
    # Nothing new in this generation; if a checkpoint rotated past it,
    # follow the cursor to the next WAL present on disk.
    newer = [g for g in list_generations(directory)["wals"]
             if g > generation]
    if newer:
        batch["lsn"] = (min(newer), WAL_FLOOR)
        batch["rotated"] = True
    return batch

"""Failure-aware routing of stale-bounded reads to replicas.

The :class:`ReplicaRouter` sits inside the serving frontend.  A query
request is *eligible* for a replica only when the client opted in with
``max_staleness_seconds > 0`` — an unbounded request (no bound, or a
bound of zero) always goes to the primary, which is the conservative
default and the read-your-writes guarantee for clients that never set
a bound.

Dispatch policy:

* a background health monitor polls each replica's ``repl status``
  verb; a replica is *healthy* when its last poll succeeded recently
  and it reported the ``tailing`` state;
* eligible requests round-robin over healthy replicas whose last
  reported staleness (aged by the time since the poll) fits the bound;
* the chosen replica re-checks the bound **authoritatively** at
  execution time (:meth:`Replica.admit_query`) — the router's view is
  a hint, the replica's rejection is the guarantee, so a staleness
  bound can never be violated by a racing health poll;
* any failure — connection refused/reset mid-query (a killed replica),
  a typed ``REPLICA_STALE`` rejection, a drain — moves on to the next
  candidate and finally **falls back to the primary**: the caller gets
  a correct answer, just not the cheap one.  Dead replicas are marked
  unhealthy after ``max_failures`` consecutive errors and recover as
  soon as a health poll succeeds again.

Endpoints are either in-process objects with ``execute_request`` (a
:class:`~repro.replication.replica.ReplicaDatabase` — the chaos tests)
or ``(host, port)`` addresses reached through
:class:`~repro.server.client.ServerClient`.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import (
    RemoteQueryError,
    ReplicaStaleError,
    ServerError,
)

__all__ = ["ReplicaEndpoint", "ReplicaRouter"]

#: Failures that mean "this replica cannot answer right now" — move on
#: to the next candidate (or the primary).  Query-shaped errors
#: (syntax, type) are *not* here: those would fail identically on the
#: primary and must surface to the client.
_ROUTE_FAILURES = (ReplicaStaleError, ServerError, ConnectionError,
                   BrokenPipeError, EOFError, OSError)


class ReplicaEndpoint:
    """One routable replica: in-process object or network address."""

    def __init__(self, target, name: Optional[str] = None,
                 timeout_seconds: float = 30.0):
        self._database = None
        self._client = None
        if hasattr(target, "execute_request"):
            self._database = target
            self.name = name or getattr(
                getattr(target, "replica", None), "replica_id",
                None) or "replica-inproc"
        else:
            host, port = target
            from repro.server.client import ServerClient
            self._client = ServerClient(
                host, int(port), timeout_seconds=timeout_seconds,
                pool_size=2, retries=0)
            self.name = name or f"{host}:{port}"
        self.healthy = False
        self.consecutive_failures = 0
        self.last_status: Optional[dict] = None
        self.last_poll_ts: Optional[float] = None
        self.last_error: Optional[str] = None
        self.queries_served = 0

    def request(self, request: dict) -> dict:
        if self._database is not None:
            return self._database.execute_request(request)
        return self._client.request(request)

    def poll_status(self) -> dict:
        status = self.request({"verb": "repl", "action": "status"})
        self.last_status = status
        self.last_poll_ts = time.time()
        self.consecutive_failures = 0
        self.last_error = None
        self.healthy = status.get("state") == "tailing"
        return status

    def staleness_estimate(self,
                           now: Optional[float] = None) -> float:
        """The last reported staleness aged by the poll's own age —
        conservative: a replica can only have gotten staler since."""
        if self.last_status is None or self.last_poll_ts is None:
            return float("inf")
        reported = self.last_status.get("staleness_seconds")
        if reported is None:
            return float("inf")
        if now is None:
            now = time.time()
        return float(reported) + max(0.0, now - self.last_poll_ts)

    def mark_failed(self, error: BaseException,
                    max_failures: int) -> None:
        self.consecutive_failures += 1
        self.last_error = f"{type(error).__name__}: {error}"
        if self.consecutive_failures >= max_failures:
            self.healthy = False

    def describe(self) -> dict:
        return {
            "name": self.name,
            "healthy": self.healthy,
            "in_process": self._database is not None,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
            "queries_served": self.queries_served,
            "staleness_estimate": (
                None if self.staleness_estimate() == float("inf")
                else self.staleness_estimate()),
            "status": self.last_status,
        }

    def close(self) -> None:
        if self._client is not None:
            self._client.close()


class ReplicaRouter:
    """Routes stale-bounded queries across a set of replicas."""

    def __init__(self, health_interval: float = 0.25,
                 max_failures: int = 2):
        self.health_interval = health_interval
        self.max_failures = max_failures
        self._lock = threading.Lock()
        self._endpoints: list[ReplicaEndpoint] = []
        self._rr = 0
        self.routed_to_replica = 0
        self.fallbacks_to_primary = 0
        self.failovers = 0
        self.stale_rejections = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- membership ---------------------------------------------------------------

    def add_replica(self, target,
                    name: Optional[str] = None) -> ReplicaEndpoint:
        endpoint = ReplicaEndpoint(target, name=name)
        with self._lock:
            # Re-registration under the same name replaces the old
            # endpoint (a restarted replica process).
            self._endpoints = [e for e in self._endpoints
                               if e.name != endpoint.name]
            self._endpoints.append(endpoint)
        try:
            endpoint.poll_status()
        except _ROUTE_FAILURES:
            pass
        return endpoint

    def remove_replica(self, name: str) -> bool:
        with self._lock:
            keep = [e for e in self._endpoints if e.name != name]
            removed = [e for e in self._endpoints if e.name == name]
            self._endpoints = keep
        for endpoint in removed:
            endpoint.close()
        return bool(removed)

    def endpoints(self) -> list[ReplicaEndpoint]:
        with self._lock:
            return list(self._endpoints)

    # -- health monitor -----------------------------------------------------------

    def check_health_once(self) -> None:
        for endpoint in self.endpoints():
            try:
                endpoint.poll_status()
            except _ROUTE_FAILURES as exc:
                endpoint.mark_failed(exc, self.max_failures)

    def start(self) -> None:
        if self._thread is not None or not self.endpoints():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="replica-router-health",
            daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            self.check_health_once()
            self._stop.wait(self.health_interval)

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        for endpoint in self.endpoints():
            endpoint.close()

    # -- dispatch -----------------------------------------------------------------

    @staticmethod
    def eligible(request: dict) -> bool:
        """Whether this request may be served by a replica at all."""
        if request.get("verb") != "query":
            return False
        bound = request.get("max_staleness_seconds")
        try:
            return bound is not None and float(bound) > 0
        except (TypeError, ValueError):
            return False

    def maybe_route(self, request: dict) -> Optional[dict]:
        """Serve ``request`` from a replica, or return ``None`` when
        the primary should handle it (no opt-in, no fit, all failed).

        Never raises a routing failure: replica trouble degrades to
        the primary.  Query-shaped errors (bad syntax etc.) are raised
        — they are the client's answer regardless of where it ran.
        """
        if not self.eligible(request):
            return None
        bound = float(request["max_staleness_seconds"])
        now = time.time()
        candidates = [e for e in self.endpoints()
                      if e.healthy and e.staleness_estimate(now) <= bound]
        if not candidates:
            self.fallbacks_to_primary += 1
            return None
        with self._lock:
            self._rr += 1
            start = self._rr
        tried = 0
        for index in range(len(candidates)):
            endpoint = candidates[(start + index) % len(candidates)]
            tried += 1
            try:
                response = endpoint.request(request)
            except RemoteQueryError:
                # The query itself is bad (syntax/type/translation):
                # the primary would reject it identically — surface it,
                # and don't hold it against the replica.
                raise
            except ReplicaStaleError as exc:
                # Authoritative rejection: the replica fell behind
                # between the health poll and now.
                self.stale_rejections += 1
                endpoint.last_error = f"ReplicaStaleError: {exc}"
                continue
            except _ROUTE_FAILURES as exc:
                endpoint.mark_failed(exc, self.max_failures)
                self.failovers += 1
                continue
            endpoint.queries_served += 1
            self.routed_to_replica += 1
            return response
        self.fallbacks_to_primary += 1
        return None

    # -- reporting ----------------------------------------------------------------

    def report(self) -> dict:
        return {
            "replicas": [e.describe() for e in self.endpoints()],
            "routed_to_replica": self.routed_to_replica,
            "fallbacks_to_primary": self.fallbacks_to_primary,
            "failovers": self.failovers,
            "stale_rejections": self.stale_rejections,
        }

    def metrics_expositions(self) -> dict[str, str]:
        """Each reachable replica's Prometheus exposition text, for
        the fleet aggregator to merge (unreachable replicas are simply
        absent — their last gauges age out of the merged view)."""
        texts: dict[str, str] = {}
        for endpoint in self.endpoints():
            try:
                response = endpoint.request({"verb": "metrics"})
            except _ROUTE_FAILURES:
                continue
            text = response.get("text")
            if isinstance(text, str):
                texts[endpoint.name] = text
        return texts

"""WAL-shipping replication: read replicas with stale-bounded reads.

The durability layer's checksummed WAL + atomic checkpoints (PR 3)
double as a replication log; this package adds the three roles around
it:

* :class:`~repro.replication.primary.ReplicationPublisher` — serves
  the ``repl`` protocol verb on the primary: snapshot fetch, WAL tail
  batches from an LSN cursor, replica registration with retention
  pinning (a tailed WAL segment is never pruned mid-tail).
* :class:`~repro.replication.replica.Replica` /
  :class:`~repro.replication.replica.ReplicaDatabase` — bootstrap from
  the newest checkpoint, then tail + replay WAL records into an
  in-memory read-only MVCC database, exposing a monotonic
  ``applied_lsn`` and a staleness upper bound; queries carrying
  ``max_staleness_seconds`` / ``min_lsn`` are rejected with the typed
  retryable ``REPLICA_STALE`` when the bound cannot be honored.
* :class:`~repro.replication.router.ReplicaRouter` — frontend-side
  dispatch of stale-bounded reads across healthy replicas, with
  transparent failover back to the primary when a replica is lagging,
  dead, or mid-bootstrap.

See README "Replication & stale-bounded reads" for the topology and
semantics, and ``tests/replication/`` for the chaos/differential
harness that exercises all of it under kills, torn tails, and
duplicated ship batches.
"""

from repro.replication.log import (
    LSN_START,
    WAL_FLOOR,
    format_lsn,
    lsn_from_wire,
    lsn_to_wire,
    read_wal_batch,
)
from repro.replication.primary import ReplicationPublisher
from repro.replication.replica import (
    LocalSource,
    Replica,
    ReplicaDatabase,
    RemoteSource,
)
from repro.replication.router import ReplicaEndpoint, ReplicaRouter

__all__ = [
    "LSN_START",
    "WAL_FLOOR",
    "format_lsn",
    "lsn_from_wire",
    "lsn_to_wire",
    "read_wal_batch",
    "ReplicationPublisher",
    "LocalSource",
    "RemoteSource",
    "Replica",
    "ReplicaDatabase",
    "ReplicaEndpoint",
    "ReplicaRouter",
]

"""The replica side: bootstrap from a snapshot, tail + replay the WAL.

A :class:`Replica` owns a :class:`ReplicaDatabase` — an **in-memory**,
read-only :class:`~repro.engine.database.Database` — and keeps it
converged with a primary through a :class:`ReplicationSource`:

1. **bootstrap** — fetch the primary's newest checkpoint image
   (``repl snapshot``), decode it with
   :func:`repro.durability.snapshot.read_snapshot` (which accepts raw
   bytes), and install it atomically
   (:meth:`Database.install_snapshot_state`); the cursor starts at that
   generation's WAL floor.
2. **tail** — poll ``repl wal`` batches from the cursor and replay each
   record through :meth:`Database._replay_record` under the write lock,
   exactly as crash recovery does.  MVCC makes this safe under load:
   queries run against pinned snapshots and never block on the replay
   writer.  Replay is **idempotent** — a record whose LSN is at or
   below ``applied_lsn`` (a duplicated ship batch) is skipped, and a
   generation-stamp mismatch (divergence, e.g. after a gap) triggers a
   fresh bootstrap instead of corrupting state.

**Staleness.**  Every WAL record carries the primary's append wall
clock (``ts``); the replica's *freshness* is the latest of (a) the last
applied record's ``ts`` and (b) the local time of the last poll that
found it fully caught up.  ``staleness = now - freshness``.  A query
request carrying ``max_staleness_seconds`` (or a ``min_lsn``
read-your-writes token) is checked against these before execution and
rejected with the typed, retryable
:class:`~repro.errors.ReplicaStaleError` when the replica cannot honor
the bound — ``max_staleness_seconds=0`` *always* rejects: zero
staleness is a primary read by definition.

Sources come in two flavors: :class:`LocalSource` calls a
:class:`~repro.replication.primary.ReplicationPublisher` in-process
(the chaos harness uses this to run hundreds of schedules without
sockets) and :class:`RemoteSource` speaks the binary protocol through
:class:`~repro.server.client.ServerClient`.  Fault injection wraps a
source, which is why the replica treats *any* source exception as a
transient connection problem: count a reconnect, back off, retry.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

from repro.engine.database import Database
from repro.errors import (
    ExecutionError,
    RecoveryError,
    ReplicaStaleError,
    ReproError,
)
from repro.durability.snapshot import read_snapshot
from repro.replication.log import (
    LSN_START,
    format_lsn,
    lsn_from_wire,
    lsn_to_wire,
)

__all__ = ["Replica", "ReplicaDatabase", "LocalSource", "RemoteSource"]


# -- sources ----------------------------------------------------------------------


class LocalSource:
    """In-process source: direct calls into a publisher (tests)."""

    def __init__(self, publisher):
        self.publisher = publisher

    def register(self, replica_id: str,
                 address: Optional[str] = None) -> dict:
        return self.publisher.handle({
            "verb": "repl", "action": "register",
            "replica_id": replica_id, "address": address})

    def snapshot(self, replica_id: str) -> dict:
        return self.publisher.handle({
            "verb": "repl", "action": "snapshot",
            "replica_id": replica_id})

    def wal(self, replica_id: str, lsn, max_records: int) -> dict:
        return self.publisher.handle({
            "verb": "repl", "action": "wal", "replica_id": replica_id,
            "lsn": lsn_to_wire(lsn), "max_records": max_records})

    def detach(self, replica_id: str) -> dict:
        return self.publisher.handle({
            "verb": "repl", "action": "detach",
            "replica_id": replica_id})

    def close(self) -> None:
        pass


class RemoteSource:
    """Network source: the ``repl`` verb over the binary protocol."""

    def __init__(self, host: str, port: int,
                 timeout_seconds: float = 30.0):
        from repro.server.client import ServerClient
        self.client = ServerClient(host, port,
                                   timeout_seconds=timeout_seconds,
                                   pool_size=1)

    def register(self, replica_id: str,
                 address: Optional[str] = None) -> dict:
        return self.client.request({
            "verb": "repl", "action": "register",
            "replica_id": replica_id, "address": address})

    def snapshot(self, replica_id: str) -> dict:
        return self.client.request({
            "verb": "repl", "action": "snapshot",
            "replica_id": replica_id})

    def wal(self, replica_id: str, lsn, max_records: int) -> dict:
        return self.client.request({
            "verb": "repl", "action": "wal", "replica_id": replica_id,
            "lsn": lsn_to_wire(lsn), "max_records": max_records})

    def detach(self, replica_id: str) -> dict:
        return self.client.request({
            "verb": "repl", "action": "detach",
            "replica_id": replica_id})

    def close(self) -> None:
        self.client.close()


# -- the replica database ---------------------------------------------------------


class ReplicaDatabase(Database):
    """An in-memory read-only database fed by a :class:`Replica`.

    Adds two things over a plain :class:`Database`:

    * query requests are checked against their staleness bound /
      read-your-writes token *before* execution (typed
      ``REPLICA_STALE`` rejection), and successful query responses are
      annotated with ``served_by`` / ``applied_lsn`` /
      ``staleness_seconds`` so clients and tests can verify where a
      read landed and how fresh it was;
    * the ``repl`` verb answers replication status (role ``replica``).
    """

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.read_only = True
        self.replica: Optional["Replica"] = None

    def execute_request(self, request: dict) -> dict:
        if isinstance(request, dict) and request.get("verb") == "repl":
            if self.replica is None:
                raise ExecutionError(
                    "this replica database has no attached Replica")
            return self.replica.handle(request)
        is_query = isinstance(request, dict) \
            and request.get("verb") == "query"
        annotation = None
        if is_query and self.replica is not None:
            # Check the bound AND capture the annotation in one shot:
            # the staleness a client sees on the response is exactly
            # the value that was admitted against the bound, not a
            # later re-measurement inflated by execution time.
            annotation = self.replica.admit_query(request)
        response = super().execute_request(request)
        if annotation is not None and isinstance(response, dict) \
                and response.get("ok"):
            response.update(annotation)
        return response


# -- the replica ------------------------------------------------------------------


class Replica:
    """Bootstraps and tails one primary into a :class:`ReplicaDatabase`.

    ``source`` is a :class:`LocalSource`/:class:`RemoteSource` (or any
    fault-injecting wrapper with the same five methods).  The replica
    can be driven manually (:meth:`bootstrap` + :meth:`poll_once` —
    what the deterministic tests do) or by its background tail thread
    (:meth:`start`/:meth:`stop`).
    """

    def __init__(self, source, replica_id: Optional[str] = None,
                 database: Optional[ReplicaDatabase] = None,
                 address: Optional[str] = None,
                 poll_interval: float = 0.05,
                 batch_records: int = 512):
        self.source = source
        self.replica_id = replica_id or f"replica-{os.getpid()}"
        self.database = database or ReplicaDatabase()
        self.database.replica = self
        self.address = address
        self.poll_interval = poll_interval
        self.batch_records = batch_records
        self.state = "init"  # init/bootstrapping/tailing/stopped
        self.applied_lsn: tuple[int, int] = LSN_START
        self.primary_lsn: Optional[tuple[int, int]] = None
        #: The newest instant this replica is *known* to reflect: the
        #: last applied record's primary append-clock, or the local
        #: time of the last fully-caught-up poll, whichever is later.
        self.freshness_ts: Optional[float] = None
        self.records_applied = 0
        self.batches_received = 0
        self.bytes_received = 0
        self.duplicates_skipped = 0
        self.reconnects = 0
        self.bootstraps = 0
        self.gaps = 0
        self.queries_rejected_stale = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._register_metrics()

    # -- bootstrap + replay -------------------------------------------------------

    def bootstrap(self) -> dict:
        """Install the primary's newest checkpoint image and reset the
        cursor to it.  Also the divergence/gap recovery path — any
        previous in-memory state is discarded wholesale."""
        self.state = "bootstrapping"
        self.freshness_ts = None
        response = self.source.snapshot(self.replica_id)
        data = response.get("data")
        lsn = lsn_from_wire(response["lsn"])
        database = self.database
        if data:
            state = read_snapshot(data)
            database.install_snapshot_state(state)
            self.bytes_received += len(data)
        else:
            # No checkpoint on the primary yet: start empty and replay
            # the log from its very beginning.
            with database.rwlock.write_locked():
                database._publish({}, None, 0)
        self.applied_lsn = lsn
        self.primary_lsn = lsn_from_wire(response["primary_lsn"])
        self.bootstraps += 1
        self.state = "tailing"
        return response

    def poll_once(self) -> int:
        """Fetch + replay one ship batch; returns records applied.

        Raises whatever the source raises (connection trouble) — the
        tail loop catches those; deterministic tests see them directly.
        """
        fetch_ts = time.time()
        sent_cursor = self.applied_lsn
        batch = self.source.wal(self.replica_id, sent_cursor,
                                self.batch_records)
        self.batches_received += 1
        # A duplicated (re-delivered old) response carries the cursor
        # of some *earlier* request.  Its records replay idempotently,
        # but it must never count as evidence of current freshness,
        # and its stale primary_lsn must not shrink the known lag.
        echoed = batch.get("cursor")
        fresh_response = (echoed is None
                          or lsn_from_wire(echoed) == sent_cursor)
        reported = lsn_from_wire(batch["primary_lsn"])
        if self.primary_lsn is None or reported > self.primary_lsn:
            self.primary_lsn = reported
        if batch.get("gap"):
            # Our WAL segment was pruned (lost/expired pin): the only
            # safe continuation is a fresh snapshot.
            self.gaps += 1
            self.bootstrap()
            return 0
        applied = self._apply_records(batch)
        next_lsn = lsn_from_wire(batch["lsn"])
        if not batch["records"] and batch.get("rotated") \
                and next_lsn > self.applied_lsn:
            # Rotation: the cursor jumps to the next generation's
            # floor.  Safe even for a duplicated (re-delivered)
            # rotation batch: once the writer rotated, the old
            # generation never grows again, so "exhausted at
            # production time" means exhausted forever.  The cursor is
            # NEVER advanced from a non-rotation batch's claimed LSN —
            # only per applied record — so a truncated/garbled batch
            # can at worst delay replay, never skip records.
            self.applied_lsn = next_lsn
        if fresh_response and self.applied_lsn >= self.primary_lsn:
            # Fully caught up as of the moment we *started* the fetch:
            # everything the primary acknowledged before then is
            # applied here (pre-fetch local clock, so a skewed remote
            # clock can only make us report ourselves staler).
            self._advance_freshness(fetch_ts)
        return applied

    def _apply_records(self, batch: dict) -> int:
        records = batch["records"]
        if not records:
            return 0
        generation = lsn_from_wire(batch["lsn"])[0]
        database = self.database
        applied = 0
        try:
            with database.rwlock.write_locked():
                for record, end in zip(records, batch["offsets"]):
                    lsn = (generation, end)
                    if lsn <= self.applied_lsn:
                        # Duplicated ship batch (or overlap after a
                        # retried poll): already applied, skip.
                        self.duplicates_skipped += 1
                        continue
                    database._replay_record(record)
                    self.applied_lsn = lsn
                    applied += 1
                    ts = record.get("ts")
                    if isinstance(ts, (int, float)):
                        self._advance_freshness(float(ts))
        except RecoveryError:
            # Divergence: the record's generation stamp disagrees with
            # our state (e.g. records lost across a gap we failed to
            # notice).  Re-bootstrap rather than serve wrong answers.
            self.records_applied += applied
            self.bootstrap()
            return applied
        self.records_applied += applied
        return applied

    def _advance_freshness(self, ts: float) -> None:
        if self.freshness_ts is None or ts > self.freshness_ts:
            self.freshness_ts = ts

    # -- staleness ----------------------------------------------------------------

    def staleness_seconds(self, now: Optional[float] = None) -> float:
        """Seconds behind the primary this replica may be (infinite
        until the first bootstrap/catch-up establishes freshness)."""
        if self.freshness_ts is None:
            return float("inf")
        if now is None:
            now = time.time()
        return max(0.0, now - self.freshness_ts)

    def admit_query(self, request: dict) -> dict:
        """Check a query's staleness bound / read-your-writes token and
        return the serving annotation measured *at admission* (typed
        ``REPLICA_STALE`` rejection when the bound cannot be met)."""
        staleness = self.staleness_seconds()
        min_lsn = request.get("min_lsn")
        if min_lsn is not None:
            required = lsn_from_wire(min_lsn)
            if self.applied_lsn < required:
                self.queries_rejected_stale += 1
                raise ReplicaStaleError(
                    f"replica {self.replica_id} applied "
                    f"{format_lsn(self.applied_lsn)} but the request "
                    f"requires {format_lsn(required)} "
                    f"(read-your-writes)",
                    applied_lsn=lsn_to_wire(self.applied_lsn),
                    staleness_seconds=staleness)
        bound = request.get("max_staleness_seconds")
        if bound is not None:
            bound = float(bound)
            if bound <= 0 or staleness > bound:
                self.queries_rejected_stale += 1
                raise ReplicaStaleError(
                    f"replica {self.replica_id} is {staleness:.3f}s "
                    f"stale (bound {bound:g}s; zero means "
                    f"primary-only)",
                    applied_lsn=lsn_to_wire(self.applied_lsn),
                    staleness_seconds=staleness)
        return {
            "served_by": self.replica_id,
            "role": "replica",
            "applied_lsn": lsn_to_wire(self.applied_lsn),
            "staleness_seconds": (staleness
                                  if staleness != float("inf")
                                  else None),
        }

    def check_bound(self, request: dict) -> None:
        """Reject a query whose staleness bound / read-your-writes
        token this replica cannot honor (``REPLICA_STALE``)."""
        self.admit_query(request)

    # -- lifecycle ----------------------------------------------------------------

    def register(self) -> dict:
        return self.source.register(self.replica_id,
                                    address=self.address)

    def start(self) -> None:
        """Register, bootstrap, and tail in a daemon thread."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"repl-{self.replica_id}",
            daemon=True)
        self._thread.start()

    def _run(self) -> None:
        backoff = self.poll_interval
        while not self._stop.is_set():
            try:
                if self.state != "tailing":
                    # First start, restart after stop, or a bootstrap
                    # that failed mid-flight: (re)establish the cursor.
                    self.register()
                    self.bootstrap()
                applied = self.poll_once()
                backoff = self.poll_interval
                if applied and self.applied_lsn < (self.primary_lsn
                                                   or LSN_START):
                    continue  # more to drain: no sleep between batches
            except ReproError:
                self.reconnects += 1
                backoff = min(backoff * 2, 1.0)
            except (ConnectionError, OSError):
                self.reconnects += 1
                backoff = min(backoff * 2, 1.0)
            self._stop.wait(backoff)

    def stop(self, detach: bool = False) -> None:
        """Stop tailing.  ``detach=True`` additionally drops the
        primary-side registration + retention pin (clean shutdown); a
        plain stop models a crash — the pin survives until its TTL."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        self.state = "stopped"
        if detach:
            try:
                self.source.detach(self.replica_id)
            except (ReproError, ConnectionError, OSError):
                pass
        self.source.close()

    # -- status / metrics ---------------------------------------------------------

    def lag_lsn(self) -> Optional[int]:
        """Bytes between the primary's position and ours, when both are
        in the same generation (None across a generation boundary —
        byte math is meaningless there)."""
        if self.primary_lsn is None:
            return None
        if self.primary_lsn[0] != self.applied_lsn[0]:
            return None
        return max(0, self.primary_lsn[1] - self.applied_lsn[1])

    def status(self) -> dict:
        staleness = self.staleness_seconds()
        return {
            "replica_id": self.replica_id,
            "state": self.state,
            "address": self.address,
            "applied_lsn": lsn_to_wire(self.applied_lsn),
            "primary_lsn": (lsn_to_wire(self.primary_lsn)
                            if self.primary_lsn else None),
            "lag_bytes": self.lag_lsn(),
            "staleness_seconds": (staleness
                                  if staleness != float("inf")
                                  else None),
            "records_applied": self.records_applied,
            "batches_received": self.batches_received,
            "bytes_received": self.bytes_received,
            "duplicates_skipped": self.duplicates_skipped,
            "reconnects": self.reconnects,
            "bootstraps": self.bootstraps,
            "gaps": self.gaps,
            "queries_rejected_stale": self.queries_rejected_stale,
            "documents": len(self.database.documents),
        }

    def handle(self, request: dict) -> dict:
        """The ``repl`` verb on the *replica* side (status only — a
        replica does not publish)."""
        action = request.get("action") or "status"
        if action == "status":
            return {"ok": True, "verb": "repl", "action": "status",
                    "role": "replica", **self.status()}
        raise ExecutionError(
            f"unknown repl action {action!r} on a replica; only "
            f"'status' is served here")

    def _register_metrics(self) -> None:
        registry = self.database.observability.registry
        registry.register_pull(
            "repro_repl_staleness_seconds", "gauge",
            "Upper bound on this replica's staleness (-1 until the "
            "first bootstrap establishes freshness).",
            lambda: (self.staleness_seconds()
                     if self.freshness_ts is not None else -1.0))
        registry.register_pull(
            "repro_repl_applied_generation", "gauge",
            "WAL generation of the replica's applied LSN.",
            lambda: self.applied_lsn[0])
        registry.register_pull(
            "repro_repl_applied_offset", "gauge",
            "Byte offset of the replica's applied LSN.",
            lambda: self.applied_lsn[1])
        registry.register_pull(
            "repro_repl_records_applied_total", "counter",
            "WAL records replayed on this replica.",
            lambda: self.records_applied)
        registry.register_pull(
            "repro_repl_batches_total", "counter",
            "Ship batches fetched from the primary.",
            lambda: self.batches_received)
        registry.register_pull(
            "repro_repl_bytes_received_total", "counter",
            "Snapshot + WAL bytes received from the primary.",
            lambda: self.bytes_received)
        registry.register_pull(
            "repro_repl_duplicates_skipped_total", "counter",
            "Duplicated shipped records skipped idempotently.",
            lambda: self.duplicates_skipped)
        registry.register_pull(
            "repro_repl_reconnects_total", "counter",
            "Source failures that triggered a reconnect/backoff.",
            lambda: self.reconnects)
        registry.register_pull(
            "repro_repl_bootstraps_total", "counter",
            "Snapshot bootstraps (initial + divergence/gap recovery).",
            lambda: self.bootstraps)
        registry.register_pull(
            "repro_repl_stale_rejections_total", "counter",
            "Queries rejected for exceeding their staleness bound.",
            lambda: self.queries_rejected_stale)

"""The primary side of replication: publish snapshots + WAL batches.

:class:`ReplicationPublisher` wraps a *durable* primary
:class:`~repro.engine.database.Database` and answers the ``repl``
protocol verb (see :meth:`handle`):

``register``
    A replica announces itself (and optionally the address it serves
    reads on).  Registration writes a retention pin
    (:func:`repro.durability.checkpoint.write_retention_pin`) at the
    primary's current generation so checkpoint pruning cannot delete a
    WAL segment the replica is about to tail.
``snapshot``
    The newest checkpoint image as raw bytes plus the LSN it
    corresponds to — the replica bootstrap path.  A primary that has
    never checkpointed returns no image; the replica starts empty at
    ``LSN_START`` and replays the whole log.
``wal``
    One ship batch from the replica's cursor
    (:func:`repro.replication.log.read_wal_batch`), refreshing the
    replica's retention pin to the cursor's generation — the pin's
    mtime is its liveness lease, so a replica that stops polling
    eventually stops pinning (``DEFAULT_PIN_TTL_SECONDS``).
``status``
    The primary's LSN and every registered replica's last-reported
    cursor/lag — the router's health-poll payload.
``detach``
    Drop a replica's pin and registration (clean shutdown).

The publisher holds no lock shared with the write path: WAL files are
append-only (a concurrent reader sees a CRC-delimited prefix), snapshot
publication is an atomic rename, and pin writes are atomic replaces —
all reads here are safe against the writer mid-flight.  The publisher's
own registry dict is guarded by a private mutex because the serving
frontend calls :meth:`handle` from many connection threads.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import ExecutionError
from repro.durability.checkpoint import (
    clear_retention_pin,
    list_generations,
    snapshot_path,
    write_retention_pin,
)
from repro.replication.log import (
    LSN_START,
    WAL_FLOOR,
    lsn_from_wire,
    lsn_to_wire,
    read_wal_batch,
)

__all__ = ["ReplicationPublisher"]


class ReplicationPublisher:
    """Serves the ``repl`` verb for one primary data directory.

    Two construction modes:

    * ``ReplicationPublisher(database)`` — in-process next to the
      writer (the chaos harness, single-process deployments): positions
      come straight from the durability manager.
    * ``ReplicationPublisher(directory=...)`` — file-level, for a
      serving frontend that shares the data directory with a separate
      writer process (the PR 8 topology).  Positions are derived from
      the directory listing; that is sound because the writer publishes
      every artifact atomically (WAL frames are CRC-delimited appends,
      snapshots are ``os.replace`` renames, and retention pins written
      here are read by the writer's own pruning).
    """

    def __init__(self, database=None, *, directory=None,
                 max_batch_records: int = 512,
                 max_batch_bytes: int = 4 * 1024 * 1024):
        if database is not None:
            if database.durability is None:
                raise ExecutionError(
                    "replication needs a durable primary "
                    "(Database.open with a directory); an in-memory "
                    "database has no WAL to ship")
            self.manager = database.durability
            self.directory = self.manager.directory
        elif directory is not None:
            self.manager = None
            from pathlib import Path
            self.directory = Path(directory)
        else:
            raise ExecutionError(
                "ReplicationPublisher needs a durable database or a "
                "data directory")
        self.database = database
        self.max_batch_records = max_batch_records
        self.max_batch_bytes = max_batch_bytes
        self._lock = threading.Lock()
        #: replica_id -> {"lsn", "address", "last_seen", "batches",
        #:                "records", "bytes"}
        self.replicas: dict[str, dict] = {}
        self.batches_shipped = 0
        self.records_shipped = 0
        self.bytes_shipped = 0
        self.snapshots_shipped = 0

    # -- positions ----------------------------------------------------------------

    def generation(self) -> int:
        """The primary's current WAL generation (manager-authoritative
        in-process; newest file on disk in directory mode)."""
        if self.manager is not None:
            return self.manager.generation
        listing = list_generations(self.directory)
        present = listing["wals"] + listing["snapshots"]
        return max(present) if present else 0

    def primary_lsn(self) -> tuple[int, int]:
        """The end of the primary's log right now.

        Reads the generation once, then the size of *that* WAL file —
        if a checkpoint rotates in between, the old file is final and
        the returned LSN is still a true (just momentarily stale)
        position.  In-process the writer fsyncs whole frames before
        acknowledging, so no sub-frame bytes are observable; in
        directory mode a concurrent append can make the size land
        mid-frame, which only ever *overstates* the position replicas
        are chasing — lag reads conservatively, never optimistically.
        """
        generation = self.generation()
        if self.manager is not None:
            wal = self.manager.wal
            if wal is not None and wal.path.name.endswith(
                    f"{generation:08d}.log"):
                return (generation, max(wal.size_bytes, WAL_FLOOR))
        from repro.durability.checkpoint import wal_path
        try:
            size = wal_path(self.directory, generation).stat().st_size
        except OSError:
            size = WAL_FLOOR
        return (generation, max(size, WAL_FLOOR))

    # -- the repl verb ------------------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Execute one ``{"verb": "repl", "action": ...}`` request."""
        action = request.get("action") or "status"
        if action == "register":
            return self._register(request)
        if action == "snapshot":
            return self._snapshot(request)
        if action == "wal":
            return self._wal(request)
        if action == "status":
            return self._status()
        if action == "detach":
            return self._detach(request)
        raise ExecutionError(
            f"unknown repl action {action!r}; expected one of "
            f"register/snapshot/wal/status/detach")

    def _replica_id(self, request: dict) -> str:
        replica_id = request.get("replica_id")
        if not isinstance(replica_id, str) or not replica_id:
            raise ExecutionError(
                "repl request needs a non-empty string 'replica_id'")
        return replica_id

    def _register(self, request: dict) -> dict:
        replica_id = self._replica_id(request)
        # Pin *before* reading the position: a checkpoint between the
        # two can only leave the pin conservatively low, never let the
        # replica's bootstrap generation be pruned.
        generation = self.generation()
        write_retention_pin(self.directory, replica_id,
                            generation)
        with self._lock:
            entry = self.replicas.setdefault(replica_id, {
                "lsn": None, "address": None, "batches": 0,
                "records": 0, "bytes": 0})
            entry["address"] = request.get("address")
            entry["last_seen"] = time.time()
        return {"ok": True, "verb": "repl", "action": "register",
                "replica_id": replica_id,
                "primary_lsn": lsn_to_wire(self.primary_lsn())}

    def _snapshot(self, request: dict) -> dict:
        replica_id = request.get("replica_id")
        directory = self.directory
        snapshots = list_generations(directory)["snapshots"]
        response = {"ok": True, "verb": "repl", "action": "snapshot",
                    "generation": None, "data": None,
                    "lsn": lsn_to_wire(LSN_START),
                    "primary_lsn": lsn_to_wire(self.primary_lsn())}
        data = None
        generation = None
        # Newest first; a snapshot being pruned under us (no pin yet,
        # or a brand-new replica) just falls back to the next one.
        for candidate in reversed(snapshots):
            try:
                data = snapshot_path(directory, candidate).read_bytes()
            except OSError:
                continue
            generation = candidate
            break
        if data is not None:
            response.update(generation=generation, data=data,
                            lsn=lsn_to_wire((generation, WAL_FLOOR)))
        if isinstance(replica_id, str) and replica_id:
            write_retention_pin(directory, replica_id,
                                generation if generation is not None
                                else 0)
            with self._lock:
                entry = self.replicas.get(replica_id)
                if entry is not None:
                    entry["last_seen"] = time.time()
        with self._lock:
            self.snapshots_shipped += 1
            self.bytes_shipped += len(data) if data else 0
        return response

    def _wal(self, request: dict) -> dict:
        replica_id = self._replica_id(request)
        try:
            cursor = lsn_from_wire(request.get("lsn"))
        except ValueError as exc:
            raise ExecutionError(str(exc))
        max_records = min(int(request.get("max_records")
                              or self.max_batch_records),
                          self.max_batch_records)
        batch = read_wal_batch(self.directory, cursor,
                               max_records=max_records,
                               max_bytes=self.max_batch_bytes)
        next_lsn = batch["lsn"]
        # Refresh the pin (cursor position + liveness mtime) on every
        # poll, even empty ones — an idle replica is still tailing.
        write_retention_pin(self.directory, replica_id,
                            next_lsn[0])
        # Records always come from the cursor's own generation (a
        # rotation batch carries none), so the byte delta is exact.
        shipped_bytes = (batch["offsets"][-1] - cursor[1]
                         if batch["records"] else 0)
        primary = self.primary_lsn()
        with self._lock:
            entry = self.replicas.setdefault(replica_id, {
                "lsn": None, "address": None, "batches": 0,
                "records": 0, "bytes": 0})
            entry["lsn"] = next_lsn
            entry["last_seen"] = time.time()
            entry["batches"] += 1
            entry["records"] += len(batch["records"])
            entry["bytes"] += max(0, shipped_bytes)
            self.batches_shipped += 1
            self.records_shipped += len(batch["records"])
            self.bytes_shipped += max(0, shipped_bytes)
        return {"ok": True, "verb": "repl", "action": "wal",
                "records": batch["records"],
                "offsets": batch["offsets"],
                # Echo the request cursor: a duplicated/re-delivered
                # old response then carries a cursor that disagrees
                # with what the replica just sent, so the replica can
                # refuse to treat it as evidence of being caught up.
                "cursor": lsn_to_wire(cursor),
                "lsn": lsn_to_wire(next_lsn),
                "rotated": batch["rotated"],
                "gap": batch["gap"],
                "primary_lsn": lsn_to_wire(primary),
                "caught_up": (not batch["records"]
                              and not batch["rotated"]
                              and not batch["gap"]
                              and tuple(next_lsn) >= primary),
                "ship_ts": time.time()}

    def _status(self) -> dict:
        primary = self.primary_lsn()
        with self._lock:
            replicas = {
                replica_id: {
                    "lsn": (lsn_to_wire(entry["lsn"])
                            if entry["lsn"] else None),
                    "address": entry.get("address"),
                    "last_seen": entry.get("last_seen"),
                    "batches": entry["batches"],
                    "records": entry["records"],
                    "bytes": entry["bytes"],
                }
                for replica_id, entry in self.replicas.items()}
        return {"ok": True, "verb": "repl", "action": "status",
                "role": "primary",
                "primary_lsn": lsn_to_wire(primary),
                "generation": self.generation(),
                "replicas": replicas}

    def _detach(self, request: dict) -> dict:
        replica_id = self._replica_id(request)
        existed = clear_retention_pin(self.directory,
                                      replica_id)
        with self._lock:
            self.replicas.pop(replica_id, None)
        return {"ok": True, "verb": "repl", "action": "detach",
                "replica_id": replica_id, "existed": existed}

    # -- metrics ------------------------------------------------------------------

    def report(self) -> dict:
        with self._lock:
            return {
                "batches_shipped": self.batches_shipped,
                "records_shipped": self.records_shipped,
                "bytes_shipped": self.bytes_shipped,
                "snapshots_shipped": self.snapshots_shipped,
                "replicas": len(self.replicas),
            }

"""XQuery-level function library (on top of the shared XPath core).

Adds the sequence/document functions the FLWOR fragment needs:
``doc``/``document``, ``data``, ``distinct-values``, ``empty``, ``exists``,
``avg``, ``min``, ``max``, ``string-join``.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExecutionError, QueryTypeError
from repro.xml import model
from repro.xpath.semantics import number_value, string_value

__all__ = ["XQUERY_FUNCTIONS", "atomize_item", "atomize"]


def atomize_item(item):
    """Typed value of one item: nodes give their string value, atomics
    pass through."""
    if isinstance(item, model.Node):
        return item.string_value()
    return item


def atomize(sequence) -> list:
    """Atomize a whole sequence."""
    if not isinstance(sequence, list):
        return [sequence]
    return [atomize_item(item) for item in sequence]


def _as_sequence(value) -> list:
    return value if isinstance(value, list) else [value]


def _fn_doc(ev, ctx, args, call):
    uri = string_value(args[0])
    document = ev.documents.get(uri)
    if document is None:
        raise ExecutionError(f"document {uri!r} is not loaded")
    return [document]


def _fn_data(ev, ctx, args, call):
    return atomize(args[0])


def _fn_distinct_values(ev, ctx, args, call):
    seen = set()
    out = []
    for value in atomize(args[0]):
        key = value
        if key not in seen:
            seen.add(key)
            out.append(value)
    return out


def _fn_empty(ev, ctx, args, call):
    return len(_as_sequence(args[0])) == 0


def _fn_exists(ev, ctx, args, call):
    return len(_as_sequence(args[0])) > 0


def _numbers(value, name: str) -> list[float]:
    items = atomize(_as_sequence(value))
    numbers = [number_value(item) for item in items]
    if any(n != n for n in numbers):
        raise QueryTypeError(f"{name}() over non-numeric values")
    return numbers


def _fn_avg(ev, ctx, args, call):
    numbers = _numbers(args[0], "avg")
    if not numbers:
        return []
    return sum(numbers) / len(numbers)


def _fn_min(ev, ctx, args, call):
    numbers = _numbers(args[0], "min")
    if not numbers:
        return []
    return min(numbers)


def _fn_max(ev, ctx, args, call):
    numbers = _numbers(args[0], "max")
    if not numbers:
        return []
    return max(numbers)


def _fn_string_join(ev, ctx, args, call):
    separator = string_value(args[1]) if len(args) > 1 else ""
    return separator.join(string_value([item]) if isinstance(item, model.Node)
                          else string_value(item)
                          for item in _as_sequence(args[0]))


XQUERY_FUNCTIONS: dict[str, Callable] = {
    "doc": _fn_doc,
    "document": _fn_doc,
    "data": _fn_data,
    "distinct-values": _fn_distinct_values,
    "empty": _fn_empty,
    "exists": _fn_exists,
    "avg": _fn_avg,
    "min": _fn_min,
    "max": _fn_max,
    "string-join": _fn_string_join,
}

"""Abstract syntax for the XQuery fragment (extends the XPath AST).

The XPath node classes are reused unchanged for paths and operators; this
module adds the XQuery-only forms: FLWOR, constructors, variables, rooted
paths, conditionals, sequences and ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.xpath import ast as xp

__all__ = [
    "VarRef",
    "PathFrom",
    "ForClause",
    "LetClause",
    "OrderSpec",
    "FLWOR",
    "EnclosedExpr",
    "AttributeValue",
    "ElementConstructor",
    "IfExpr",
    "SequenceExpr",
    "RangeExpr",
    "QuantifiedExpr",
    "Expr",
]


@dataclass(frozen=True)
class VarRef:
    """``$name``."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class PathFrom:
    """A path rooted at an arbitrary expression: ``$b/title``,
    ``document("bib.xml")/bib/book``."""

    source: "Expr"
    path: xp.LocationPath

    def __str__(self) -> str:
        return f"{self.source}/{self.path}"


@dataclass(frozen=True)
class ForClause:
    """``for $var in expr`` — one binding; iterates item by item.

    ``position_var`` carries ``at $i`` when present.
    """

    variable: str
    expr: "Expr"
    position_var: Optional[str] = None

    def __str__(self) -> str:
        at = f" at ${self.position_var}" if self.position_var else ""
        return f"for ${self.variable}{at} in {self.expr}"


@dataclass(frozen=True)
class LetClause:
    """``let $var := expr`` — binds the whole sequence."""

    variable: str
    expr: "Expr"

    def __str__(self) -> str:
        return f"let ${self.variable} := {self.expr}"


@dataclass(frozen=True)
class OrderSpec:
    """One ``order by`` key."""

    expr: "Expr"
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.expr}{' descending' if self.descending else ''}"


@dataclass(frozen=True)
class FLWOR:
    """A FLWOR expression — "the only kind of expression that can
    introduce new variables" (Section 3.2)."""

    clauses: tuple[Union[ForClause, LetClause], ...]
    where: Optional["Expr"]
    order_by: tuple[OrderSpec, ...]
    return_expr: "Expr"

    def __str__(self) -> str:
        parts = [str(clause) for clause in self.clauses]
        if self.where is not None:
            parts.append(f"where {self.where}")
        if self.order_by:
            keys = ", ".join(str(spec) for spec in self.order_by)
            parts.append(f"order by {keys}")
        parts.append(f"return {self.return_expr}")
        return " ".join(parts)


@dataclass(frozen=True)
class EnclosedExpr:
    """``{ expr }`` inside a constructor — the placeholder leaves of the
    paper's SchemaTree (Fig. 1b)."""

    expr: "Expr"

    def __str__(self) -> str:
        return f"{{{self.expr}}}"


@dataclass(frozen=True)
class AttributeValue:
    """An attribute value template: literal text and enclosed expressions."""

    parts: tuple[Union[str, EnclosedExpr], ...]

    def __str__(self) -> str:
        return "".join(str(part) for part in self.parts)


@dataclass(frozen=True)
class ElementConstructor:
    """A direct element constructor ``<tag a="v">content</tag>``."""

    tag: str
    attributes: tuple[tuple[str, AttributeValue], ...] = ()
    children: tuple[Union[str, EnclosedExpr, "ElementConstructor"], ...] = ()

    def __str__(self) -> str:
        attrs = "".join(f' {name}="{value}"'
                        for name, value in self.attributes)
        inner = "".join(str(child) for child in self.children)
        return f"<{self.tag}{attrs}>{inner}</{self.tag}>"


@dataclass(frozen=True)
class IfExpr:
    """``if (cond) then e1 else e2``."""

    condition: "Expr"
    then_branch: "Expr"
    else_branch: "Expr"

    def __str__(self) -> str:
        return (f"if ({self.condition}) then {self.then_branch} "
                f"else {self.else_branch}")


@dataclass(frozen=True)
class SequenceExpr:
    """``e1, e2, ...`` — sequence concatenation."""

    items: tuple["Expr", ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(item) for item in self.items) + ")"


@dataclass(frozen=True)
class RangeExpr:
    """``e1 to e2`` — an integer range sequence."""

    low: "Expr"
    high: "Expr"

    def __str__(self) -> str:
        return f"{self.low} to {self.high}"


@dataclass(frozen=True)
class QuantifiedExpr:
    """``some/every $v in expr satisfies expr``."""

    quantifier: str          # "some" | "every"
    variable: str
    source: "Expr"
    condition: "Expr"

    def __str__(self) -> str:
        return (f"{self.quantifier} ${self.variable} in {self.source} "
                f"satisfies {self.condition}")


Expr = Union[xp.Expr, VarRef, PathFrom, FLWOR, ElementConstructor, IfExpr,
             SequenceExpr, RangeExpr, QuantifiedExpr, EnclosedExpr]

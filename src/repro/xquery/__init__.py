"""XQuery frontend: the paper's non-recursive FLWOR fragment.

Section 3.1 restricts the algebra to "a subclass of XQuery that does not
include recursive functions" — exactly what this package parses and
interprets:

* FLWOR expressions (``for`` / ``let`` / ``where`` / ``order by`` /
  ``return``), the only construct that introduces variables (Section 3.2);
* direct element and attribute constructors with enclosed expressions
  (the source of :class:`~repro.algebra.schema_tree.SchemaTree`);
* path expressions, optionally rooted at ``document("...")``/``doc()`` or a
  variable;
* conditionals, sequences, ranges, comparisons, arithmetic, and the core
  function library shared with XPath.

:mod:`repro.xquery.interpreter` is the reference implementation the
algebraic evaluation strategies are differential-tested against.
"""

from repro.xquery.parser import parse_xquery
from repro.xquery.interpreter import evaluate_xquery

__all__ = ["parse_xquery", "evaluate_xquery"]

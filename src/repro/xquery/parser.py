"""Recursive-descent parser for the XQuery fragment.

Extends :class:`repro.xpath.parser.XPathParser` with:

* FLWOR expressions,
* direct element constructors (parsed at character level, since element
  content is not token-structured; enclosed ``{...}`` expressions are
  recursively parsed as sub-expressions),
* variables, rooted paths (``$v/p``, ``doc(...)/p``), conditionals,
  quantified expressions, sequences, and ranges.

Grammar (ExprSingle is the XQuery notion — no top-level commas)::

    Expr        := ExprSingle ("," ExprSingle)*
    ExprSingle  := FLWOR | IfExpr | Quantified | OrExpr
    FLWOR       := (ForClause | LetClause)+ ("where" ExprSingle)?
                   ("order" "by" OrderSpec ("," OrderSpec)*)?
                   "return" ExprSingle
    ForClause   := "for" "$"v ("at" "$"p)? "in" ExprSingle
                   ("," "$"v ("at" "$"p)? "in" ExprSingle)*
    LetClause   := "let" "$"v ":=" ExprSingle ("," ...)*
    RangeExpr   := AdditiveExpr ("to" AdditiveExpr)?
"""

from __future__ import annotations

from repro.errors import QuerySyntaxError
from repro.xpath import ast as xp
from repro.xpath.lexer import (
    EOF,
    NAME,
    SYMBOL,
    VARIABLE,
    tokenize_tolerant,
)
from repro.xpath.parser import XPathParser
from repro.xquery import ast as xq

__all__ = ["parse_xquery", "XQueryParser"]


class XQueryParser(XPathParser):
    """Parses XQuery text (kept around for constructor re-scanning)."""

    def __init__(self, text: str):
        self.text = text
        super().__init__(tokenize_tolerant(text))

    # -- sequences ----------------------------------------------------------

    def parse_expr(self) -> xq.Expr:
        """Top-level Expr: comma-separated sequence."""
        first = self.parse_expr_single()
        if not self.at_symbol(","):
            return first
        items = [first]
        while self.at_symbol(","):
            self.advance()
            items.append(self.parse_expr_single())
        return xq.SequenceExpr(tuple(items))

    def parse_expr_single(self) -> xq.Expr:
        if self.at_name("for", "let") \
                and self.tokens[self.index + 1].kind == VARIABLE:
            return self.parse_flwor()
        if self.at_name("if") and self.tokens[self.index + 1].kind == SYMBOL \
                and self.tokens[self.index + 1].value == "(":
            return self.parse_if()
        if self.at_name("some", "every") \
                and self.tokens[self.index + 1].kind == VARIABLE:
            return self.parse_quantified()
        return self.parse_or()

    # XPath hooks: predicates and function arguments parse single
    # expressions (commas separate arguments, not sequence items).
    def parse_predicates(self) -> tuple:
        predicates = []
        while self.at_symbol("["):
            self.advance()
            predicates.append(self.parse_expr_single())
            self.expect(SYMBOL, "]")
        return tuple(predicates)

    def parse_function_call(self) -> xp.FunctionCall:
        name = self.expect(NAME).value
        self.expect(SYMBOL, "(")
        args = []
        if not self.at_symbol(")"):
            args.append(self.parse_expr_single())
            while self.at_symbol(","):
                self.advance()
                args.append(self.parse_expr_single())
        self.expect(SYMBOL, ")")
        return xp.FunctionCall(name, tuple(args))

    # -- FLWOR ------------------------------------------------------------------

    def parse_flwor(self) -> xq.FLWOR:
        clauses: list = []
        while self.at_name("for", "let"):
            keyword = self.advance().value
            while True:
                if keyword == "for":
                    variable = self.expect(VARIABLE).value
                    position_var = None
                    if self.at_name("at"):
                        self.advance()
                        position_var = self.expect(VARIABLE).value
                    self.expect(NAME, "in")
                    clauses.append(xq.ForClause(
                        variable, self.parse_expr_single(), position_var))
                else:
                    variable = self.expect(VARIABLE).value
                    self.expect(SYMBOL, ":=")
                    clauses.append(xq.LetClause(
                        variable, self.parse_expr_single()))
                if self.at_symbol(",") \
                        and self.tokens[self.index + 1].kind == VARIABLE:
                    self.advance()
                    continue
                break
        where = None
        if self.at_name("where"):
            self.advance()
            where = self.parse_expr_single()
        order_by: list[xq.OrderSpec] = []
        if self.at_name("order"):
            self.advance()
            self.expect(NAME, "by")
            while True:
                key = self.parse_expr_single()
                descending = False
                if self.at_name("descending"):
                    descending = True
                    self.advance()
                elif self.at_name("ascending"):
                    self.advance()
                order_by.append(xq.OrderSpec(key, descending))
                if self.at_symbol(","):
                    self.advance()
                    continue
                break
        self.expect(NAME, "return")
        return_expr = self.parse_expr_single()
        return xq.FLWOR(tuple(clauses), where, tuple(order_by), return_expr)

    # -- conditionals / quantifiers ------------------------------------------------

    def parse_if(self) -> xq.IfExpr:
        self.expect(NAME, "if")
        self.expect(SYMBOL, "(")
        condition = self.parse_expr()
        self.expect(SYMBOL, ")")
        self.expect(NAME, "then")
        then_branch = self.parse_expr_single()
        self.expect(NAME, "else")
        else_branch = self.parse_expr_single()
        return xq.IfExpr(condition, then_branch, else_branch)

    def parse_quantified(self) -> xq.QuantifiedExpr:
        quantifier = self.advance().value
        variable = self.expect(VARIABLE).value
        self.expect(NAME, "in")
        source = self.parse_expr_single()
        self.expect(NAME, "satisfies")
        condition = self.parse_expr_single()
        return xq.QuantifiedExpr(quantifier, variable, source, condition)

    # -- ranges (between comparison and additive) -------------------------------------

    def parse_comparison(self) -> xq.Expr:
        left = self.parse_range()
        if self.at_symbol("=", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            return xp.BinaryOp(op, left, self.parse_range())
        return left

    def parse_range(self) -> xq.Expr:
        left = self.parse_additive()
        if self.at_name("to"):
            self.advance()
            return xq.RangeExpr(left, self.parse_additive())
        return left

    # -- paths and primaries ------------------------------------------------------------

    def parse_path_expr(self) -> xq.Expr:
        if self.at_symbol("/", "//"):
            return self.parse_location_path()
        if self.at_symbol("<"):
            return self.parse_constructor()
        if self.current.kind == VARIABLE or self.is_function_start():
            source = self.parse_primary()
            return self.maybe_path_from(source)
        if self.starts_step():
            return self.parse_location_path()
        return self.parse_primary()

    def is_function_start(self) -> bool:
        token = self.current
        if token.kind != NAME:
            return False
        if token.value in ("text", "comment", "node"):
            return False
        nxt = self.tokens[self.index + 1]
        return nxt.kind == SYMBOL and nxt.value == "("

    def maybe_path_from(self, source: xq.Expr) -> xq.Expr:
        """Attach a trailing relative path to a primary: ``$b/title``."""
        if not self.at_symbol("/", "//"):
            return source
        steps: list[xp.Step] = []
        while self.at_symbol("/", "//"):
            if self.advance().value == "//":
                steps.append(xp.Step(xp.Axis.DESCENDANT_OR_SELF,
                                     xp.KindTest("node")))
            steps.append(self.parse_step())
        return xq.PathFrom(source, xp.LocationPath(tuple(steps),
                                                   absolute=False))

    def parse_primary(self) -> xq.Expr:
        token = self.current
        if token.kind == VARIABLE:
            self.advance()
            return xq.VarRef(token.value)
        if token.kind == SYMBOL and token.value == "(":
            self.advance()
            if self.at_symbol(")"):
                self.advance()
                return xq.SequenceExpr(())
            inner = self.parse_expr()
            self.expect(SYMBOL, ")")
            return inner
        return super().parse_primary()

    # -- constructors (character-level) ----------------------------------------------------

    def parse_constructor(self) -> xq.ElementConstructor:
        start = self.expect(SYMBOL, "<").position
        constructor, end = _scan_constructor(self.text, start)
        self._resume_at(end)
        return constructor

    def _resume_at(self, position: int) -> None:
        """Re-tokenize the remaining text after a character-level scan."""
        self.tokens = tokenize_tolerant(self.text[position:], base=position)
        self.index = 0


# -- character-level constructor scanning ----------------------------------------


def _scan_constructor(text: str,
                      start: int) -> tuple[xq.ElementConstructor, int]:
    """Parse ``<tag ...>content</tag>`` starting at ``start`` (the ``<``).

    Returns the constructor and the offset just past its end tag.
    """
    scanner = _CharScanner(text, start)
    return scanner.element()


class _CharScanner:
    __slots__ = ("text", "pos")

    def __init__(self, text: str, pos: int):
        self.text = text
        self.pos = pos

    def error(self, message: str) -> QuerySyntaxError:
        return QuerySyntaxError(message, position=self.pos)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def name(self) -> str:
        start = self.pos
        text = self.text
        while self.pos < len(text) and (text[self.pos].isalnum()
                                        or text[self.pos] in "_-.:"):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name in constructor")
        return text[start:self.pos]

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r} in constructor")
        self.pos += len(literal)

    def element(self) -> tuple[xq.ElementConstructor, int]:
        self.expect("<")
        tag = self.name()
        attributes: list[tuple[str, xq.AttributeValue]] = []
        while True:
            self.skip_ws()
            ch = self.text[self.pos:self.pos + 1]
            if ch == ">":
                self.pos += 1
                break
            if self.text.startswith("/>", self.pos):
                self.pos += 2
                return (xq.ElementConstructor(tag, tuple(attributes), ()),
                        self.pos)
            name = self.name()
            self.skip_ws()
            self.expect("=")
            self.skip_ws()
            attributes.append((name, self.attribute_value()))
        children = self.content(tag)
        return (xq.ElementConstructor(tag, tuple(attributes),
                                      tuple(children)), self.pos)

    def attribute_value(self) -> xq.AttributeValue:
        quote = self.text[self.pos:self.pos + 1]
        if quote not in ("'", '"'):
            raise self.error("attribute value must be quoted")
        self.pos += 1
        parts: list = []
        buffer: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self.error("unterminated attribute value")
            ch = self.text[self.pos]
            if ch == quote:
                self.pos += 1
                break
            if ch == "{":
                if self.text.startswith("{{", self.pos):
                    buffer.append("{")
                    self.pos += 2
                    continue
                if buffer:
                    parts.append("".join(buffer))
                    buffer = []
                parts.append(xq.EnclosedExpr(self.enclosed()))
                continue
            if self.text.startswith("}}", self.pos):
                buffer.append("}")
                self.pos += 2
                continue
            buffer.append(ch)
            self.pos += 1
        if buffer:
            parts.append("".join(buffer))
        return xq.AttributeValue(tuple(parts))

    def content(self, tag: str) -> list:
        children: list = []
        buffer: list[str] = []

        def flush(strip_boundary: bool) -> None:
            if not buffer:
                return
            value = "".join(buffer)
            buffer.clear()
            if strip_boundary and not value.strip():
                return
            children.append(value)

        while True:
            if self.pos >= len(self.text):
                raise self.error(f"constructor <{tag}> is not closed")
            if self.text.startswith("</", self.pos):
                flush(strip_boundary=True)
                self.pos += 2
                closing = self.name()
                if closing != tag:
                    raise self.error(
                        f"mismatched constructor end tag </{closing}> "
                        f"(expected </{tag}>)")
                self.skip_ws()
                self.expect(">")
                return children
            ch = self.text[self.pos]
            if ch == "<":
                flush(strip_boundary=True)
                child, end = _CharScanner(self.text, self.pos).element()
                children.append(child)
                self.pos = end
                continue
            if ch == "{":
                if self.text.startswith("{{", self.pos):
                    buffer.append("{")
                    self.pos += 2
                    continue
                flush(strip_boundary=True)
                children.append(xq.EnclosedExpr(self.enclosed()))
                continue
            if self.text.startswith("}}", self.pos):
                buffer.append("}")
                self.pos += 2
                continue
            buffer.append(ch)
            self.pos += 1

    def enclosed(self) -> xq.Expr:
        """Parse ``{ expr }`` starting at the ``{``; returns the inner
        expression parsed by a fresh XQuery parser."""
        self.expect("{")
        depth = 1
        start = self.pos
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch in "'\"":
                closing = text.find(ch, self.pos + 1)
                if closing < 0:
                    raise self.error("unterminated string in enclosed "
                                     "expression")
                self.pos = closing + 1
                continue
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    inner = text[start:self.pos]
                    self.pos += 1
                    return parse_xquery(inner)
            self.pos += 1
        raise self.error("unterminated enclosed expression")


def parse_xquery(text: str) -> xq.Expr:
    """Parse an XQuery expression.  Raises
    :class:`~repro.errors.QuerySyntaxError` on bad input."""
    parser = XQueryParser(text)
    expr = parser.parse_expr()
    if parser.current.kind != EOF:
        raise QuerySyntaxError(
            f"unexpected trailing input {parser.current.value!r}",
            position=parser.current.position)
    return expr

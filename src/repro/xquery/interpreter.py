"""Reference XQuery interpreter: direct FLWOR semantics over model trees.

This extends the XPath reference evaluator with the XQuery forms.  Its
FLWOR evaluation is the *tuple-stream* reading of the paper's ``Env`` sort
(Definition 3): every clause refines a list of variable-binding tuples —
one tuple per root-to-leaf path of the layered environment of Fig. 2 — and
the return expression runs once per tuple.

Like :mod:`repro.xpath.semantics`, this is ground truth: the algebraic
strategies (pipelined, join-based, TPM) are differential-tested against it.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ExecutionError, QueryTypeError
from repro.xml import model
from repro.xpath import ast as xp
from repro.xpath.semantics import (
    Context,
    XPathEvaluator,
    effective_boolean_value,
    number_value,
    string_value,
)
from repro.xquery import ast as xq
from repro.xquery.functions import XQUERY_FUNCTIONS, atomize_item

__all__ = ["XQueryInterpreter", "evaluate_xquery", "clone_node",
           "sequence_to_string"]


def clone_node(node: model.Node) -> model.Node:
    """Deep-copy a node for insertion into a constructed tree (XQuery
    constructor content is copied, never moved)."""
    if isinstance(node, model.Document):
        copy = model.Document(uri=node.uri)
        for child in node.children():
            copy.append(clone_node(child))
        return copy
    if isinstance(node, model.Element):
        copy = model.Element(node.tag)
        for attribute in node.attributes():
            copy.set_attribute(attribute.attr_name, attribute.value)
        for child in node.children():
            copy.append(clone_node(child))
        return copy
    if isinstance(node, model.Text):
        return model.Text(node.value)
    if isinstance(node, model.Comment):
        return model.Comment(node.value)
    if isinstance(node, model.ProcessingInstruction):
        return model.ProcessingInstruction(node.target, node.data)
    if isinstance(node, model.Attribute):
        return model.Attribute(node.attr_name, node.value)
    raise ExecutionError(f"cannot copy {node!r}")  # pragma: no cover


class XQueryInterpreter(XPathEvaluator):
    """Evaluates XQuery ASTs.  ``documents`` maps URIs for ``doc()``."""

    def __init__(self, documents: Optional[dict[str, model.Document]] = None):
        self.documents = documents if documents is not None else {}

    # -- dispatch ---------------------------------------------------------------

    def evaluate(self, expr, context: Context):
        if isinstance(expr, xq.VarRef):
            if expr.name not in context.variables:
                raise ExecutionError(f"undefined variable ${expr.name}")
            return context.variables[expr.name]
        if isinstance(expr, xq.PathFrom):
            return self.evaluate_path_from(expr, context)
        if isinstance(expr, xq.FLWOR):
            return self.evaluate_flwor(expr, context)
        if isinstance(expr, xq.ElementConstructor):
            return [self.construct_element(expr, context)]
        if isinstance(expr, xq.IfExpr):
            condition = effective_boolean_value(
                self.evaluate(expr.condition, context))
            branch = expr.then_branch if condition else expr.else_branch
            return self.evaluate(branch, context)
        if isinstance(expr, xq.SequenceExpr):
            out: list = []
            for item in expr.items:
                out.extend(self.as_sequence(self.evaluate(item, context)))
            return out
        if isinstance(expr, xq.RangeExpr):
            low = number_value(self.evaluate(expr.low, context))
            high = number_value(self.evaluate(expr.high, context))
            if low != low or high != high:
                raise QueryTypeError("range bounds must be numeric")
            return [float(i) for i in range(int(low), int(high) + 1)]
        if isinstance(expr, xq.QuantifiedExpr):
            return self.evaluate_quantified(expr, context)
        if isinstance(expr, xq.EnclosedExpr):
            return self.evaluate(expr.expr, context)
        return super().evaluate(expr, context)

    def evaluate_function(self, call: xp.FunctionCall, context: Context):
        handler = XQUERY_FUNCTIONS.get(call.name)
        if handler is not None:
            args = [self.evaluate(arg, context) for arg in call.args]
            return handler(self, context, args, call)
        return super().evaluate_function(call, context)

    @staticmethod
    def as_sequence(value) -> list:
        return value if isinstance(value, list) else [value]

    # -- rooted paths ----------------------------------------------------------------

    def evaluate_path_from(self, expr: xq.PathFrom, context: Context):
        source = self.evaluate(expr.source, context)
        nodes = self.as_sequence(source)
        for item in nodes:
            if not isinstance(item, model.Node):
                raise QueryTypeError(
                    f"path step applied to non-node {item!r}")
        result = list(nodes)
        for step in expr.path.steps:
            result = self.evaluate_step(step, result, context)
        return result

    # -- FLWOR --------------------------------------------------------------------------

    def evaluate_flwor(self, flwor: xq.FLWOR, context: Context) -> list:
        bindings = [dict(context.variables)]
        for clause in flwor.clauses:
            bindings = self._apply_clause(clause, bindings, context)
        if flwor.where is not None:
            bindings = [
                binding for binding in bindings
                if effective_boolean_value(self.evaluate(
                    flwor.where, self._context_with(context, binding)))]
        if flwor.order_by:
            bindings = self._order(flwor.order_by, bindings, context)
        output: list = []
        for binding in bindings:
            value = self.evaluate(flwor.return_expr,
                                  self._context_with(context, binding))
            output.extend(self.as_sequence(value))
        return output

    def _apply_clause(self, clause, bindings: list[dict],
                      context: Context) -> list[dict]:
        expanded: list[dict] = []
        if isinstance(clause, xq.ForClause):
            for binding in bindings:
                value = self.evaluate(
                    clause.expr, self._context_with(context, binding))
                for position, item in enumerate(self.as_sequence(value),
                                                start=1):
                    child = dict(binding)
                    child[clause.variable] = [item]
                    if clause.position_var is not None:
                        child[clause.position_var] = [float(position)]
                    expanded.append(child)
            return expanded
        if isinstance(clause, xq.LetClause):
            for binding in bindings:
                value = self.evaluate(
                    clause.expr, self._context_with(context, binding))
                child = dict(binding)
                child[clause.variable] = self.as_sequence(value)
                expanded.append(child)
            return expanded
        raise ExecutionError(f"unknown clause {clause!r}")  # pragma: no cover

    def _order(self, specs, bindings: list[dict],
               context: Context) -> list[dict]:
        def key_for(binding: dict) -> tuple:
            keys = []
            for spec in specs:
                value = self.evaluate(
                    spec.expr, self._context_with(context, binding))
                items = self.as_sequence(value)
                if len(items) > 1:
                    raise QueryTypeError(
                        "order by key must be a single item")
                atom = atomize_item(items[0]) if items else ""
                number = number_value(atom)
                if number == number:  # orderable as a number
                    keys.append((0, number, ""))
                else:
                    keys.append((1, 0.0, string_value(atom)))
            return tuple(keys)

        decorated = [(key_for(binding), binding) for binding in bindings]
        # Stable sorts from the least-significant key up honour per-key
        # direction without needing comparable composite keys.
        for position in range(len(specs) - 1, -1, -1):
            reverse = specs[position].descending
            decorated.sort(key=lambda row, p=position: row[0][p],
                           reverse=reverse)
        return [binding for _, binding in decorated]

    @staticmethod
    def _context_with(context: Context, binding: dict) -> Context:
        return Context(context.node, context.position, context.size,
                       binding)

    # -- quantifiers -----------------------------------------------------------------------

    def evaluate_quantified(self, expr: xq.QuantifiedExpr,
                            context: Context) -> bool:
        source = self.as_sequence(self.evaluate(expr.source, context))
        results = []
        for item in source:
            binding = dict(context.variables)
            binding[expr.variable] = [item]
            results.append(effective_boolean_value(self.evaluate(
                expr.condition, self._context_with(context, binding))))
        if expr.quantifier == "some":
            return any(results)
        return all(results)

    # -- constructors -------------------------------------------------------------------------

    def construct_element(self, constructor: xq.ElementConstructor,
                          context: Context) -> model.Element:
        """Build a new element; the result is attached to a fresh document
        so document-order operations work on constructed trees."""
        element = self._build_element(constructor, context)
        document = model.Document()
        document.append(element)
        return element

    def _build_element(self, constructor: xq.ElementConstructor,
                       context: Context) -> model.Element:
        element = model.Element(constructor.tag)
        for name, template in constructor.attributes:
            element.set_attribute(name,
                                  self._attribute_text(template, context))
        for part in constructor.children:
            if isinstance(part, str):
                element.append_text(part)
            elif isinstance(part, xq.ElementConstructor):
                element.append(self._build_element(part, context))
            elif isinstance(part, xq.EnclosedExpr):
                value = self.evaluate(part.expr, context)
                self._insert_content(element, self.as_sequence(value))
            else:  # pragma: no cover - parser produces only these
                raise ExecutionError(f"bad constructor part {part!r}")
        return element

    def _attribute_text(self, template: xq.AttributeValue,
                        context: Context) -> str:
        parts: list[str] = []
        for part in template.parts:
            if isinstance(part, str):
                parts.append(part)
            else:
                value = self.evaluate(part.expr, context)
                items = self.as_sequence(value)
                parts.append(" ".join(
                    string_value([item]) if isinstance(item, model.Node)
                    else string_value(item) for item in items))
        return "".join(parts)

    def _insert_content(self, element: model.Element, items: list) -> None:
        """XQuery content insertion: copy nodes, space-join adjacent
        atomics into text."""
        pending_atoms: list[str] = []

        def flush() -> None:
            if pending_atoms:
                element.append_text(" ".join(pending_atoms))
                pending_atoms.clear()

        for item in items:
            if isinstance(item, model.Attribute):
                flush()
                element.set_attribute(item.attr_name, item.value)
            elif isinstance(item, model.Document):
                flush()
                for child in item.children():
                    element.append(clone_node(child))
            elif isinstance(item, model.Node):
                flush()
                element.append(clone_node(item))
            else:
                pending_atoms.append(string_value(item)
                                     if not isinstance(item, str) else item)
        flush()


def sequence_to_string(sequence) -> str:
    """Serialize an XQuery result sequence to text (nodes as XML, atomics
    space-separated) — handy for examples and tests."""
    from repro.xml.serializer import serialize

    parts: list[str] = []
    for item in (sequence if isinstance(sequence, list) else [sequence]):
        if isinstance(item, model.Node):
            parts.append(serialize(item))
        else:
            parts.append(string_value(item))
    return " ".join(parts)


def evaluate_xquery(text_or_ast,
                    documents: Optional[dict[str, model.Document]] = None,
                    context_node: Optional[model.Node] = None,
                    variables: Optional[dict] = None) -> list:
    """Evaluate an XQuery expression and return its result sequence.

    ``documents`` provides the inputs for ``doc()``/``document()``; when it
    holds exactly one document and no ``context_node`` is given, that
    document also serves as the context item (so absolute paths work).
    """
    from repro.xquery.parser import parse_xquery

    expr = (parse_xquery(text_or_ast) if isinstance(text_or_ast, str)
            else text_or_ast)
    documents = documents or {}
    if context_node is None and len(documents) == 1:
        context_node = next(iter(documents.values()))
    if context_node is None:
        context_node = model.Document()
    interpreter = XQueryInterpreter(documents)
    context = Context(context_node, variables=variables)
    result = interpreter.evaluate(expr, context)
    return result if isinstance(result, list) else [result]

"""NoK partitioning of general pattern graphs (Section 4.2).

    "Given a general path expression, we first partition it into
    interconnected NoK expressions, to which we apply the more efficient
    navigational pattern matching algorithm.  Then, we join the results
    of the NoK pattern matching based on their structural relationships,
    just as in the join-based approach."

:func:`partition_pattern` cuts the pattern graph at every non-local edge
(``//`` and ``~``), yielding a tree of :class:`Partition` objects — each a
pure child/attribute (NoK) subpattern.  :class:`PartitionedMatcher`
evaluates the root partition anchored at the query context and every other
partition unanchored, with all partition automata advancing on ONE shared
pre-order scan (:func:`repro.physical.nok.run_shared_scan`), then combines
the partial results with interval-based structural joins — counting
exactly how many joins the partitioning saved versus one-join-per-edge
(experiment E8).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Optional

from repro.algebra.pattern_graph import (
    PatternEdge,
    PatternGraph,
)
from repro.physical.base import (
    MatchRuntime,
    OperatorStats,
    single_output_vertex,
)
from repro.physical.nok import NoKMatcher, run_shared_scan

__all__ = ["Partition", "partition_pattern", "PartitionedMatcher"]


@dataclass
class Partition:
    """One NoK unit: a subpattern plus the mapping back to the original
    vertex ids."""

    index: int
    pattern: PatternGraph
    # original vertex id -> partition-local vertex id
    vertex_map: dict[int, int]
    # the cut edge connecting this partition's root to its parent
    # partition (None for the root partition)
    cut_edge: Optional[PatternEdge] = None
    parent_index: Optional[int] = None


def partition_pattern(pattern: PatternGraph) -> list[Partition]:
    """Cut at non-local edges; partitions come back in DFS order (root
    partition first), each with local vertices relabelled from 0."""
    partitions: list[Partition] = []
    # Assign each vertex to a partition: roots of partitions are the
    # pattern root plus every target of a non-local edge.
    partition_roots = {pattern.root}
    for edge in pattern.non_local_edges():
        partition_roots.add(edge.target)

    def build(root_vertex: int, cut_edge: Optional[PatternEdge],
              parent_index: Optional[int]) -> None:
        local = PatternGraph()
        vertex_map: dict[int, int] = {}
        pending_cuts: list[PatternEdge] = []

        def copy_vertex(original_id: int):
            original = pattern.vertices[original_id]
            vertex = local.add_vertex(
                original.labels, kind=original.kind,
                output=original.output)
            vertex.value_constraints = original.value_constraints
            vertex.residual = original.residual
            vertex_map[original_id] = vertex.vertex_id
            return vertex

        copy_vertex(root_vertex)
        stack = [root_vertex]
        while stack:
            current = stack.pop()
            for edge in pattern.children_of(current):
                if edge.target in partition_roots:
                    pending_cuts.append(edge)
                    continue
                copy_vertex(edge.target)
                local.add_edge(vertex_map[current],
                               vertex_map[edge.target], edge.relation)
                stack.append(edge.target)
        this_index = len(partitions)
        partitions.append(Partition(index=this_index, pattern=local,
                                    vertex_map=vertex_map,
                                    cut_edge=cut_edge,
                                    parent_index=parent_index))
        for edge in pending_cuts:
            build(edge.target, edge, this_index)

    build(pattern.root, None, None)
    return partitions


class PartitionedMatcher:
    """NoK per partition + structural joins across cut edges."""

    def __init__(self, pattern: PatternGraph):
        self.pattern = pattern
        self.partitions = partition_pattern(pattern)
        self.stats = OperatorStats()
        # Vertices whose bindings must survive into the joins: outputs,
        # plus the source vertices of cut edges.
        interesting = {v.vertex_id for v in pattern.output_vertices()}
        for partition in self.partitions:
            if partition.cut_edge is not None:
                interesting.add(partition.cut_edge.source)
        for partition in self.partitions:
            for original_id, local_id in partition.vertex_map.items():
                if original_id in interesting:
                    partition.pattern.vertices[local_id].output = True
            if partition.cut_edge is not None:
                # A child partition's root binding is the join key on the
                # cut edge, so it must survive into the tuples.
                partition.pattern.vertices[
                    partition.pattern.root].output = True
        # Per-partition reverse vertex maps and join-key arrays are
        # derived once and reused: _join re-sorts its right side only
        # when handed a different tuple list than last time.
        self._root_original: dict[int, int] = {}
        for partition in self.partitions:
            reverse = {local: original
                       for original, local in partition.vertex_map.items()}
            self._root_original[partition.index] = \
                reverse[partition.pattern.root]
        self._join_inputs: dict[int, tuple] = {}

    def run(self, runtime: MatchRuntime, root: int = 0) -> list[int]:
        """Distinct pre-order ids matching the (single) output vertex."""
        output_vertex = single_output_vertex(self.pattern)
        tuples = self.partition_tuples(runtime, root)
        results = sorted({binding[output_vertex.vertex_id]
                          for binding in tuples
                          if output_vertex.vertex_id in binding})
        self.stats.solutions = len(results)
        return results

    def partition_tuples(self, runtime: MatchRuntime,
                         root: int = 0) -> list[dict]:
        """Joined binding tuples over all partitions: every partition's
        NoK automaton advances on ONE shared pre-order scan (the paper's
        single pass), then the partial results join across cut edges."""
        matchers = [NoKMatcher(partition.pattern,
                               anchored=partition.cut_edge is None)
                    for partition in self.partitions]
        self.stats.note("partitions", len(self.partitions))
        self.stats.note("nok.shared_scans")
        binding_lists = run_shared_scan(runtime, matchers, root=root)
        # One scan: count its node visits once, candidate work per
        # matcher.
        self.stats.nodes_visited += matchers[0].stats.nodes_visited
        for matcher in matchers:
            self.stats.intermediate_results += \
                matcher.stats.intermediate_results

        per_partition: list[list[dict]] = []
        for partition, bindings in zip(self.partitions, binding_lists):
            reverse = {local: original
                       for original, local in partition.vertex_map.items()}
            per_partition.append(
                [{reverse[local]: node for local, node in binding.items()}
                 for binding in bindings])

        tuples = per_partition[0]
        for partition, child_tuples in zip(self.partitions[1:],
                                           per_partition[1:]):
            tuples = self._join(runtime, tuples, child_tuples, partition)
            self.stats.structural_joins += 1
        return tuples

    def _join(self, runtime: MatchRuntime, left: list[dict],
              right: list[dict], partition: Partition) -> list[dict]:
        """Join the accumulated tuples with a partition's tuples across
        its cut edge (sort + interval merge, stack-tree style)."""
        edge = partition.cut_edge
        root_original = self._root_original[partition.index]
        cached = self._join_inputs.get(partition.index)
        if cached is not None and cached[0] is right:
            _, right_sorted, right_keys = cached
        else:
            right_sorted = sorted(right,
                                  key=lambda t: t.get(root_original, -1))
            right_keys = [t.get(root_original, -1) for t in right_sorted]
            self._join_inputs[partition.index] = (right, right_sorted,
                                                  right_keys)
        joined: list[dict] = []
        for binding in left:
            anchor = binding.get(edge.source)
            if anchor is None:
                continue
            if edge.relation == "~":
                candidates = self._sibling_candidates(
                    runtime, anchor, right_sorted, right_keys,
                    root_original)
            else:  # '//'
                pre, end = runtime.pre_end(anchor)
                low = bisect_right(right_keys, pre)
                high = bisect_right(right_keys, end)
                candidates = right_sorted[low:high]
            for other in candidates:
                joined.append({**binding, **other})
        self.stats.intermediate_results += len(joined)
        return joined

    def _sibling_candidates(self, runtime: MatchRuntime, anchor: int,
                            right_sorted: list[dict], right_keys: list[int],
                            root_original: int) -> list[dict]:
        parent = runtime.interval.node(anchor).parent
        if parent < 0:
            return []
        parent_record = runtime.interval.node(parent)
        low = bisect_right(right_keys, anchor)
        high = bisect_right(right_keys, parent_record.end)
        return [t for t in right_sorted[low:high]
                if runtime.interval.node(t[root_original]).parent == parent]

    def _partition_root_original(self, partition: Partition) -> int:
        return self._root_original[partition.index]

    def join_count(self) -> int:
        """Structural joins a partitioned plan performs (== cut edges) —
        versus one per edge for the join-per-edge baseline."""
        return len(self.partitions) - 1

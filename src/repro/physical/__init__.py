"""Physical operators (Section 4 of the paper).

The star is the **NoK (next-of-kin) pattern matcher**
(:mod:`repro.physical.nok`): a single-scan navigational evaluator for
patterns built from local structural relationships, running over the
succinct storage — no structural joins.  General patterns are split by the
**partitioner** (:mod:`repro.physical.partition`) into interconnected NoK
units whose partial results are combined with structural joins, "just as
in the join-based approach" (Section 4.2).

The join-based baselines from the literature are implemented in full:

* :mod:`repro.physical.structural_join` — the stack-tree binary join
  (Al-Khalifa et al., ICDE 2002),
* :mod:`repro.physical.pathstack` — the PathStack holistic path join,
* :mod:`repro.physical.twigstack` — the TwigStack holistic twig join
  (Bruno et al., SIGMOD 2002),

plus :mod:`repro.physical.navigational` — the node-at-a-time traversal
standing in for the commercial native system of the paper's experiments.

:mod:`repro.physical.planner` lowers a logical τ to the cheapest strategy
using the cost model; every strategy is differential-tested against the
reference evaluator.
"""

from repro.physical.base import MatchRuntime, OperatorStats
from repro.physical.navigational import NavigationalMatcher
from repro.physical.nok import NoKMatcher
from repro.physical.partition import PartitionedMatcher, partition_pattern
from repro.physical.pathstack import PathStackJoin
from repro.physical.planner import PhysicalPlanner
from repro.physical.structural_join import StackTreeJoin
from repro.physical.twigstack import TwigStackJoin

__all__ = [
    "MatchRuntime",
    "NavigationalMatcher",
    "NoKMatcher",
    "OperatorStats",
    "PartitionedMatcher",
    "PathStackJoin",
    "PhysicalPlanner",
    "StackTreeJoin",
    "TwigStackJoin",
    "partition_pattern",
]

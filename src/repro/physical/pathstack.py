"""PathStack — the holistic path join (Bruno/Koudas/Srivastava, SIGMOD'02).

Evaluates a *linear* pattern (a chain q1/q2/.../qn of ancestor-descendant
or parent-child edges) over the per-tag posting streams in one merge pass
with one stack per pattern vertex, never producing an intermediate list
larger than the final result — the holistic answer to the binary-join
blow-up.

This implementation returns the distinct matches of the chain's output
vertex.  Parent-child edges are checked during stack linking (classic
PathStack handles them by post-filtering; checking at push time is
equivalent for path patterns and keeps the stacks minimal).
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.storage.interval import IntervalNode
from repro.algebra.pattern_graph import (
    REL_DESCENDANT,
    REL_SIBLING,
    PatternGraph,
)
from repro.physical.base import (
    MatchRuntime,
    OperatorStats,
    single_output_vertex,
)
from repro.physical.structural_join import BinaryJoinMatcher

__all__ = ["PathStackJoin"]


class _StackEntry:
    __slots__ = ("record", "parent_index")

    def __init__(self, record: IntervalNode, parent_index: int):
        self.record = record
        self.parent_index = parent_index  # index into the previous stack


class PathStackJoin:
    """Holistic evaluation of a linear pattern."""

    def __init__(self, pattern: PatternGraph):
        self.pattern = pattern
        self.stats = OperatorStats()
        self._chain = self._linearise(pattern)

    @staticmethod
    def _linearise(pattern: PatternGraph) -> list:
        """The chain of (vertex, relation-from-previous); raises if the
        pattern branches (use TwigStack for twigs)."""
        chain = []
        vertex_id = pattern.root
        while True:
            edges = pattern.children_of(vertex_id)
            if not edges:
                break
            if len(edges) > 1:
                raise ExecutionError(
                    "PathStack evaluates linear paths only; the pattern "
                    "branches (use TwigStack)")
            edge = edges[0]
            if edge.relation == REL_SIBLING:
                raise ExecutionError(
                    "PathStack stacks encode containment; following-"
                    "sibling edges need the partitioned strategy")
            chain.append((edge.target, edge.relation))
            vertex_id = edge.target
        if not chain:
            raise ExecutionError("pattern has no steps")
        return chain

    def run(self, runtime: MatchRuntime, root: int = 0) -> list[int]:
        """Distinct pre-order ids of the output vertex's matches."""
        pattern = self.pattern
        output_vertex = single_output_vertex(pattern)
        output_position = next(
            index for index, (vertex_id, _) in enumerate(self._chain)
            if vertex_id == output_vertex.vertex_id)

        streams = self._open_streams(runtime, root)
        for (vertex_id, _), stream in zip(self._chain, streams):
            self.stats.note(
                f"stream.{pattern.vertices[vertex_id].label_text()}",
                len(stream))
        positions = [0] * len(streams)
        stacks: list[list[_StackEntry]] = [[] for _ in self._chain]
        results: set[int] = set()

        def current(index: int):
            if positions[index] < len(streams[index]):
                return streams[index][positions[index]]
            return None

        while True:
            # Pick the stream whose head has the smallest pre (min merge).
            smallest = None
            for index in range(len(streams)):
                head = current(index)
                if head is None:
                    continue
                if smallest is None or head.pre < current(smallest).pre:
                    smallest = index
            if smallest is None:
                break
            record = current(smallest)
            positions[smallest] += 1
            self.stats.postings_scanned += 1

            # Pop entries that ended before this record starts.
            for stack in stacks:
                while stack and stack[-1].record.end < record.pre:
                    stack.pop()

            relation = self._chain[smallest][1]
            if smallest == 0:
                parent_index = 0  # anchored at the scan root
                stacks[0].append(_StackEntry(record, parent_index))
                self.stats.intermediate_results += 1
            else:
                upper = stacks[smallest - 1]
                link = self._link_index(upper, record, relation)
                if link is None:
                    continue
                stacks[smallest].append(_StackEntry(record, link))
                self.stats.intermediate_results += 1
            if smallest == len(self._chain) - 1:
                # A full root-to-leaf chain exists; walk the links to
                # find the output vertex's node on this solution path.
                self._emit(stacks, output_position, results)
        result = sorted(results)
        self.stats.solutions = len(result)
        return result

    @staticmethod
    def _link_index(upper: list[_StackEntry], record: IntervalNode,
                    relation: str):
        """Topmost compatible entry in the upper stack, or None."""
        for index in range(len(upper) - 1, -1, -1):
            entry = upper[index]
            if not entry.record.contains(record):
                continue
            if relation == REL_DESCENDANT:
                return index
            # parent-child / attribute: exactly one level apart.
            if record.parent == entry.record.pre:
                return index
        return None

    def _emit(self, stacks: list[list[_StackEntry]], output_position: int,
              results: set[int]) -> None:
        """The just-pushed leaf closes ≥1 solutions; collect the output
        column along every linked chain through the stacks.

        For a ``//`` link, every stack entry *below* the linked one is a
        nested ancestor of it and therefore also part of a solution; for
        ``/`` the linked entry is the unique parent.
        """
        leaf_stack = stacks[-1]
        frontier = [(len(stacks) - 1, len(leaf_stack) - 1)]
        while frontier:
            level, index = frontier.pop()
            if level == output_position:
                results.add(stacks[level][index].record.pre)
                # Everything above the output level shares the same
                # sub-chain; no need to fan out further.
                continue
            entry = stacks[level][index]
            relation = self._chain[level][1]
            if relation == REL_DESCENDANT:
                for upper_index in range(entry.parent_index + 1):
                    frontier.append((level - 1, upper_index))
            else:
                frontier.append((level - 1, entry.parent_index))

    def _open_streams(self, runtime: MatchRuntime,
                      root: int) -> list[list[IntervalNode]]:
        root_record = runtime.interval.node(root)
        streams = []
        for vertex_id, _ in self._chain:
            vertex = self.pattern.vertices[vertex_id]
            postings = BinaryJoinMatcher._postings_for(runtime, vertex)
            kept = []
            first_relation = self._chain[0][1]
            is_first = vertex_id == self._chain[0][0]
            for record in postings:
                if record.pre <= root_record.pre \
                        or record.pre > root_record.end:
                    continue
                if is_first and first_relation != REL_DESCENDANT \
                        and record.parent != root_record.pre:
                    continue
                if vertex.value_constraints \
                        and not runtime.value_ok(vertex, record.pre):
                    continue
                if vertex.residual \
                        and not runtime.residual_ok(vertex, record.pre):
                    continue
                kept.append(record)
            streams.append(kept)
        return streams

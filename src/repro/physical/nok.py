"""The NoK (next-of-kin) pattern matcher — single-scan evaluation.

Section 4.2: "We have also identified a subset of the path expression,
which we call next-of-kin (NoK) expressions, consisting of only those
local structural relationships.  The evaluation of NoK expressions can be
performed more efficiently using a navigational technique based on our
physical storage structures without the need for structural joins."

The matcher consumes the pre-order scan of the succinct storage — one
sequential pass, the same order as streaming XML arrival — and maintains,
for every *open* node, the set of pattern vertices it may match.  A node's
match is *confirmed* at its close parenthesis, when all required child
edges have been satisfied by its (already closed) children; confirmations
propagate upward along the path stack.  Memory is O(depth × |pattern|)
plus output bindings.

Two modes:

* :meth:`NoKMatcher.run` — over a :class:`MatchRuntime` (storage mode);
  value constraints and residual predicates use the runtime's accessors.
* :meth:`NoKMatcher.run_stream` — over a raw parse-event stream
  (experiment E9: "the path query evaluation algorithm can also be used
  in the streaming context"); element text is buffered only while a
  value-constrained candidate is open.

Supported edges: ``/`` and ``@`` (the NoK relations the single scan can
resolve).  ``~`` (following-sibling) and ``//`` are partition boundaries
handled by :mod:`repro.physical.partition`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import ExecutionError
from repro.xml.events import (
    Characters,
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
)
from repro.algebra.operators import compare_values
from repro.algebra.pattern_graph import (
    REL_ATTRIBUTE,
    REL_CHILD,
    PatternGraph,
)
from repro.physical.base import MatchRuntime, OperatorStats
from repro.storage.succinct import KIND_ATTRIBUTE

__all__ = ["NoKMatcher"]

_NOK_RELATIONS = frozenset({REL_CHILD, REL_ATTRIBUTE})


class _Candidate:
    """A node tentatively matching one pattern vertex."""

    __slots__ = ("vertex_id", "node", "parent", "edge_index",
                 "edge_bindings", "edge_satisfied", "text_parts")

    def __init__(self, vertex_id: int, node: int,
                 parent: Optional["_Candidate"], edge_index: Optional[int],
                 edge_count: int):
        self.vertex_id = vertex_id
        self.node = node
        self.parent = parent
        self.edge_index = edge_index
        # Per child edge: collected output bindings (only for edges whose
        # subtree contains output vertices) and a satisfied flag.
        self.edge_bindings: list[list[dict]] = [[] for _ in
                                                range(edge_count)]
        self.edge_satisfied = [False] * edge_count
        self.text_parts: Optional[list[str]] = None  # streaming mode


class _Frame:
    __slots__ = ("node", "candidates")

    def __init__(self, node: int):
        self.node = node
        self.candidates: list[_Candidate] = []


class NoKMatcher:
    """Single-scan matcher for a NoK pattern."""

    def __init__(self, pattern: PatternGraph, anchored: bool = True):
        for edge in pattern.edges:
            if edge.relation not in _NOK_RELATIONS:
                raise ExecutionError(
                    f"NoK matcher cannot evaluate a {edge.relation!r} edge; "
                    "partition the pattern first")
        self.pattern = pattern
        self.anchored = anchored
        self.stats = OperatorStats()
        # Precompute per-vertex edge lists and which edges carry outputs.
        self._edges = {vid: pattern.children_of(vid)
                       for vid in pattern.vertices}
        self._edge_has_outputs = {}
        for vid, edges in self._edges.items():
            flags = []
            for edge in edges:
                has = pattern.vertices[edge.target].output or any(
                    pattern.vertices[d].output
                    for d in pattern.descendants_of(edge.target))
                flags.append(has)
            self._edge_has_outputs[vid] = flags
        self._root = pattern.root

    # -- storage mode ---------------------------------------------------------------

    def run(self, runtime: MatchRuntime, root: int = 0) -> list[dict]:
        """Match over the succinct storage, scanning the subtree at
        ``root``.  Returns the distinct output-vertex bindings.

        The hot loop iterates the balanced-parentheses words directly —
        this single pass over the structure segment is the whole
        algorithm, so it is written for throughput: candidates are only
        allocated along paths whose tags match the pattern.
        """
        runtime.charge_structure_scan()
        self.stats.note("nok.structure_scans")
        succinct = runtime.succinct
        tags = succinct._tags
        node_kinds = succinct._kinds
        symbols = succinct._symbols
        pattern_vertices = self.pattern.vertices
        edges_map = self._edges
        anchored = self.anchored
        root_vertex_id = self._root
        root_vertex = pattern_vertices[root_vertex_id]

        bp = succinct.bp
        position = bp.position(root)
        end_position = bp.find_close(position)
        words = bp.bits._words

        # Stack entries are candidate lists (None = no active candidates
        # on this path — the common case, kept allocation-free).
        stack: list = []
        results: list[dict] = []
        preorder = root
        visited = 0
        index = position
        while index <= end_position:
            word = words[index >> 6]
            offset = index & 63
            limit = min(64, end_position - index + offset + 1)
            while offset < limit:
                if (word >> offset) & 1:
                    node = preorder
                    preorder += 1
                    visited += 1
                    candidates = None
                    parent_candidates = stack[-1] if stack else None
                    if parent_candidates or not anchored or node == root:
                        is_attribute = node_kinds[node] == KIND_ATTRIBUTE
                        tag = symbols[tags[node]]
                        if parent_candidates:
                            for parent_candidate in parent_candidates:
                                for edge_index, edge in enumerate(
                                        edges_map[
                                            parent_candidate.vertex_id]):
                                    if (edge.relation == REL_ATTRIBUTE) \
                                            != is_attribute:
                                        continue
                                    target = pattern_vertices[edge.target]
                                    if not target.matches_tag(tag):
                                        continue
                                    if candidates is None:
                                        candidates = []
                                    candidates.append(_Candidate(
                                        edge.target, node,
                                        parent_candidate, edge_index,
                                        len(edges_map[edge.target])))
                        if (node == root and anchored) or (
                                not anchored
                                and root_vertex.matches_tag(tag)):
                            if candidates is None:
                                candidates = []
                            candidates.append(_Candidate(
                                root_vertex_id, node, None, None,
                                len(edges_map[root_vertex_id])))
                    stack.append(candidates)
                else:
                    candidates = stack.pop()
                    if candidates:
                        for candidate in candidates:
                            self._close_candidate(
                                candidate, results,
                                value_ok=runtime.value_ok,
                                residual_ok=runtime.residual_ok)
                offset += 1
            index += limit - (index & 63)
        self.stats.nodes_visited += visited
        self.stats.solutions = len(results)
        return _dedup_bindings(results)

    # -- streaming mode -----------------------------------------------------------------

    def run_stream(self, events: Iterable[Event],
                   keep_whitespace: bool = False) -> list[dict]:
        """Match over a raw parse-event stream without building any
        storage.  Node handles in the output are stream pre-order ids,
        assigned exactly as the storage builder assigns them (adjacent
        text runs merge; whitespace-only runs are skipped unless
        ``keep_whitespace``) so streaming and storage results align.

        Residual predicates are unsupported here (they need the engine's
        document); value constraints are checked against buffered text.
        """
        if self.pattern.has_residuals():
            raise ExecutionError(
                "streaming evaluation cannot check residual predicates")
        pattern = self.pattern
        stack: list[_Frame] = []
        results: list[dict] = []
        preorder = 0
        constrained_open = 0
        pending_text: list[str] = []

        def vertex_constrained(vertex_id: int) -> bool:
            return bool(pattern.vertices[vertex_id].value_constraints)

        def open_node(tag: str, is_attribute: bool,
                      text: Optional[str] = None) -> _Frame:
            nonlocal preorder, constrained_open
            self.stats.nodes_visited += 1
            frame = _Frame(preorder)
            parent_frame = stack[-1] if stack else None
            self._open_candidates(frame, preorder, tag, is_attribute,
                                  parent_frame,
                                  is_scan_root=(not stack))
            preorder += 1
            for candidate in frame.candidates:
                if vertex_constrained(candidate.vertex_id):
                    candidate.text_parts = [] if text is None else [text]
                    constrained_open += 1
            return frame

        def close_frame(frame: _Frame) -> None:
            nonlocal constrained_open
            for candidate in frame.candidates:
                text = None
                if candidate.text_parts is not None:
                    text = "".join(candidate.text_parts)
                    constrained_open -= 1
                self._close_candidate(
                    candidate, results,
                    value_ok=lambda vertex, node, t=text: _stream_value_ok(
                        vertex, t),
                    residual_ok=lambda vertex, node: True)

        def flush_text() -> None:
            """Materialise a merged text run as one node (mirrors the
            storage builder: whitespace-only runs vanish by default)."""
            if not pending_text:
                return
            value = "".join(pending_text)
            pending_text.clear()
            if not keep_whitespace and not value.strip():
                return
            text_frame = open_node("#text", False, text=value)
            close_frame(text_frame)
            if constrained_open:
                for frame in stack:
                    for candidate in frame.candidates:
                        if candidate.text_parts is not None:
                            candidate.text_parts.append(value)

        for event in events:
            if isinstance(event, StartDocument):
                stack.append(open_node("#document", False))
            elif isinstance(event, StartElement):
                flush_text()
                frame = open_node(event.tag, False)
                stack.append(frame)
                for name, value in event.attributes:
                    attribute_frame = open_node("@" + name, True,
                                                text=value)
                    close_frame(attribute_frame)
            elif isinstance(event, Characters):
                pending_text.append(event.value)
            elif isinstance(event, EndElement):
                flush_text()
                close_frame(stack.pop())
            elif isinstance(event, EndDocument):
                flush_text()
                close_frame(stack.pop())
        self.stats.solutions = len(results)
        return _dedup_bindings(results)

    # -- shared core ------------------------------------------------------------------------

    def _open_candidates(self, frame: _Frame, node: int, tag: str,
                         is_attribute: bool,
                         parent_frame: Optional[_Frame],
                         is_scan_root: bool) -> None:
        pattern = self.pattern
        if parent_frame is not None:
            for parent_candidate in parent_frame.candidates:
                edges = self._edges[parent_candidate.vertex_id]
                for index, edge in enumerate(edges):
                    wants_attribute = edge.relation == REL_ATTRIBUTE
                    if wants_attribute != is_attribute:
                        continue
                    target = pattern.vertices[edge.target]
                    if not target.matches_tag(tag):
                        continue
                    frame.candidates.append(_Candidate(
                        edge.target, node, parent_candidate, index,
                        len(self._edges[edge.target])))
        if is_scan_root and self.anchored:
            frame.candidates.append(_Candidate(
                self._root, node, None, None, len(self._edges[self._root])))
        elif not self.anchored:
            root_vertex = pattern.vertices[self._root]
            if root_vertex.matches_tag(tag):
                frame.candidates.append(_Candidate(
                    self._root, node, None, None,
                    len(self._edges[self._root])))

    def _close_candidate(self, candidate: _Candidate, results: list[dict],
                         value_ok, residual_ok) -> None:
        pattern = self.pattern
        vertex = pattern.vertices[candidate.vertex_id]
        if not all(candidate.edge_satisfied):
            return
        if vertex.value_constraints and not value_ok(vertex,
                                                     candidate.node):
            return
        if vertex.residual and not residual_ok(vertex, candidate.node):
            return
        # Combine child bindings (cross product over output-carrying
        # edges; existence-only edges contribute nothing).
        bindings: list[dict] = [{}]
        has_output_flags = self._edge_has_outputs[candidate.vertex_id]
        for index, edge_list in enumerate(candidate.edge_bindings):
            if not has_output_flags[index]:
                continue
            bindings = [{**existing, **extra}
                        for existing in bindings for extra in edge_list]
        if vertex.output:
            for binding in bindings:
                binding[candidate.vertex_id] = candidate.node
        self.stats.intermediate_results += len(bindings)
        parent = candidate.parent
        if parent is None:
            results.extend(bindings)
            return
        index = candidate.edge_index
        parent.edge_satisfied[index] = True
        if self._edge_has_outputs[parent.vertex_id][index]:
            parent.edge_bindings[index].extend(bindings)


def run_shared_scan(runtime: MatchRuntime, matchers: list["NoKMatcher"],
                    root: int = 0) -> list[list[dict]]:
    """Drive several NoK automata over ONE pre-order scan.

    This is how the partitioned evaluation of Section 4.2 keeps its
    promise of "a single scan of the input data": the matchers' patterns
    are merged into a single automaton (vertex ids offset per matcher),
    so the per-node cost stays that of one matcher — the root-candidacy
    test for unanchored partitions is a tag-table lookup, not a loop over
    partitions.  Returns one binding list per matcher (same order).
    """
    runtime.charge_structure_scan()
    succinct = runtime.succinct
    tags = succinct._tags
    node_kinds = succinct._kinds
    symbols = succinct._symbols

    # Merge the patterns into one vertex space.
    merged_vertices: dict[int, object] = {}
    merged_edges: dict[int, list] = {}
    merged_edge_has_outputs: dict[int, list[bool]] = {}
    owner_of: dict[int, int] = {}       # merged vertex id -> matcher index
    bases: list[int] = []
    roots_by_label: dict[str, list[int]] = {}   # unanchored, labelled roots
    open_roots: list[int] = []                  # unanchored wildcard roots
    anchored_roots: list[int] = []              # anchor only at scan root
    base = 0
    for matcher_index, matcher in enumerate(matchers):
        bases.append(base)
        pattern = matcher.pattern
        for vertex_id, vertex in pattern.vertices.items():
            merged = base + vertex_id
            merged_vertices[merged] = vertex
            owner_of[merged] = matcher_index
            merged_edges[merged] = [
                _MergedEdge(edge.relation, base + edge.target)
                for edge in matcher._edges[vertex_id]]
            merged_edge_has_outputs[merged] = \
                matcher._edge_has_outputs[vertex_id]
        merged_root = base + matcher._root
        root_vertex = pattern.vertices[matcher._root]
        if matcher.anchored:
            anchored_roots.append(merged_root)
        elif root_vertex.labels is None:
            open_roots.append(merged_root)
        else:
            for label in root_vertex.labels:
                key = ("@" + label if root_vertex.kind == "attribute"
                       else label)
                roots_by_label.setdefault(key, []).append(merged_root)
        base += pattern.vertex_count()

    bp = succinct.bp
    position = bp.position(root)
    end_position = bp.find_close(position)
    words = bp.bits._words

    stack: list = []
    raw_results: list[list[dict]] = [[] for _ in matchers]
    value_ok = runtime.value_ok
    residual_ok = runtime.residual_ok
    shared_stats = OperatorStats()

    preorder = root
    visited = 0
    index = position
    while index <= end_position:
        word = words[index >> 6]
        offset = index & 63
        limit = min(64, end_position - index + offset + 1)
        while offset < limit:
            if (word >> offset) & 1:
                node = preorder
                preorder += 1
                visited += 1
                is_attribute = node_kinds[node] == KIND_ATTRIBUTE
                tag = symbols[tags[node]]
                candidates = None
                parent_candidates = stack[-1] if stack else None
                if parent_candidates:
                    for parent_candidate in parent_candidates:
                        for edge_index, edge in enumerate(
                                merged_edges[parent_candidate.vertex_id]):
                            if (edge.relation == REL_ATTRIBUTE) \
                                    != is_attribute:
                                continue
                            target = merged_vertices[edge.target]
                            if not target.matches_tag(tag):
                                continue
                            if candidates is None:
                                candidates = []
                            candidates.append(_Candidate(
                                edge.target, node, parent_candidate,
                                edge_index, len(merged_edges[edge.target])))
                for merged_root in roots_by_label.get(tag, ()):
                    if candidates is None:
                        candidates = []
                    candidates.append(_Candidate(
                        merged_root, node, None, None,
                        len(merged_edges[merged_root])))
                for merged_root in open_roots:
                    if merged_vertices[merged_root].matches_tag(tag):
                        if candidates is None:
                            candidates = []
                        candidates.append(_Candidate(
                            merged_root, node, None, None,
                            len(merged_edges[merged_root])))
                if node == root:
                    for merged_root in anchored_roots:
                        if candidates is None:
                            candidates = []
                        candidates.append(_Candidate(
                            merged_root, node, None, None,
                            len(merged_edges[merged_root])))
                stack.append(candidates)
            else:
                candidates = stack.pop()
                if candidates:
                    for candidate in candidates:
                        _close_merged(candidate, raw_results, owner_of,
                                      merged_vertices, merged_edges,
                                      merged_edge_has_outputs, bases,
                                      shared_stats, value_ok, residual_ok)
            offset += 1
        index += limit - (index & 63)
    for matcher_index, matcher in enumerate(matchers):
        matcher.stats.nodes_visited += visited
        matcher.stats.intermediate_results += \
            shared_stats.intermediate_results // max(1, len(matchers))
        matcher.stats.solutions = len(raw_results[matcher_index])
    return [_dedup_bindings(bindings) for bindings in raw_results]


class _MergedEdge:
    __slots__ = ("relation", "target")

    def __init__(self, relation: str, target: int):
        self.relation = relation
        self.target = target


def _close_merged(candidate: _Candidate, raw_results, owner_of,
                  merged_vertices, merged_edges, merged_edge_has_outputs,
                  bases, stats: OperatorStats, value_ok, residual_ok) -> None:
    """Confirm-or-discard for a merged-automaton candidate; bindings are
    emitted in the owning matcher's local vertex ids."""
    vertex = merged_vertices[candidate.vertex_id]
    if not all(candidate.edge_satisfied):
        return
    if vertex.value_constraints and not value_ok(vertex, candidate.node):
        return
    if vertex.residual and not residual_ok(vertex, candidate.node):
        return
    bindings: list[dict] = [{}]
    has_output_flags = merged_edge_has_outputs[candidate.vertex_id]
    for index, edge_list in enumerate(candidate.edge_bindings):
        if not has_output_flags[index]:
            continue
        bindings = [{**existing, **extra}
                    for existing in bindings for extra in edge_list]
    owner = owner_of[candidate.vertex_id]
    if vertex.output:
        local_id = candidate.vertex_id - bases[owner]
        for binding in bindings:
            binding[local_id] = candidate.node
    stats.intermediate_results += len(bindings)
    parent = candidate.parent
    if parent is None:
        raw_results[owner].extend(bindings)
        return
    index = candidate.edge_index
    parent.edge_satisfied[index] = True
    if merged_edge_has_outputs[parent.vertex_id][index]:
        parent.edge_bindings[index].extend(bindings)


def _stream_value_ok(vertex, text: Optional[str]) -> bool:
    if text is None:
        return not vertex.value_constraints
    return all(compare_values(op, text, literal)
               for op, literal in vertex.value_constraints)


def _dedup_bindings(bindings: list[dict]) -> list[dict]:
    """Distinct bindings, ordered by their (sorted) node ids."""
    unique: dict[tuple, dict] = {}
    for binding in bindings:
        key = tuple(sorted(binding.items()))
        unique.setdefault(key, binding)
    return [unique[key] for key in sorted(unique)]

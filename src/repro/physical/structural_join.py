"""Stack-tree structural join (Al-Khalifa et al., ICDE 2002).

The primitive of the join-based approach: given two document-ordered lists
of nodes, produce the pairs (or just the descendants/ancestors) satisfying
an ancestor-descendant / parent-child / following-sibling relationship, in
one merge pass with a stack of nested ancestors.

Also provides :class:`BinaryJoinMatcher`: the "one structural join per
pattern edge" evaluation of a whole pattern graph (the baseline the paper
says "could pose optimization difficulties" because every structural
constraint pays a join) — a bottom-up semi-join pass followed by a
top-down pass, counting every intermediate list.
"""

from __future__ import annotations

from typing import Optional

from repro.storage.interval import IntervalNode
from repro.algebra.pattern_graph import (
    REL_ATTRIBUTE,
    REL_CHILD,
    REL_DESCENDANT,
    REL_SIBLING,
    PatternGraph,
)
from repro.physical.base import (
    MatchRuntime,
    OperatorStats,
    single_output_vertex,
)

__all__ = ["StackTreeJoin", "BinaryJoinMatcher"]


class StackTreeJoin:
    """One binary structural join between two posting lists."""

    def __init__(self, relation: str = REL_DESCENDANT,
                 stats: Optional[OperatorStats] = None):
        if relation not in (REL_CHILD, REL_DESCENDANT, REL_ATTRIBUTE,
                            REL_SIBLING):
            raise ValueError(f"unknown relation {relation!r}")
        self.relation = relation
        self.stats = stats if stats is not None else OperatorStats()

    # -- the merge ----------------------------------------------------------------

    def pairs(self, ancestors: list[IntervalNode],
              descendants: list[IntervalNode]
              ) -> list[tuple[IntervalNode, IntervalNode]]:
        """All matching (left, right) pairs, right side in document
        order."""
        self.stats.structural_joins += 1
        self.stats.note(f"join.{self.relation}")
        if self.relation == REL_SIBLING:
            return self._sibling_pairs(ancestors, descendants)
        output: list[tuple[IntervalNode, IntervalNode]] = []
        stack: list[IntervalNode] = []
        a_index = 0
        for descendant in descendants:
            self.stats.postings_scanned += 1
            while (a_index < len(ancestors)
                   and ancestors[a_index].pre < descendant.pre):
                candidate = ancestors[a_index]
                self.stats.postings_scanned += 1
                while stack and stack[-1].end < candidate.pre:
                    stack.pop()
                stack.append(candidate)
                a_index += 1
            while stack and stack[-1].end < descendant.pre:
                stack.pop()
            for ancestor in stack:
                if self._matches(ancestor, descendant):
                    output.append((ancestor, descendant))
        self.stats.intermediate_results += len(output)
        return output

    def _matches(self, ancestor: IntervalNode,
                 descendant: IntervalNode) -> bool:
        if not ancestor.contains(descendant):
            return False
        if self.relation == REL_DESCENDANT:
            return True
        # parent-child (and element-attribute, which is also one level).
        return ancestor.level + 1 == descendant.level \
            and descendant.parent == ancestor.pre

    def _sibling_pairs(self, lefts: list[IntervalNode],
                       rights: list[IntervalNode]
                       ) -> list[tuple[IntervalNode, IntervalNode]]:
        """Following-sibling join: group by parent, then order merge."""
        by_parent: dict[int, list[IntervalNode]] = {}
        for right in rights:
            self.stats.postings_scanned += 1
            by_parent.setdefault(right.parent, []).append(right)
        output: list[tuple[IntervalNode, IntervalNode]] = []
        for left in lefts:
            self.stats.postings_scanned += 1
            for right in by_parent.get(left.parent, ()):
                if right.pre > left.pre:
                    output.append((left, right))
        self.stats.intermediate_results += len(output)
        return output

    # -- projections --------------------------------------------------------------

    def descendants(self, ancestors: list[IntervalNode],
                    descendants: list[IntervalNode]) -> list[IntervalNode]:
        """Distinct right-side matches, in document order."""
        seen: set[int] = set()
        output = []
        for _, descendant in self.pairs(ancestors, descendants):
            if descendant.pre not in seen:
                seen.add(descendant.pre)
                output.append(descendant)
        return output

    def ancestors(self, ancestors: list[IntervalNode],
                  descendants: list[IntervalNode]) -> list[IntervalNode]:
        """Distinct left-side matches, in document order."""
        seen: set[int] = set()
        output = []
        for ancestor, _ in self.pairs(ancestors, descendants):
            if ancestor.pre not in seen:
                seen.add(ancestor.pre)
                output.append(ancestor)
        output.sort(key=lambda record: record.pre)
        return output


class BinaryJoinMatcher:
    """Evaluate a whole pattern graph with one structural join per edge.

    Two semi-join passes (bottom-up, then top-down) reduce each vertex's
    candidate list to the nodes participating in at least one full match —
    for a single output vertex this computes exactly the pattern result,
    while paying the join-per-edge cost the paper's Section 4.1 critiques.
    """

    def __init__(self, pattern: PatternGraph,
                 posting_overrides: Optional[dict[int, list[IntervalNode]]]
                 = None, reorder: bool = True):
        self.pattern = pattern
        self.stats = OperatorStats()
        # vertex id -> replacement posting list (index-scan strategies
        # substitute a tiny candidate list for one vertex).
        self.posting_overrides = posting_overrides or {}
        # Structural join order selection (Wu/Patel/Jagadish, ICDE 2003,
        # the paper's reference [5]): semi-join against the smallest
        # candidate lists first so later joins see reduced inputs.
        self.reorder = reorder

    def run(self, runtime: MatchRuntime, root: int = 0) -> list[int]:
        """Returns the distinct pre-order ids matching the output vertex."""
        pattern = self.pattern
        output_vertex = single_output_vertex(pattern)
        candidates = self._initial_candidates(runtime, root)

        # Bottom-up: a vertex keeps only nodes with a match per child edge.
        for vertex_id in self._bottom_up_order():
            edges = pattern.children_of(vertex_id)
            if self.reorder:
                edges = sorted(edges,
                               key=lambda e: len(candidates[e.target]))
            for edge in edges:
                join = StackTreeJoin(edge.relation, self.stats)
                kept = join.ancestors(candidates[vertex_id],
                                      candidates[edge.target])
                candidates[vertex_id] = kept
        # Top-down: a vertex keeps only nodes under a surviving parent.
        for vertex_id in self._top_down_order():
            edge = pattern.parent_edge(vertex_id)
            if edge is None:
                continue
            join = StackTreeJoin(edge.relation, self.stats)
            candidates[vertex_id] = join.descendants(
                candidates[edge.source], candidates[vertex_id])

        result = [record.pre for record in candidates[output_vertex.vertex_id]]
        self.stats.solutions = len(result)
        return result

    def _initial_candidates(self, runtime: MatchRuntime,
                            root: int) -> dict[int, list[IntervalNode]]:
        pattern = self.pattern
        root_record = runtime.interval.node(root)
        candidates: dict[int, list[IntervalNode]] = {}
        for vertex_id, vertex in pattern.vertices.items():
            if vertex_id == pattern.root:
                candidates[vertex_id] = [root_record]
                continue
            if vertex_id in self.posting_overrides:
                postings = self.posting_overrides[vertex_id]
            else:
                postings = self._postings_for(runtime, vertex)
            kept = []
            for record in postings:
                self.stats.postings_scanned += 1
                if record.pre < root_record.pre \
                        or record.pre > root_record.end:
                    continue
                if vertex.value_constraints \
                        and not runtime.value_ok(vertex, record.pre):
                    continue
                if vertex.residual \
                        and not runtime.residual_ok(vertex, record.pre):
                    continue
                kept.append(record)
            candidates[vertex_id] = kept
            self.stats.intermediate_results += len(kept)
            self.stats.note(f"candidates.{vertex.label_text()}",
                            len(kept))
        return candidates

    @staticmethod
    def _postings_for(runtime: MatchRuntime, vertex) -> list[IntervalNode]:
        from repro.storage.succinct import KIND_ATTRIBUTE

        if vertex.labels is None:
            if vertex.kind == "text":
                return runtime.charge_postings("#text")
            # Wildcard: the union of all postings (a full scan).
            everything = list(runtime.interval.nodes)
            if vertex.kind == "attribute":
                # @*: every attribute record.
                return [r for r in everything
                        if r.kind == KIND_ATTRIBUTE]
            if vertex.kind == "element":
                return [r for r in everything
                        if not r.tag.startswith(("@", "#", "?"))]
            # node(): child/descendant axes never reach attributes.
            return [r for r in everything if r.kind != KIND_ATTRIBUTE]
        tags = (["@" + label for label in vertex.labels]
                if vertex.kind == "attribute" else sorted(vertex.labels))
        postings: list[IntervalNode] = []
        for tag in tags:
            postings.extend(runtime.charge_postings(tag))
        if len(tags) > 1:
            postings.sort(key=lambda record: record.pre)
        return postings

    def _bottom_up_order(self) -> list[int]:
        order: list[int] = []
        stack = [self.pattern.root]
        while stack:
            vertex_id = stack.pop()
            order.append(vertex_id)
            for edge in self.pattern.children_of(vertex_id):
                stack.append(edge.target)
        order.reverse()
        return order

    def _top_down_order(self) -> list[int]:
        return list(reversed(self._bottom_up_order()))

"""Node-at-a-time navigational evaluation — the commercial-system stand-in.

The paper's related work: "Navigational approaches traverse the tree
structure and test whether a tree node satisfies the constraints specified
by the path expression", and its experiments compare against "a
state-of-the-art commercial native XML management system" of exactly this
design.  This matcher walks the succinct document through its navigation
API (first-child / next-sibling / subtree traversal), one node at a time,
with no indexes and no scan sharing — so its cost grows with the tree
region explored, which experiment E4 shows scaling against NoK and the
join strategies.
"""

from __future__ import annotations

from typing import Iterator

from repro.algebra.pattern_graph import (
    REL_ATTRIBUTE,
    REL_CHILD,
    REL_DESCENDANT,
    REL_SIBLING,
    PatternGraph,
)
from repro.physical.base import (
    MatchRuntime,
    OperatorStats,
    single_output_vertex,
)
from repro.storage.succinct import KIND_ATTRIBUTE

__all__ = ["NavigationalMatcher"]


class NavigationalMatcher:
    """Recursive node-at-a-time pattern evaluation."""

    def __init__(self, pattern: PatternGraph):
        self.pattern = pattern
        self.stats = OperatorStats()

    def run(self, runtime: MatchRuntime, root: int = 0) -> list[int]:
        """Distinct pre-order ids matching the output vertex."""
        output_vertex = single_output_vertex(self.pattern)
        results: set[int] = set()
        bindings_enumerated = 0
        for binding in self._match(runtime, self.pattern.root, root):
            bindings_enumerated += 1
            node = binding.get(output_vertex.vertex_id)
            if node is not None:
                results.add(node)
        output = sorted(results)
        self.stats.note("nav.bindings", bindings_enumerated)
        self.stats.solutions = len(output)
        return output

    def _match(self, runtime: MatchRuntime, vertex_id: int,
               node: int) -> Iterator[dict]:
        vertex = self.pattern.vertices[vertex_id]
        self.stats.nodes_visited += 1
        runtime.charge_random_node(node)
        is_root = vertex_id == self.pattern.root
        if not is_root and not vertex.matches_tag(runtime.succinct.tag(node)):
            return
        if vertex.value_constraints and not runtime.value_ok(vertex, node):
            return
        if vertex.residual and not runtime.residual_ok(vertex, node):
            return
        partials: list[dict] = [{}]
        for edge in self.pattern.children_of(vertex_id):
            child_bindings: list[dict] = []
            target_kind = self.pattern.vertices[edge.target].kind
            for candidate in self._candidates(runtime, node, edge.relation,
                                              target_kind):
                child_bindings.extend(
                    self._match(runtime, edge.target, candidate))
            if not child_bindings:
                return
            partials = [{**existing, **extra}
                        for existing in partials
                        for extra in child_bindings]
        for binding in partials:
            if vertex.output:
                binding = dict(binding)
                binding[vertex_id] = node
            yield binding

    def _candidates(self, runtime: MatchRuntime, node: int,
                    relation: str, target_kind: str = "any"
                    ) -> Iterator[int]:
        succinct = runtime.succinct
        if relation == REL_CHILD:
            for child in succinct.children(node):
                self.stats.nodes_visited += 1
                runtime.charge_random_node(child)
                if succinct.kind(child) != KIND_ATTRIBUTE:
                    yield child
        elif relation == REL_ATTRIBUTE:
            yield from succinct.attributes(node)
        elif relation == REL_SIBLING:
            sibling = succinct.next_sibling(node)
            while sibling is not None:
                self.stats.nodes_visited += 1
                runtime.charge_random_node(sibling)
                yield sibling
                sibling = succinct.next_sibling(sibling)
        elif relation == REL_DESCENDANT:
            # descendant::node() excludes attributes; a '//@x' edge (kind
            # attribute) instead reaches exactly the attribute nodes.
            wants_attribute = target_kind == "attribute"
            end = node + succinct.subtree_size(node)
            for descendant in range(node + 1, end):
                self.stats.nodes_visited += 1
                runtime.charge_random_node(descendant)
                is_attribute = succinct.kind(descendant) == KIND_ATTRIBUTE
                if is_attribute == wants_attribute:
                    yield descendant

"""TwigStack — the holistic twig join (Bruno/Koudas/Srivastava, SIGMOD'02).

Evaluates a branching pattern over per-vertex posting streams.  The
``getNext`` oracle only lets a node onto a stack when it (provably, for
``//`` edges) participates in a complete twig match, which is what bounds
the intermediate results — the classic advantage over cascades of binary
joins, reproduced in experiment E3.

As in the literature, parent-child edges make the stack phase a *filter*
rather than an exact evaluator, so a merge/refine phase follows: we run
the bottom-up/top-down semi-join reduction over the (already tiny) pushed
candidate lists.  ``stats.intermediate_results`` counts the pushed nodes —
the quantity the paper's comparison cares about.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ExecutionError
from repro.storage.interval import IntervalNode
from repro.algebra.pattern_graph import (
    REL_DESCENDANT,
    REL_SIBLING,
    PatternGraph,
)
from repro.physical.base import (
    MatchRuntime,
    OperatorStats,
    single_output_vertex,
)
from repro.physical.structural_join import BinaryJoinMatcher, StackTreeJoin

__all__ = ["TwigStackJoin"]


class TwigStackJoin:
    """Holistic evaluation of a twig pattern (single output vertex)."""

    def __init__(self, pattern: PatternGraph):
        self.pattern = pattern
        self.stats = OperatorStats()
        if any(edge.relation == REL_SIBLING for edge in pattern.edges):
            raise ExecutionError(
                "TwigStack stacks encode containment; following-sibling "
                "edges need the partitioned strategy")
        root_edges = pattern.children_of(pattern.root)
        if len(root_edges) != 1:
            raise ExecutionError(
                "TwigStack needs a single twig root under the context")
        self.twig_root = root_edges[0].target
        self.first_relation = root_edges[0].relation
        self._children = {vid: [e.target for e in pattern.children_of(vid)]
                          for vid in pattern.vertices}
        self._parent = {}
        for edge in pattern.edges:
            self._parent[edge.target] = edge.source

    # -- public -------------------------------------------------------------------

    def run(self, runtime: MatchRuntime, root: int = 0) -> list[int]:
        """Distinct pre-order ids matching the output vertex."""
        output_vertex = single_output_vertex(self.pattern)
        streams, positions = self._open_streams(runtime, root)
        stacks: dict[int, list[IntervalNode]] = {
            vid: [] for vid in streams}
        pushed: dict[int, dict[int, IntervalNode]] = {
            vid: {} for vid in streams}

        def head(q: int) -> Optional[IntervalNode]:
            if positions[q] < len(streams[q]):
                return streams[q][positions[q]]
            return None

        def advance(q: int) -> None:
            positions[q] += 1
            self.stats.postings_scanned += 1

        def get_next(q: int) -> Optional[int]:
            """The getNext oracle.  ``None`` means the subtree at ``q``
            can produce no further stack pushes (its streams, or every
            child's, are exhausted); exhausted child subtrees are skipped
            so sibling branches keep draining — their leaves may still
            pair with already-pushed ancestors.
            """
            children = self._children[q]
            if not children:
                return q if head(q) is not None else None
            streaming: list[int] = []
            for child in children:
                result = get_next(child)
                if result is None:
                    continue
                if result != child:
                    return result
                streaming.append(child)
            if not streaming:
                return None
            n_min = min(streaming, key=lambda c: head(c).pre)
            n_max = max(streaming, key=lambda c: head(c).pre)
            while head(q) is not None and head(q).end < head(n_max).pre:
                advance(q)
            if head(q) is not None and head(q).pre < head(n_min).pre:
                return q
            return n_min

        while True:
            q = get_next(self.twig_root)
            if q is None or head(q) is None:
                break
            record = head(q)
            parent = self._parent.get(q)
            # Clean the parent stack, then our own, against this node.
            if parent is not None and parent in stacks:
                self._clean(stacks[parent], record.pre)
            self._clean(stacks[q], record.pre)
            anchored_ok = (parent is None or parent not in stacks
                           or bool(stacks[parent]))
            if q == self.twig_root or anchored_ok:
                stacks[q].append(record)
                pushed[q][record.pre] = record
                self.stats.intermediate_results += 1
                if not self._children[q]:
                    stacks[q].pop()  # leaves never accumulate
            advance(q)

        candidates = {vid: sorted(nodes.values(),
                                  key=lambda record: record.pre)
                      for vid, nodes in pushed.items()}
        result = self._refine(runtime, candidates, root,
                              output_vertex.vertex_id)
        self.stats.solutions = len(result)
        return result

    @staticmethod
    def _clean(stack: list[IntervalNode], pre: int) -> None:
        while stack and stack[-1].end < pre:
            stack.pop()

    # -- streams --------------------------------------------------------------------

    def _open_streams(self, runtime: MatchRuntime, root: int):
        pattern = self.pattern
        root_record = runtime.interval.node(root)
        streams: dict[int, list[IntervalNode]] = {}
        positions: dict[int, int] = {}
        for vertex_id, vertex in pattern.vertices.items():
            if vertex_id == pattern.root:
                continue
            postings = BinaryJoinMatcher._postings_for(runtime, vertex)
            kept = []
            anchor_child = (vertex_id == self.twig_root
                            and self.first_relation != REL_DESCENDANT)
            for record in postings:
                if record.pre <= root_record.pre \
                        or record.pre > root_record.end:
                    continue
                if anchor_child and record.parent != root_record.pre:
                    continue
                if vertex.value_constraints \
                        and not runtime.value_ok(vertex, record.pre):
                    continue
                if vertex.residual \
                        and not runtime.residual_ok(vertex, record.pre):
                    continue
                kept.append(record)
            streams[vertex_id] = kept
            positions[vertex_id] = 0
            self.stats.note(f"stream.{vertex.label_text()}", len(kept))
        return streams, positions

    # -- refine (merge) ------------------------------------------------------------------

    def _refine(self, runtime: MatchRuntime,
                candidates: dict[int, list[IntervalNode]], root: int,
                output_id: int) -> list[int]:
        """Exact twig semantics over the pushed candidates: bottom-up and
        top-down semi-joins verifying every edge (incl. parent-child)."""
        pattern = self.pattern
        candidates = dict(candidates)
        candidates[pattern.root] = [runtime.interval.node(root)]

        order: list[int] = []
        stack = [pattern.root]
        while stack:
            vertex_id = stack.pop()
            order.append(vertex_id)
            stack.extend(self._children.get(vertex_id, ()))
        for vertex_id in reversed(order):
            for child in self._children.get(vertex_id, ()):
                edge = pattern.parent_edge(child)
                join = StackTreeJoin(edge.relation, self.stats)
                candidates[vertex_id] = join.ancestors(
                    candidates[vertex_id], candidates[child])
        for vertex_id in order:
            edge = pattern.parent_edge(vertex_id)
            if edge is None:
                continue
            join = StackTreeJoin(edge.relation, self.stats)
            candidates[vertex_id] = join.descendants(
                candidates[edge.source], candidates[vertex_id])
        return [record.pre for record in candidates[output_id]]

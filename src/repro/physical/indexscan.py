"""Index-driven pattern evaluation (the content-index access path).

Section 4.2 motivates the separated content store precisely because
"content-based indexes (such as B+ trees ...) can be created only on the
content information".  This strategy exploits that index: for a pattern
with an equality value constraint, it

1. probes the content B+ tree for the literal, getting the owning
   text/attribute nodes;
2. maps them to candidate matches of the constrained vertex (the
   attribute node itself, or the text node's parent element, verified
   against the full string value);
3. finishes with the structural semi-join machinery, substituting the
   tiny candidate list for that vertex's posting list.

Range predicates (``<``, ``<=``, ``>``, ``>=`` against numeric literals)
probe the *numeric* value index instead — string order would put "9"
after "10" — using a leaf-chain range scan.

For highly selective predicates this touches a handful of pages where the
scan-based strategies read everything — the crossover of experiment E5.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.algebra.pattern_graph import PatternGraph, PatternVertex
from repro.physical.base import MatchRuntime, OperatorStats
from repro.physical.structural_join import BinaryJoinMatcher
from repro.storage.succinct import KIND_ATTRIBUTE, KIND_TEXT

__all__ = ["IndexScanMatcher"]


class IndexScanMatcher:
    """B+-tree probe + structural verification."""

    def __init__(self, pattern: PatternGraph):
        self.pattern = pattern
        self.stats = OperatorStats()
        self._target = self._pick_constrained_vertex(pattern)

    @staticmethod
    def _pick_constrained_vertex(pattern: PatternGraph) -> PatternVertex:
        equalities = [v for v in pattern.vertices.values()
                      if any(op == "=" for op, _ in v.value_constraints)]
        if equalities:
            return equalities[0]
        ranged = [v for v in pattern.vertices.values()
                  if any(op in ("<", "<=", ">", ">=")
                         and isinstance(lit, (int, float))
                         for op, lit in v.value_constraints)]
        if ranged:
            return ranged[0]
        raise ExecutionError(
            "index-scan needs an equality or numeric range constraint")

    def run(self, runtime: MatchRuntime, root: int = 0) -> list[int]:
        """Distinct pre-order ids matching the output vertex."""
        vertex = self._target
        owners = self._probe(runtime, vertex)
        self.stats.postings_scanned += len(owners)
        self.stats.note("index.owners", len(owners))

        self._check_probe_is_lossless(runtime, vertex)
        candidates = []
        seen: set[int] = set()
        succinct = runtime.succinct
        for owner in owners:
            kind = succinct.kind(owner)
            if vertex.kind == "attribute":
                nodes = [owner] if kind == KIND_ATTRIBUTE else []
            elif vertex.kind == "text":
                nodes = [owner] if kind == KIND_TEXT else []
            elif kind == KIND_TEXT:
                # Element vertex: any ancestor of the text hit may be the
                # match (its *full* string value is verified below) — the
                # text need not be a direct child.
                nodes = []
                ancestor = succinct.parent(owner)
                while ancestor is not None:
                    nodes.append(ancestor)
                    ancestor = succinct.parent(ancestor)
            else:
                nodes = []
            for node in nodes:
                if node in seen:
                    continue
                seen.add(node)
                runtime.charge_random_node(node)
                if not runtime.vertex_accepts(vertex, node):
                    continue
                candidates.append(runtime.interval.node(node))
        candidates.sort(key=lambda record: record.pre)
        self.stats.intermediate_results += len(candidates)

        matcher = BinaryJoinMatcher(
            self.pattern,
            posting_overrides={vertex.vertex_id: candidates})
        result = matcher.run(runtime, root=root)
        self.stats.merge(matcher.stats)
        self.stats.solutions = len(result)
        return result


    def _check_probe_is_lossless(self, runtime: MatchRuntime,
                                 vertex: PatternVertex) -> None:
        """An element whose value spans >= 2 text runs is invisible to a
        per-run content index (no single entry equals the full value):
        refuse when the statistics say the constrained tag is fragmented
        (the planner then falls back to a scan strategy)."""
        if vertex.kind in ("attribute", "text"):
            return
        statistics = runtime.statistics
        if statistics is None:
            return  # best effort without statistics
        fragmented = statistics.fragmented_value_tags
        if vertex.labels is None:
            if fragmented:
                raise ExecutionError(
                    "index-scan is lossy for wildcard element values in "
                    "a document with fragmented text")
            return
        overlap = set(vertex.labels) & fragmented
        if overlap:
            raise ExecutionError(
                f"index-scan is lossy for fragmented element values "
                f"({sorted(overlap)}); use a scan strategy")

    def _probe(self, runtime: MatchRuntime, vertex: PatternVertex
               ) -> list[int]:
        """Owner pre-order ids from the matching index: string equality
        probes the content B+ tree; numeric ranges scan the typed one."""
        equality = next((lit for op, lit in vertex.value_constraints
                         if op == "="), None)
        if equality is not None:
            if runtime.value_index is None:
                raise ExecutionError("runtime has no content value index")
            return runtime.value_index.search(_as_index_key(equality))
        if runtime.numeric_index is None:
            raise ExecutionError("runtime has no numeric value index")
        low, high = float("-inf"), float("inf")
        include_low = include_high = True
        for op, literal in vertex.value_constraints:
            if not isinstance(literal, (int, float)):
                continue
            bound = float(literal)
            if op in (">", ">="):
                if bound > low:
                    low, include_low = bound, op == ">="
            elif op in ("<", "<="):
                if bound < high:
                    high, include_high = bound, op == "<="
        return [owner for _, owner in runtime.numeric_index.range(
            low, high, include_low=include_low, include_high=include_high)]


def _as_index_key(literal) -> str:
    """Index keys are the raw stored strings; numeric literals probe
    their canonical text form."""
    if isinstance(literal, float) and literal == int(literal):
        return str(int(literal))
    return str(literal)

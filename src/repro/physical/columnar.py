"""Vectorized (array-at-a-time) pattern matching over label columns.

The node-at-a-time operators pay Python dispatch per node per step; this
module instead evaluates a whole pattern with a handful of **batch
kernels** over the flat pre-order columns of
:class:`~repro.storage.columns.ColumnarView`:

* candidate generation — per-vertex sorted pre-id arrays from the tag
  index key columns, shrunk to the context window ``[root, end[root]]``
  with two ``bisect`` probes,
* a bottom-up semi-join pass — each vertex keeps the candidates with at
  least one match per child edge (``//`` via a bisect probe into the
  child array plus ``end[a] == a`` leaf pruning; ``/`` and ``@`` via one
  shared parent-id set; ``~`` via a per-parent last-sibling table),
* a top-down semi-join pass — each vertex keeps the candidates under a
  surviving parent (``//`` via a prefix-max-of-``end`` array over the
  sorted ancestors, one bisect per candidate; ``/``/``@``/``~``
  mirrored from the bottom-up tables).

The two passes are exactly the reduction
:class:`~repro.physical.structural_join.BinaryJoinMatcher` performs with
one stack-tree join per edge, so for a single output vertex the result
is the pattern answer, item for item — but every loop body here is a
``bisect`` call, a set probe, or a dict lookup over machine integers, so
the per-candidate constant is a fraction of the per-node object dance.

Eligibility (:func:`columnar_eligible`): one output vertex and only
``/ // @ ~`` edges.  Residual predicates are supported via a **batch
post-filter**: each vertex's candidate window is run through the
engine's reference-evaluator callback (``runtime.residual_ok``) right
after the bisect window-shrink and value-constraint filters, while the
list is at its smallest — the same node-local check every join
strategy applies, so parity is exact; the semi-join passes then only
see survivors.  A runtime without a residual checker raises
:class:`~repro.errors.ExecutionError` so the planner falls back to the
node-at-a-time operators.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right

from repro.errors import ExecutionError
from repro.algebra.pattern_graph import (
    REL_ATTRIBUTE,
    REL_CHILD,
    REL_DESCENDANT,
    REL_SIBLING,
    PatternGraph,
    PatternVertex,
)
from repro.physical.base import (
    MatchRuntime,
    OperatorStats,
    single_output_vertex,
)

__all__ = ["ColumnarMatcher", "columnar_eligible"]

_SUPPORTED_RELATIONS = frozenset(
    {REL_CHILD, REL_DESCENDANT, REL_ATTRIBUTE, REL_SIBLING})


def columnar_eligible(pattern: PatternGraph) -> bool:
    """Can the batch kernels evaluate this pattern exactly?

    Value constraints and residual predicates are both fine: each is
    checked once per candidate while the per-vertex lists are still
    small (residuals re-enter the reference evaluator per surviving
    candidate — the batch post-filter in ``_initial_candidates``).
    """
    if len(pattern.output_vertices()) != 1:
        return False
    return all(edge.relation in _SUPPORTED_RELATIONS
               for edge in pattern.edges)


class ColumnarMatcher:
    """Batch semi-join evaluation of a pattern over label columns."""

    def __init__(self, pattern: PatternGraph):
        self.pattern = pattern
        self.stats = OperatorStats()

    def run(self, runtime: MatchRuntime, root: int = 0) -> list[int]:
        """Distinct pre-order ids matching the output vertex, in
        document order (the same contract as the join strategies)."""
        pattern = self.pattern
        if not columnar_eligible(pattern):
            raise ExecutionError(
                "pattern is not columnar-eligible (multi-output or an "
                "unsupported relation)")
        output_vertex = single_output_vertex(pattern)
        builds_before = runtime.column_builds
        view = runtime.columnar_view()
        if runtime.column_builds != builds_before:
            self.stats.note("columnar.view_builds")
        end, parent = view.end, view.parent

        candidates = self._initial_candidates(runtime, view, root)
        # Bottom-up: a vertex keeps only candidates with a match per
        # child edge (smallest child lists first shrink fastest).
        for vertex_id in self._bottom_up_order():
            edges = pattern.children_of(vertex_id)
            edges.sort(key=lambda e: len(candidates[e.target]))
            for edge in edges:
                candidates[vertex_id] = self._semijoin_up(
                    edge.relation, candidates[vertex_id],
                    candidates[edge.target], end, parent)
        if not candidates[pattern.root]:
            # The anchored root was eliminated: no full match exists.
            self.stats.solutions = 0
            return []
        # Top-down: a vertex keeps only candidates under a survivor.
        for vertex_id in self._top_down_order():
            edge = pattern.parent_edge(vertex_id)
            if edge is None:
                continue
            candidates[vertex_id] = self._semijoin_down(
                edge.relation, candidates[edge.source],
                candidates[vertex_id], end, parent)

        result = list(candidates[output_vertex.vertex_id])
        self.stats.solutions = len(result)
        return result

    # -- candidate generation -----------------------------------------------------

    def _initial_candidates(self, runtime: MatchRuntime, view,
                            root: int) -> dict:
        pattern = self.pattern
        root_pre, root_end = runtime.pre_end(root)
        candidates: dict[int, object] = {}
        for vertex_id, vertex in pattern.vertices.items():
            if vertex_id == pattern.root:
                window = [root_pre]
            else:
                pres = self._vertex_pres(runtime, view, vertex)
                # Shrink to the context window with two probes;
                # everything outside (root_pre, root_end] can never
                # join.
                lo = bisect_left(pres, root_pre)
                hi = bisect_right(pres, root_end)
                window = pres[lo:hi]
                self.stats.postings_scanned += len(window)
            if vertex.value_constraints and vertex_id != pattern.root:
                window = [p for p in window if runtime.value_ok(vertex, p)]
            if vertex.residual:
                # Batch post-filter: the reference evaluator runs once
                # per surviving candidate, node-locally — identical
                # semantics to every join strategy's residual check —
                # and the semi-joins downstream never see rejects.
                before = len(window)
                window = [p for p in window
                          if runtime.residual_ok(vertex, p)]
                self.stats.note("columnar.residual_checked", before)
                self.stats.note("columnar.residual_dropped",
                                before - len(window))
            candidates[vertex_id] = window
            self.stats.intermediate_results += len(window)
            self.stats.note(f"candidates.{vertex.label_text()}",
                            len(window))
        return candidates

    def _vertex_pres(self, runtime: MatchRuntime, view,
                     vertex: PatternVertex):
        """Sorted pre ids of every stored node this vertex's label/kind
        accepts — built from the per-tag key columns so wildcards and
        multi-label vertices reuse the same cached arrays."""
        matched = [tag for tag in view.tags() if vertex.matches_tag(tag)]
        charge = runtime.pages is not None and (
            vertex.labels is not None or vertex.kind == "text")
        if charge:
            for tag in matched:
                runtime.charge_postings(tag)
        if len(matched) == 1:
            return view.tag_pres(matched[0])
        combined = array("q")
        for tag in matched:
            combined.extend(view.tag_pres(tag))
        # Concatenated sorted runs: Timsort merges them near-linearly.
        return array("q", sorted(combined)) if len(matched) > 1 else combined

    # -- semi-join kernels --------------------------------------------------------

    def _semijoin_up(self, relation: str, ancestors, descendants,
                     end, parent) -> list:
        """Candidates of the edge *source* with >= 1 match on the edge."""
        self.stats.structural_joins += 1
        self.stats.note(f"columnar.semijoin.{relation}")
        if not ancestors or not descendants:
            return []
        if relation == REL_DESCENDANT:
            kept = []
            append = kept.append
            size = len(descendants)
            for a in ancestors:
                if end[a] == a:
                    continue  # leaf: empty subtree window
                index = bisect_right(descendants, a)
                if index < size and descendants[index] <= end[a]:
                    append(a)
            return kept
        if relation in (REL_CHILD, REL_ATTRIBUTE):
            parents = {parent[d] for d in descendants}
            return [a for a in ancestors if a in parents]
        # REL_SIBLING: keep lefts with a following sibling on the right.
        last_right: dict[int, int] = {}
        for d in descendants:  # ascending pre: final write is the max
            last_right[parent[d]] = d
        return [a for a in ancestors
                if last_right.get(parent[a], -1) > a]

    def _semijoin_down(self, relation: str, ancestors, descendants,
                       end, parent) -> list:
        """Candidates of the edge *target* under a surviving source."""
        self.stats.structural_joins += 1
        self.stats.note(f"columnar.semijoin.{relation}")
        if not ancestors or not descendants:
            return []
        if relation == REL_DESCENDANT:
            # prefix_end[i] = max end over ancestors[:i + 1]; d has an
            # ancestor iff some a < d (a bisect prefix) reaches >= d.
            prefix_end = array("q", ancestors)
            best = -1
            for index, a in enumerate(ancestors):
                reach = end[a]
                if reach > best:
                    best = reach
                prefix_end[index] = best
            kept = []
            append = kept.append
            for d in descendants:
                index = bisect_left(ancestors, d)
                if index and prefix_end[index - 1] >= d:
                    append(d)
            return kept
        if relation in (REL_CHILD, REL_ATTRIBUTE):
            surviving = set(ancestors)
            return [d for d in descendants if parent[d] in surviving]
        # REL_SIBLING: keep rights with a preceding left sharing the
        # parent (missing parent defaults to d itself, which fails <).
        first_left: dict[int, int] = {}
        for a in ancestors:  # ascending pre: first write is the min
            if parent[a] not in first_left:
                first_left[parent[a]] = a
        return [d for d in descendants
                if first_left.get(parent[d], d) < d]

    # -- traversal orders ---------------------------------------------------------

    def _bottom_up_order(self) -> list[int]:
        order: list[int] = []
        stack = [self.pattern.root]
        while stack:
            vertex_id = stack.pop()
            order.append(vertex_id)
            for edge in self.pattern.children_of(vertex_id):
                stack.append(edge.target)
        order.reverse()
        return order

    def _top_down_order(self) -> list[int]:
        return list(reversed(self._bottom_up_order()))

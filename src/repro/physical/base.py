"""Shared infrastructure for physical operators.

:class:`MatchRuntime` bundles everything a physical strategy needs for one
document: the succinct store, the interval store (same pre-order
numbering), the tag index, the page manager it charges I/O to, and the
residual-predicate checker (a callback into the reference evaluator, set
up by the engine which owns the model tree).

:class:`OperatorStats` collects the per-run metrics the benchmarks report
alongside wall-clock time and page I/O: nodes visited, elements scanned
from posting lists, intermediate-result sizes, join count.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ExecutionError
from repro.storage.columns import ColumnarView
from repro.storage.interval import IntervalDocument
from repro.storage.pages import PageManager
from repro.storage.succinct import SuccinctDocument
from repro.storage.tagindex import TagIndex
from repro.algebra.operators import compare_values
from repro.algebra.pattern_graph import PatternGraph, PatternVertex

__all__ = ["OperatorStats", "MatchRuntime", "single_output_vertex"]


@dataclass
class OperatorStats:
    """Metrics one strategy run accumulates.

    ``detail`` carries free-form per-operator counters (per-tag posting
    sizes, partition counts, B+ tree probes...) that each physical
    strategy notes via :meth:`note`; EXPLAIN ANALYZE surfaces them next
    to the estimate-vs-actual table.  The fixed counters keep their
    exact seed semantics (``snapshot`` is unchanged).
    """

    nodes_visited: int = 0          # storage nodes touched by navigation
    postings_scanned: int = 0       # posting-list entries consumed
    intermediate_results: int = 0   # entries in intermediate lists
    structural_joins: int = 0       # binary structural joins performed
    solutions: int = 0              # final output size
    detail: dict = field(default_factory=dict)  # per-strategy extras

    def note(self, key: str, amount: int = 1) -> None:
        """Accumulate one named per-operator detail counter."""
        self.detail[key] = self.detail.get(key, 0) + amount

    def merge(self, other: "OperatorStats") -> None:
        self.nodes_visited += other.nodes_visited
        self.postings_scanned += other.postings_scanned
        self.intermediate_results += other.intermediate_results
        self.structural_joins += other.structural_joins
        for key, value in other.detail.items():
            self.detail[key] = self.detail.get(key, 0) + value

    def snapshot(self) -> dict[str, int]:
        return {
            "nodes_visited": self.nodes_visited,
            "postings_scanned": self.postings_scanned,
            "intermediate_results": self.intermediate_results,
            "structural_joins": self.structural_joins,
            "solutions": self.solutions,
        }


class MatchRuntime:
    """Per-document runtime shared by the physical strategies."""

    def __init__(self, succinct: SuccinctDocument,
                 interval: IntervalDocument,
                 tag_index: TagIndex,
                 pages: Optional[PageManager] = None,
                 residual_check: Optional[
                     Callable[[PatternVertex, int], bool]] = None,
                 value_index=None, numeric_index=None, statistics=None):
        self.succinct = succinct
        self.interval = interval
        self.tag_index = tag_index
        self.pages = pages
        self._residual_check = residual_check
        self.value_index = value_index      # string content -> owner
        self.numeric_index = numeric_index  # float(content) -> owner
        self.statistics = statistics        # DocumentStatistics or None
        # Lazily extracted label columns for the vectorized execution
        # path; invalidated (and rebuilt on next use) whenever an
        # in-place structural update goes through refresh_segments().
        self._columns: Optional[ColumnarView] = None
        self._columns_lock = threading.Lock()
        self.column_builds = 0
        if pages is not None:
            self.structure_segment = pages.segment("succinct:structure")
            self.dom_segment = pages.segment("dom:records")
            self.refresh_segments()
        else:
            self.structure_segment = None
            self.dom_segment = None

    def refresh_segments(self) -> None:
        """Re-derive segment extents from the current store sizes.

        Called after an in-place structural update so I/O charging keeps
        tracking the stores without rebuilding the runtime.  Both extent
        updates happen under the page manager's I/O lock so a concurrent
        ``sequential_scan`` never observes one segment resized and the
        other not (the engine's RW lock already excludes readers during
        updates; this keeps the runtime safe standalone too).
        """
        self.invalidate_columns()
        if self.pages is None:
            return
        with self.pages.io_lock:
            structure = self.succinct.size_bytes()
            self.structure_segment.length = (
                structure["structure"] + structure["tags"]
                + structure["kinds"])
            # The navigational (commercial stand-in) strategy reads
            # pointer-based DOM records, ~32 bytes per node.
            self.dom_segment.length = 32 * self.succinct.node_count

    # -- columnar view ----------------------------------------------------------

    def columnar_view(self) -> ColumnarView:
        """The shared label-column view of this document state.

        Built on first use (one pass over the interval records) and
        reused by every subsequent columnar execution; concurrent
        readers racing on a cold view build it once under the lock.
        Under MVCC each :class:`DocumentVersion` owns its runtime, so
        a view is a pure function of that version's frozen labels and
        is shared by exactly the readers pinned on it; updates build a
        new version (with a cold view) rather than patching this one.
        """
        view = self._columns
        if view is not None:
            return view
        with self._columns_lock:
            if self._columns is None:
                self._columns = ColumnarView(
                    self.interval, self.tag_index,
                    kinds=getattr(self.succinct, "_kinds", None))
                self.column_builds += 1
            return self._columns

    def invalidate_columns(self) -> None:
        """Drop the cached column view (labels changed in place)."""
        with self._columns_lock:
            self._columns = None

    # -- vertex predicate evaluation -------------------------------------------

    def vertex_accepts(self, vertex: PatternVertex, preorder: int,
                       check_value: bool = True) -> bool:
        """Full per-node check of a pattern vertex (tag, value
        constraints, residuals) against the stored node ``preorder``."""
        if not vertex.matches_tag(self.succinct.tag(preorder)):
            return False
        if check_value and not self.value_ok(vertex, preorder):
            return False
        return self.residual_ok(vertex, preorder)

    def value_ok(self, vertex: PatternVertex, preorder: int) -> bool:
        for op, literal in vertex.value_constraints:
            if not compare_values(op, self.succinct.string_value(preorder),
                                  literal):
                return False
        return True

    def residual_ok(self, vertex: PatternVertex, preorder: int) -> bool:
        if not vertex.residual:
            return True
        if self._residual_check is None:
            raise ExecutionError(
                "pattern has residual predicates but the runtime has no "
                "residual checker (positional predicates need the engine)")
        return self._residual_check(vertex, preorder)

    # -- structural helpers --------------------------------------------------------

    def pre_end(self, preorder: int) -> tuple[int, int]:
        """(pre, end) interval of the stored node."""
        record = self.interval.node(preorder)
        return record.pre, record.end

    def is_descendant(self, ancestor: int, descendant: int) -> bool:
        record = self.interval.node(ancestor)
        return record.pre < descendant <= record.end

    def is_following_sibling(self, left: int, right: int) -> bool:
        left_record = self.interval.node(left)
        right_record = self.interval.node(right)
        return (left_record.parent == right_record.parent
                and left_record.pre < right_record.pre)

    # -- I/O charging -----------------------------------------------------------------

    def charge_structure_scan(self) -> None:
        """One sequential read of the structure segment (NoK's cost)."""
        if self.pages is not None and self.structure_segment is not None:
            self.pages.sequential_scan(self.structure_segment)

    def charge_postings(self, tag: str) -> list:
        """Fetch a posting list, paying the sequential read."""
        return self.tag_index.postings(tag, charge=self.pages is not None)

    def charge_random_node(self, preorder: int) -> None:
        """One random access to a node record (navigational traversal /
        index verification cost): a 32-byte DOM-style record."""
        if self.pages is not None and self.dom_segment is not None:
            self.dom_segment.touch(preorder * 32, 32)


def single_output_vertex(pattern: PatternGraph) -> PatternVertex:
    """The pattern's unique output vertex; joins-based strategies and the
    planner currently require exactly one."""
    outputs = pattern.output_vertices()
    if len(outputs) != 1:
        raise ExecutionError(
            f"strategy requires exactly one output vertex, "
            f"pattern has {len(outputs)}")
    return outputs[0]

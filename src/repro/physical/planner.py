"""The physical planner: lower a pattern graph to a strategy.

Strategies (the names the engine and benchmarks use):

=================  ======================================================
``nok``            single-scan NoK matcher (NoK patterns only)
``partitioned``    NoK partitions + structural joins (any pattern)
``structural-join``one stack-tree join per edge
``pathstack``      holistic path join (linear patterns)
``twigstack``      holistic twig join (branching patterns)
``navigational``   node-at-a-time traversal (commercial stand-in)
``index-scan``     content B+ tree probe + verification
``columnar``       vectorized semi-joins over label columns
``auto``           cost-model choice (:class:`repro.algebra.cost.CostModel`)
=================  ======================================================

``auto`` consults the cost model, then falls back gracefully when the
chosen strategy cannot express the pattern (e.g. PathStack on a twig).

The ``columnar`` knob (mirroring ``Database(columnar=...)``) controls
how ``auto`` treats the vectorized path: ``auto`` lets the cost model
compare it, ``on`` forces it for every eligible pattern, ``off`` never
plans it (an explicit ``strategy="columnar"`` request still runs it).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ExecutionError, PlanError
from repro.algebra.cost import CostModel
from repro.algebra.pattern_graph import PatternGraph
from repro.physical.base import MatchRuntime, OperatorStats
from repro.physical.columnar import ColumnarMatcher, columnar_eligible
from repro.physical.indexscan import IndexScanMatcher
from repro.physical.navigational import NavigationalMatcher
from repro.physical.nok import NoKMatcher
from repro.physical.partition import PartitionedMatcher
from repro.physical.pathstack import PathStackJoin
from repro.physical.structural_join import BinaryJoinMatcher
from repro.physical.twigstack import TwigStackJoin

__all__ = ["PhysicalPlanner", "STRATEGIES", "COLUMNAR_MODES"]

STRATEGIES = ("nok", "partitioned", "structural-join", "pathstack",
              "twigstack", "navigational", "index-scan", "columnar",
              "auto")

COLUMNAR_MODES = ("auto", "on", "off")


class PhysicalPlanner:
    """Chooses and runs a physical strategy for pattern matching.

    ``choice_memo`` (optional) memoizes ``auto``-mode strategy choices
    across calls: keys are ``(pattern signature, statistics
    generation)``, so a choice is reused for the repeated executions of
    a hot query but naturally expires whenever an update changes the
    document statistics.  The dict is owned by the caller (the engine
    keeps one per document *version* — successor versions start fresh,
    so a memo can never leak across an MVCC publish) and survives
    planner instances.

    ``memo_lock`` (optional) guards the memo dict: concurrent reader
    threads executing the same hot pattern read and fill it
    simultaneously.  Only the get/put touch the lock — cost-model
    evaluation runs outside it, so a racing miss costs at worst one
    duplicate costing whose identical result is idempotent to store.
    """

    def __init__(self, cost_model: Optional[CostModel] = None,
                 choice_memo: Optional[dict] = None,
                 memo_lock=None, columnar: str = "auto"):
        if columnar not in COLUMNAR_MODES:
            raise PlanError(f"columnar mode must be one of "
                            f"{COLUMNAR_MODES}, got {columnar!r}")
        self.cost_model = cost_model
        self.choice_memo = choice_memo
        self.memo_lock = memo_lock
        self.columnar = columnar
        self.memo_hits = 0
        self.memo_misses = 0

    def _memo_get(self, memo_key: tuple) -> Optional[str]:
        if self.memo_lock is not None:
            with self.memo_lock:
                return self.choice_memo.get(memo_key)
        return self.choice_memo.get(memo_key)

    def _memo_put(self, memo_key: tuple, choice: str) -> None:
        if self.memo_lock is not None:
            with self.memo_lock:
                self.choice_memo[memo_key] = choice
        else:
            self.choice_memo[memo_key] = choice

    def _memo_key(self, pattern: PatternGraph) -> Optional[tuple]:
        if self.choice_memo is None:
            return None
        generation = 0
        if self.cost_model is not None:
            generation = getattr(self.cost_model.stats, "generation", 0)
        # The columnar knob is part of the key: toggling it at runtime
        # must never serve a choice memoized under the other mode.
        return (pattern.signature(), generation, self.columnar)

    def choose(self, pattern: PatternGraph) -> str:
        """The strategy ``auto`` resolves to for this pattern."""
        memo_key = self._memo_key(pattern)
        if memo_key is not None:
            cached = self._memo_get(memo_key)
            if cached is not None:
                self.memo_hits += 1
                return cached
            self.memo_misses += 1
        choice = self._choose_uncached(pattern)
        if memo_key is not None:
            self._memo_put(memo_key, choice)
        return choice

    def _choose_uncached(self, pattern: PatternGraph) -> str:
        if self.columnar == "on" and columnar_eligible(pattern):
            return "columnar"
        if self.cost_model is None:
            return "nok" if pattern.is_nok() else "partitioned"
        choice = self.cost_model.cheapest_strategy(
            pattern, include_columnar=self.columnar == "auto")
        if choice == "structural-join" and pattern.is_nok():
            choice = "nok"  # cost ties favour the native scan
        if choice == "twigstack" and self._is_linear(pattern):
            choice = "pathstack"
        return choice

    def match(self, pattern: PatternGraph, runtime: MatchRuntime,
              root: int = 0, strategy: str = "auto"
              ) -> tuple[list[int], OperatorStats, str]:
        """Evaluate ``pattern``; returns (matches, stats, strategy used).

        Output is the distinct pre-order ids of the single output vertex
        (multi-output patterns run through NoK/partitioned only).
        """
        if strategy not in STRATEGIES:
            raise PlanError(f"unknown strategy {strategy!r}")
        was_auto = strategy == "auto"
        if was_auto:
            strategy = self.choose(pattern)
        try:
            return self._dispatch(pattern, runtime, root, strategy)
        except ExecutionError:
            if strategy in ("nok", "partitioned"):
                raise
            # The costed choice could not express the pattern
            # (multi-output, branching for pathstack, ...): fall back.
            fallback = "nok" if pattern.is_nok() else "partitioned"
            result = self._dispatch(pattern, runtime, root, fallback)
            if was_auto:
                # Remember the *working* strategy so repeated executions
                # of this pattern skip the doomed attempt entirely.
                memo_key = self._memo_key(pattern)
                if memo_key is not None:
                    self._memo_put(memo_key, fallback)
            return result

    def match_bindings(self, pattern: PatternGraph, runtime: MatchRuntime,
                       root: int = 0) -> tuple[list[dict], OperatorStats]:
        """Full output-vertex bindings (tuples) — always via the NoK
        machinery, which natively produces them."""
        if pattern.is_nok():
            matcher = NoKMatcher(pattern, anchored=True)
            bindings = matcher.run(runtime, root=root)
            return bindings, matcher.stats
        partitioned = PartitionedMatcher(pattern)
        output_ids = {v.vertex_id for v in pattern.output_vertices()}
        tuples = partitioned.partition_tuples(runtime, root)
        bindings = [{vid: node for vid, node in binding.items()
                     if vid in output_ids} for binding in tuples]
        unique: dict[tuple, dict] = {}
        for binding in bindings:
            unique.setdefault(tuple(sorted(binding.items())), binding)
        return list(unique.values()), partitioned.stats

    def _dispatch(self, pattern: PatternGraph, runtime: MatchRuntime,
                  root: int, strategy: str
                  ) -> tuple[list[int], OperatorStats, str]:
        if strategy == "nok":
            if not pattern.is_nok():
                matcher = PartitionedMatcher(pattern)
                return (matcher.run(runtime, root=root), matcher.stats,
                        "partitioned")
            nok = NoKMatcher(pattern, anchored=True)
            bindings = nok.run(runtime, root=root)
            output_ids = [v.vertex_id for v in pattern.output_vertices()]
            if len(output_ids) != 1:
                raise ExecutionError("planner.match needs a single output; "
                                     "use match_bindings")
            matches = sorted({binding[output_ids[0]]
                              for binding in bindings
                              if output_ids[0] in binding})
            nok.stats.solutions = len(matches)
            return matches, nok.stats, "nok"
        if strategy == "partitioned":
            matcher = PartitionedMatcher(pattern)
            return matcher.run(runtime, root=root), matcher.stats, strategy
        if strategy == "structural-join":
            matcher = BinaryJoinMatcher(pattern)
            return matcher.run(runtime, root=root), matcher.stats, strategy
        if strategy == "pathstack":
            matcher = PathStackJoin(pattern)
            return matcher.run(runtime, root=root), matcher.stats, strategy
        if strategy == "twigstack":
            matcher = TwigStackJoin(pattern)
            return matcher.run(runtime, root=root), matcher.stats, strategy
        if strategy == "navigational":
            matcher = NavigationalMatcher(pattern)
            return matcher.run(runtime, root=root), matcher.stats, strategy
        if strategy == "columnar":
            matcher = ColumnarMatcher(pattern)
            return matcher.run(runtime, root=root), matcher.stats, strategy
        if strategy == "index-scan":
            matcher = IndexScanMatcher(pattern)
            return matcher.run(runtime, root=root), matcher.stats, strategy
        raise PlanError(f"unknown strategy {strategy!r}")  # pragma: no cover

    @staticmethod
    def _is_linear(pattern: PatternGraph) -> bool:
        return all(len(pattern.children_of(vid)) <= 1
                   for vid in pattern.vertices)

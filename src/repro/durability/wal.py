"""The write-ahead log: logical update records, fsynced before apply.

Every structural update (``load`` / ``insert`` / ``delete``) appends one
**logical** record — the operation, its target path, the fragment text,
and the expected post-apply generation — to the current WAL file, and
the append is flushed *and fsynced* before the in-memory stores are
touched.  Because PR 2's reader-writer lock makes writers exclusive, WAL
appends are trivially serialized: there is exactly one writer inside the
critical section, so records land in exactly the order the deltas are
applied.

File layout::

    RXWAL001                      8-byte magic
    [u32 length][u32 crc32][payload]   repeated

where ``payload`` is :func:`repro.durability.format.pack_obj` applied to
the record dict.  A crash can tear the last record (short write) or
leave garbage after the last fsynced byte; :func:`read_records` stops at
the first frame that is short or fails its CRC, and :meth:`
WriteAheadLog.open` **truncates** the file back to the last valid
boundary so the torn bytes can never resurface.

The constructor takes an injectable ``opener`` so the crash-injection
harness (``tests/durability/faults.py``) can interpose a
``FaultingFile`` that dies after *k* bytes or swallows fsyncs.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Any, Callable, Optional

from repro.errors import WALCorruptError
from repro.durability.format import crc32, pack_obj, unpack_obj

__all__ = ["WriteAheadLog", "read_records", "WAL_MAGIC", "FRAME_HEADER"]

WAL_MAGIC = b"RXWAL001"
FRAME_HEADER = struct.Struct(">II")  # payload length, payload crc32


def read_records(path: Path) -> tuple[list[dict], int, list[int]]:
    """Parse a WAL file leniently.

    Returns ``(records, valid_length, boundaries)`` where
    ``valid_length`` is the byte offset of the last complete, CRC-valid
    record (everything past it is a torn tail to be truncated) and
    ``boundaries`` lists the end offset of every valid record — the
    crash-injection suite uses these to enumerate crash points.

    A missing file reads as empty.  A non-empty file whose first 8 bytes
    are present but are not the WAL magic raises
    :class:`WALCorruptError`; a file shorter than the magic is treated
    as a torn creation (valid length 0).
    """
    path = Path(path)
    if not path.exists():
        return [], 0, []
    data = path.read_bytes()
    if len(data) < len(WAL_MAGIC):
        return [], 0, []
    if data[:len(WAL_MAGIC)] != WAL_MAGIC:
        raise WALCorruptError(f"{path} does not start with the WAL magic")
    offset = len(WAL_MAGIC)
    records: list[dict] = []
    boundaries: list[int] = []
    size = len(data)
    while offset < size:
        if offset + FRAME_HEADER.size > size:
            break  # torn frame header
        length, expected_crc = FRAME_HEADER.unpack_from(data, offset)
        start = offset + FRAME_HEADER.size
        end = start + length
        if end > size:
            break  # torn payload
        payload = data[start:end]
        if crc32(payload) != expected_crc:
            break  # torn or corrupted tail
        try:
            record = unpack_obj(payload)
        except Exception:
            break  # CRC collided with garbage; treat as torn
        records.append(record)
        boundaries.append(end)
        offset = end
    valid_length = boundaries[-1] if boundaries else len(WAL_MAGIC)
    return records, valid_length, boundaries


class WriteAheadLog:
    """An append-only, checksummed logical log over one file."""

    def __init__(self, path, fsync: bool = True,
                 opener: Optional[Callable[[Path, str], Any]] = None):
        self.path = Path(path)
        self.fsync_enabled = fsync
        self._opener = opener or (lambda p, mode: open(p, mode))
        self._fh: Optional[Any] = None
        self.records_appended = 0
        self.bytes_appended = 0

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def open(cls, path, fsync: bool = True,
             opener: Optional[Callable[[Path, str], Any]] = None
             ) -> tuple["WriteAheadLog", list[dict]]:
        """Open (creating if needed) the log at ``path``.

        Scans existing content, **truncates any torn tail**, and returns
        the log plus every surviving record for replay.
        """
        path = Path(path)
        records, valid_length, _ = read_records(path)
        if path.exists():
            actual = path.stat().st_size
            if valid_length < len(WAL_MAGIC):
                # Torn creation: rewrite from scratch below.
                path.unlink()
            elif actual > valid_length:
                with open(path, "r+b") as fh:
                    fh.truncate(valid_length)
                    fh.flush()
                    os.fsync(fh.fileno())
        wal = cls(path, fsync=fsync, opener=opener)
        wal._ensure_open()
        return wal, records

    def _ensure_open(self) -> None:
        if self._fh is not None:
            return
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = self._opener(self.path, "ab")
        if fresh:
            self._fh.write(WAL_MAGIC)
            self._sync()

    def _sync(self) -> None:
        self._fh.flush()
        if self.fsync_enabled:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._fh is not None:
            try:
                self._sync()
            finally:
                self._fh.close()
                self._fh = None

    @property
    def size_bytes(self) -> int:
        """Current on-disk size of the log."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    # -- appending ---------------------------------------------------------------

    def append(self, record: dict) -> int:
        """Append one logical record, flush, and fsync.

        Returns the frame size in bytes.  The caller (the database's
        update path) only mutates in-memory state *after* this returns,
        which is the write-ahead invariant: any applied delta is on
        disk, so a crash at any later point replays it.
        """
        self._ensure_open()
        payload = pack_obj(record)
        frame = FRAME_HEADER.pack(len(payload), crc32(payload)) + payload
        self._fh.write(frame)
        self._sync()
        self.records_appended += 1
        self.bytes_appended += len(frame)
        return len(frame)

    def stats(self) -> dict:
        """Per-instance append accounting (resets on rotation — the
        durability manager keeps the cross-rotation cumulative figures
        that feed ``repro_wal_records_total``/``repro_wal_bytes_total``)."""
        return {
            "path": str(self.path),
            "records_appended": self.records_appended,
            "bytes_appended": self.bytes_appended,
            "size_bytes": self.size_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<WriteAheadLog {self.path.name} "
                f"appended={self.records_appended}>")

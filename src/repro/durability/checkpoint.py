"""Checkpointing: atomic snapshot publication + WAL rotation.

A checkpoint turns the WAL suffix into a snapshot:

1. the whole database state is serialized into
   ``snapshot-<gen>.snap.tmp``, flushed and fsynced;
2. the temp file is atomically renamed to ``snapshot-<gen>.snap`` (and
   the directory fsynced), which is the *publication point* — a crash
   anywhere before the rename leaves the previous generation intact;
3. a fresh, empty ``wal-<gen>.log`` becomes the current log;
4. generations older than ``keep_generations`` are pruned.  Two
   generations are kept by default so recovery can fall back to the
   previous snapshot (plus both WALs) if the newest one turns out to be
   corrupt on disk.

Checkpoints run under the database's exclusive writer lock — either
explicitly via ``db.checkpoint()`` or automatically every
``checkpoint_every`` logged operations (the policy lives in
:class:`repro.durability.manager.DurabilityManager`).

**Retention pins.**  A replication cursor (a replica tailing
``wal-<gen>.log`` — see :mod:`repro.replication`) must never have its
generation pruned out from under it mid-tail.  A pin is one small file
``retain-<replica_id>.pin`` whose content is the pinned generation
number; :func:`prune_generations` keeps every generation at or above
the smallest live pin.  Pins expire after ``pin_ttl_seconds`` (a dead
replica must not hold WAL files hostage forever) — the publisher
refreshes the file's mtime on every shipped batch, so only an
abandoned cursor ages out.
"""

from __future__ import annotations

import os
import re
import time
from pathlib import Path
from typing import Optional

from repro.durability.snapshot import write_snapshot
from repro.durability.wal import WriteAheadLog

__all__ = ["snapshot_path", "wal_path", "list_generations",
           "write_checkpoint", "fsync_directory",
           "retention_pin_path", "write_retention_pin",
           "clear_retention_pin", "read_retention_pins",
           "DEFAULT_PIN_TTL_SECONDS"]

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.snap$")
_WAL_RE = re.compile(r"^wal-(\d{8})\.log$")
_PIN_RE = re.compile(r"^retain-([A-Za-z0-9._-]+)\.pin$")

#: Pins older than this (by mtime) are treated as abandoned cursors and
#: removed during pruning; the publisher touches the pin on every WAL
#: batch it ships, so any live replica stays far inside the window.
DEFAULT_PIN_TTL_SECONDS = 3600.0


def snapshot_path(directory: Path, generation: int) -> Path:
    return directory / f"snapshot-{generation:08d}.snap"


def wal_path(directory: Path, generation: int) -> Path:
    return directory / f"wal-{generation:08d}.log"


def list_generations(directory: Path) -> dict[str, list[int]]:
    """The snapshot and WAL generations present on disk (ascending)."""
    snapshots: list[int] = []
    wals: list[int] = []
    if directory.exists():
        for entry in directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match:
                snapshots.append(int(match.group(1)))
                continue
            match = _WAL_RE.match(entry.name)
            if match:
                wals.append(int(match.group(1)))
    return {"snapshots": sorted(snapshots), "wals": sorted(wals)}


def retention_pin_path(directory: Path, replica_id: str) -> Path:
    if not _PIN_RE.match(f"retain-{replica_id}.pin"):
        raise ValueError(
            f"replica id {replica_id!r} must contain only letters, "
            f"digits, dots, underscores and dashes")
    return Path(directory) / f"retain-{replica_id}.pin"


def write_retention_pin(directory: Path, replica_id: str,
                        generation: int) -> Path:
    """Pin ``generation`` (and everything newer) for one replica.

    Atomic publish (tmp + rename) so a concurrent prune never reads a
    half-written pin; re-writing an existing pin advances the cursor
    and refreshes the TTL clock.
    """
    path = retention_pin_path(directory, replica_id)
    temp = path.with_suffix(".pin.tmp")
    temp.write_text(f"{int(generation)}\n")
    os.replace(temp, path)
    return path


def clear_retention_pin(directory: Path, replica_id: str) -> bool:
    """Drop one replica's pin (detach); True if it existed."""
    path = retention_pin_path(directory, replica_id)
    try:
        path.unlink()
        return True
    except FileNotFoundError:
        return False


def read_retention_pins(directory: Path,
                        ttl_seconds: Optional[float] = None,
                        prune_expired: bool = False) -> dict[str, int]:
    """Live retention pins: ``{replica_id: pinned_generation}``.

    Pins whose mtime is older than ``ttl_seconds`` are skipped (and
    unlinked when ``prune_expired``); unparsable pin files are treated
    as absent rather than blocking pruning forever.
    """
    directory = Path(directory)
    pins: dict[str, int] = {}
    if not directory.exists():
        return pins
    now = time.time()
    for entry in list(directory.iterdir()):
        match = _PIN_RE.match(entry.name)
        if match is None:
            continue
        try:
            stat = entry.stat()
            generation = int(entry.read_text().strip())
        except (OSError, ValueError):
            continue
        if ttl_seconds is not None and now - stat.st_mtime > ttl_seconds:
            if prune_expired:
                try:
                    entry.unlink()
                except OSError:
                    pass
            continue
        pins[match.group(1)] = generation
    return pins


def fsync_directory(directory: Path) -> None:
    """Flush directory metadata (renames/unlinks) where supported."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


def write_checkpoint(manager, database) -> dict:
    """Write the next snapshot generation, rotate the WAL, prune.

    ``manager`` is the owning
    :class:`~repro.durability.manager.DurabilityManager`; the caller
    holds the database's write lock.  Returns a report dict.
    """
    directory = manager.directory
    generation = manager.generation + 1
    final = snapshot_path(directory, generation)
    temp = final.with_suffix(".snap.tmp")
    started = time.perf_counter()
    with manager.open_snapshot_file(temp) as out:
        report = write_snapshot(out, database)
        out.flush()
        os.fsync(out.fileno())
    os.replace(temp, final)
    fsync_directory(directory)

    # The snapshot is durable: rotate to a fresh WAL for this generation.
    if manager.wal is not None:
        manager.wal.close()
    manager.wal, _ = WriteAheadLog.open(
        wal_path(directory, generation), fsync=manager.fsync,
        opener=manager.wal_opener)
    manager.generation = generation
    manager.ops_since_checkpoint = 0
    manager.checkpoints_written += 1

    pruned = prune_generations(
        directory, generation, keep=manager.keep_generations,
        pin_ttl_seconds=getattr(manager, "retention_pin_ttl_seconds",
                                DEFAULT_PIN_TTL_SECONDS))
    report.update({
        "generation": generation,
        "elapsed_seconds": time.perf_counter() - started,
        "pruned_files": pruned,
        "snapshot_path": str(final),
    })
    # Publish to the manager here (not only in its ``checkpoint``
    # wrapper) so the ``repro_checkpoint_last_seconds`` gauge sees
    # every path that writes a generation.
    manager.last_checkpoint = report
    return report


def prune_generations(directory: Path, newest: int, keep: int = 2,
                      pin_ttl_seconds: Optional[float] =
                      DEFAULT_PIN_TTL_SECONDS) -> int:
    """Delete snapshot/WAL files older than the ``keep`` most recent
    generations (and any leftover temp files).  Returns files removed.

    Generations at or above the smallest live retention pin survive
    regardless of ``keep``: a replica tailing ``wal-<gen>.log`` pinned
    that generation, and deleting it mid-tail would force a full
    re-bootstrap (or worse, silently lose the records between the
    replica's cursor and the next snapshot).
    """
    cutoff = newest - keep + 1
    pins = read_retention_pins(directory, ttl_seconds=pin_ttl_seconds,
                               prune_expired=True)
    if pins:
        cutoff = min(cutoff, min(pins.values()))
    removed = 0
    for entry in list(directory.iterdir()):
        match = _SNAPSHOT_RE.match(entry.name) or _WAL_RE.match(entry.name)
        if match is not None and int(match.group(1)) < cutoff:
            entry.unlink()
            removed += 1
        elif entry.name.endswith(".snap.tmp"):
            entry.unlink()
            removed += 1
    if removed:
        fsync_directory(directory)
    return removed

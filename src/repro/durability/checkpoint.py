"""Checkpointing: atomic snapshot publication + WAL rotation.

A checkpoint turns the WAL suffix into a snapshot:

1. the whole database state is serialized into
   ``snapshot-<gen>.snap.tmp``, flushed and fsynced;
2. the temp file is atomically renamed to ``snapshot-<gen>.snap`` (and
   the directory fsynced), which is the *publication point* — a crash
   anywhere before the rename leaves the previous generation intact;
3. a fresh, empty ``wal-<gen>.log`` becomes the current log;
4. generations older than ``keep_generations`` are pruned.  Two
   generations are kept by default so recovery can fall back to the
   previous snapshot (plus both WALs) if the newest one turns out to be
   corrupt on disk.

Checkpoints run under the database's exclusive writer lock — either
explicitly via ``db.checkpoint()`` or automatically every
``checkpoint_every`` logged operations (the policy lives in
:class:`repro.durability.manager.DurabilityManager`).
"""

from __future__ import annotations

import os
import re
import time
from pathlib import Path

from repro.durability.snapshot import write_snapshot
from repro.durability.wal import WriteAheadLog

__all__ = ["snapshot_path", "wal_path", "list_generations",
           "write_checkpoint", "fsync_directory"]

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.snap$")
_WAL_RE = re.compile(r"^wal-(\d{8})\.log$")


def snapshot_path(directory: Path, generation: int) -> Path:
    return directory / f"snapshot-{generation:08d}.snap"


def wal_path(directory: Path, generation: int) -> Path:
    return directory / f"wal-{generation:08d}.log"


def list_generations(directory: Path) -> dict[str, list[int]]:
    """The snapshot and WAL generations present on disk (ascending)."""
    snapshots: list[int] = []
    wals: list[int] = []
    if directory.exists():
        for entry in directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match:
                snapshots.append(int(match.group(1)))
                continue
            match = _WAL_RE.match(entry.name)
            if match:
                wals.append(int(match.group(1)))
    return {"snapshots": sorted(snapshots), "wals": sorted(wals)}


def fsync_directory(directory: Path) -> None:
    """Flush directory metadata (renames/unlinks) where supported."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


def write_checkpoint(manager, database) -> dict:
    """Write the next snapshot generation, rotate the WAL, prune.

    ``manager`` is the owning
    :class:`~repro.durability.manager.DurabilityManager`; the caller
    holds the database's write lock.  Returns a report dict.
    """
    directory = manager.directory
    generation = manager.generation + 1
    final = snapshot_path(directory, generation)
    temp = final.with_suffix(".snap.tmp")
    started = time.perf_counter()
    with manager.open_snapshot_file(temp) as out:
        report = write_snapshot(out, database)
        out.flush()
        os.fsync(out.fileno())
    os.replace(temp, final)
    fsync_directory(directory)

    # The snapshot is durable: rotate to a fresh WAL for this generation.
    if manager.wal is not None:
        manager.wal.close()
    manager.wal, _ = WriteAheadLog.open(
        wal_path(directory, generation), fsync=manager.fsync,
        opener=manager.wal_opener)
    manager.generation = generation
    manager.ops_since_checkpoint = 0
    manager.checkpoints_written += 1

    pruned = prune_generations(directory, generation,
                               keep=manager.keep_generations)
    report.update({
        "generation": generation,
        "elapsed_seconds": time.perf_counter() - started,
        "pruned_files": pruned,
        "snapshot_path": str(final),
    })
    # Publish to the manager here (not only in its ``checkpoint``
    # wrapper) so the ``repro_checkpoint_last_seconds`` gauge sees
    # every path that writes a generation.
    manager.last_checkpoint = report
    return report


def prune_generations(directory: Path, newest: int, keep: int = 2) -> int:
    """Delete snapshot/WAL files older than the ``keep`` most recent
    generations (and any leftover temp files).  Returns files removed."""
    cutoff = newest - keep + 1
    removed = 0
    for entry in list(directory.iterdir()):
        match = _SNAPSHOT_RE.match(entry.name) or _WAL_RE.match(entry.name)
        if match is not None and int(match.group(1)) < cutoff:
            entry.unlink()
            removed += 1
        elif entry.name.endswith(".snap.tmp"):
            entry.unlink()
            removed += 1
    if removed:
        fsync_directory(directory)
    return removed

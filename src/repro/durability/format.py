"""Binary container primitives shared by snapshots and the WAL.

Two layers live here:

**Object encoding** — :func:`pack_obj` / :func:`unpack_obj` serialize the
plain-Python states the storage structures export (``to_snapshot()``
dicts: ``None``, bools, ints, floats, strings, bytes, lists, tuples and
dicts).  The encoding is deliberately *not* pickle: it can only express
data, never code, so a corrupted or hostile file cannot execute anything
on load.  Homogeneous ``int`` lists — pre-order arrays, tag-symbol
arrays, owner columns — hit a fast path: one C-speed ``array('q')``
conversion and a single ``tobytes()`` instead of a per-element varint
loop, which is what keeps snapshot encode/decode cheap relative to
re-parsing XML.

**Section framing** — :func:`write_section` / :func:`read_sections` wrap
payloads in a ``[kind][length][crc32][payload]`` frame.  Every section
carries its own CRC32, so a flipped bit anywhere in a snapshot is
detected at the section granularity and recovery can fall back to the
previous snapshot generation (see :mod:`repro.durability.recovery`).
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from typing import Any, BinaryIO, Iterator

from repro.errors import SnapshotCorruptError

__all__ = [
    "pack_obj",
    "unpack_obj",
    "write_section",
    "read_sections",
    "crc32",
    "SECTION_HEADER",
]

# Section frame: kind-length (u16), payload length (u64), payload CRC32.
SECTION_HEADER = struct.Struct(">HQI")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

# One-byte type codes.
_NONE = b"N"
_TRUE = b"T"
_FALSE = b"F"
_INT = b"I"        # arbitrary-precision signed int
_FLOAT = b"D"      # IEEE-754 double
_STR = b"S"        # u32 byte length + UTF-8
_BYTES = b"B"      # u32 length + raw bytes
_LIST = b"L"       # u32 count + items
_TUPLE = b"U"      # u32 count + items (decodes back to tuple)
_DICT = b"M"       # u32 count + key/value items
_INT_ARRAY = b"A"  # u32 count + count * 8 little-endian signed bytes
_STR_ARRAY = b"W"  # u32 count + int-array of lengths + joined UTF-8
_F64_ARRAY = b"G"  # u32 count + count * 8 big-endian doubles

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")


def crc32(payload: bytes) -> int:
    """The checksum used for every section and WAL record."""
    return zlib.crc32(payload) & 0xFFFFFFFF


# -- object encoding ----------------------------------------------------------


def _pack_int_array(values: list, out: list) -> bool:
    """Fast path for homogeneous int lists; False if not applicable."""
    try:
        packed = array("q", values)
    except (TypeError, OverflowError, ValueError):
        return False
    if sys.byteorder != "little":  # pragma: no cover - exotic platforms
        packed = array("q", packed)
        packed.byteswap()
    out.append(_INT_ARRAY)
    out.append(_U32.pack(len(values)))
    out.append(packed.tobytes())
    return True


def _pack_homogeneous(values: list, out: list) -> bool:
    """Array fast paths for homogeneous lists; False if inapplicable."""
    first = type(values[0])
    if first is int:
        if any(type(v) is not int for v in values):
            return False
        return _pack_int_array(values, out)
    if first is str:
        if any(type(v) is not str for v in values):
            return False
        encoded = [v.encode("utf-8") for v in values]
        out.append(_STR_ARRAY)
        out.append(_U32.pack(len(encoded)))
        lengths: list = []
        if not _pack_int_array([len(e) for e in encoded], lengths):
            return False  # pragma: no cover - lengths are always ints
        out.extend(lengths)
        out.append(b"".join(encoded))
        return True
    if first is float:
        if any(type(v) is not float for v in values):
            return False
        out.append(_F64_ARRAY)
        out.append(_U32.pack(len(values)))
        out.append(struct.pack(f">{len(values)}d", *values))
        return True
    return False


def _pack(obj: Any, out: list) -> None:
    if obj is None:
        out.append(_NONE)
    elif obj is True:
        out.append(_TRUE)
    elif obj is False:
        out.append(_FALSE)
    elif isinstance(obj, int):
        raw = obj.to_bytes((obj.bit_length() + 8) // 8 or 1, "big",
                           signed=True)
        out.append(_INT)
        out.append(bytes((len(raw),)))
        out.append(raw)
    elif isinstance(obj, float):
        out.append(_FLOAT)
        out.append(_F64.pack(obj))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(_STR)
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif isinstance(obj, (bytes, bytearray)):
        out.append(_BYTES)
        out.append(_U32.pack(len(obj)))
        out.append(bytes(obj))
    elif isinstance(obj, (list, tuple)):
        # Homogeneous *lists* take C-speed array fast paths: bool-free
        # ints, strings, or floats.  (Bools would be silently widened
        # to ints, so they opt out; tuples keep the generic coding so
        # the round trip preserves their type.)
        if isinstance(obj, list) and obj and _pack_homogeneous(obj, out):
            return
        code = _TUPLE if isinstance(obj, tuple) else _LIST
        out.append(code)
        out.append(_U32.pack(len(obj)))
        for item in obj:
            _pack(item, out)
    elif isinstance(obj, dict):
        out.append(_DICT)
        out.append(_U32.pack(len(obj)))
        for key, value in obj.items():
            _pack(key, out)
            _pack(value, out)
    else:
        raise TypeError(
            f"cannot serialize {type(obj).__name__!r} into a snapshot; "
            f"export plain data from to_snapshot()")


def pack_obj(obj: Any) -> bytes:
    """Serialize a plain-data object tree to bytes."""
    out: list = []
    _pack(obj, out)
    return b"".join(out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise SnapshotCorruptError(
                f"truncated object payload (wanted {count} bytes at "
                f"offset {self.pos}, have {len(self.data) - self.pos})")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk


def _unpack(reader: _Reader) -> Any:
    code = reader.take(1)
    if code == _NONE:
        return None
    if code == _TRUE:
        return True
    if code == _FALSE:
        return False
    if code == _INT:
        length = reader.take(1)[0]
        return int.from_bytes(reader.take(length), "big", signed=True)
    if code == _FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if code == _STR:
        length = _U32.unpack(reader.take(4))[0]
        return reader.take(length).decode("utf-8")
    if code == _BYTES:
        length = _U32.unpack(reader.take(4))[0]
        return reader.take(length)
    if code == _INT_ARRAY:
        count = _U32.unpack(reader.take(4))[0]
        packed = array("q")
        packed.frombytes(reader.take(8 * count))
        if sys.byteorder != "little":  # pragma: no cover
            packed.byteswap()
        return packed.tolist()
    if code == _STR_ARRAY:
        count = _U32.unpack(reader.take(4))[0]
        if reader.take(1) != _INT_ARRAY:
            raise SnapshotCorruptError("malformed string-array lengths")
        length_count = _U32.unpack(reader.take(4))[0]
        if length_count != count:
            raise SnapshotCorruptError("string-array length mismatch")
        lengths = array("q")
        lengths.frombytes(reader.take(8 * count))
        if sys.byteorder != "little":  # pragma: no cover
            lengths.byteswap()
        joined = reader.take(sum(lengths))
        items = []
        position = 0
        for length in lengths:
            items.append(joined[position:position + length]
                         .decode("utf-8"))
            position += length
        return items
    if code == _F64_ARRAY:
        count = _U32.unpack(reader.take(4))[0]
        return list(struct.unpack(f">{count}d", reader.take(8 * count)))
    if code in (_LIST, _TUPLE):
        count = _U32.unpack(reader.take(4))[0]
        items = [_unpack(reader) for _ in range(count)]
        return tuple(items) if code == _TUPLE else items
    if code == _DICT:
        count = _U32.unpack(reader.take(4))[0]
        result = {}
        for _ in range(count):
            key = _unpack(reader)
            result[key] = _unpack(reader)
        return result
    raise SnapshotCorruptError(f"unknown type code {code!r} at offset "
                               f"{reader.pos - 1}")


def unpack_obj(payload: bytes) -> Any:
    """Deserialize bytes produced by :func:`pack_obj`."""
    reader = _Reader(payload)
    obj = _unpack(reader)
    if reader.pos != len(payload):
        raise SnapshotCorruptError(
            f"{len(payload) - reader.pos} trailing bytes after object")
    return obj


# -- section framing ----------------------------------------------------------


def write_section(out: BinaryIO, kind: str, payload: bytes) -> int:
    """Append one checksummed section; returns the bytes written."""
    name = kind.encode("utf-8")
    header = SECTION_HEADER.pack(len(name), len(payload), crc32(payload))
    out.write(header)
    out.write(name)
    out.write(payload)
    return len(header) + len(name) + len(payload)


def read_sections(data: bytes, offset: int = 0
                  ) -> Iterator[tuple[str, bytes]]:
    """Yield ``(kind, payload)`` pairs, validating each section's CRC.

    Raises :class:`SnapshotCorruptError` on any truncation or checksum
    mismatch — snapshots are all-or-nothing (the WAL has its own,
    torn-tail-tolerant reader).
    """
    size = len(data)
    while offset < size:
        if offset + SECTION_HEADER.size > size:
            raise SnapshotCorruptError(
                f"truncated section header at offset {offset}")
        name_length, payload_length, expected_crc = \
            SECTION_HEADER.unpack_from(data, offset)
        offset += SECTION_HEADER.size
        if offset + name_length + payload_length > size:
            raise SnapshotCorruptError(
                f"truncated section body at offset {offset}")
        kind = data[offset:offset + name_length].decode("utf-8")
        offset += name_length
        payload = data[offset:offset + payload_length]
        offset += payload_length
        if crc32(payload) != expected_crc:
            raise SnapshotCorruptError(
                f"CRC mismatch in section {kind!r}")
        yield kind, payload

"""Recovery: rebuild a live database from snapshot + WAL suffix.

``recover(manager, database)`` is what :meth:`Database.open` runs under
the write lock before the database accepts queries:

1. pick the newest snapshot generation whose file parses and passes
   every section checksum; a corrupt newest generation falls back to
   the previous one (``keep_generations`` retention exists exactly for
   this), and *no* snapshot at all means an empty starting state;
2. restore the chosen snapshot verbatim through
   :meth:`Database._restore_from_snapshot` — no XML parsing, no
   ``rebuild_derived``;
3. replay every WAL with generation >= the chosen snapshot in
   ascending order.  Each WAL is opened through
   :meth:`WriteAheadLog.open`, which truncates a torn tail frame, so a
   crash mid-append loses exactly the unacknowledged record and
   nothing else.  Replayed records re-run the normal update paths with
   ``manager.replaying`` set (which suppresses re-logging and
   auto-checkpoints);
4. the manager's generation is advanced past *every* file present on
   disk — even corrupt ones — so the next checkpoint can never collide
   with (and be masked by) a damaged file;
5. with ``debug_checks`` enabled the recovered documents are
   cross-checked against fresh rebuilds (``verify_derived``).
"""

from __future__ import annotations

from repro.errors import RecoveryError, SnapshotCorruptError, \
    WALCorruptError
from repro.durability.checkpoint import (
    list_generations,
    snapshot_path,
    wal_path,
)
from repro.durability.snapshot import read_snapshot
from repro.durability.wal import WriteAheadLog, read_records

__all__ = ["recover"]


def recover(manager, database) -> dict:
    """Restore ``database`` from ``manager.directory``.

    Returns a report dict: chosen snapshot generation (or None),
    snapshots that failed validation, WAL records replayed, and bytes
    truncated from torn WAL tails.
    """
    directory = manager.directory
    generations = list_generations(directory)
    corrupt: list[int] = []
    chosen = None
    state = None
    for generation in reversed(generations["snapshots"]):
        try:
            state = read_snapshot(snapshot_path(directory, generation))
        except SnapshotCorruptError:
            corrupt.append(generation)
            continue
        chosen = generation
        break
    if chosen is None and corrupt:
        # Snapshots exist but none validates.  Replaying from an empty
        # state is only sound if the *complete* WAL history survives
        # (generation 0 onward, no pruning gaps); otherwise we would
        # silently resurrect a partial database — refuse instead.
        wals = generations["wals"]
        if not wals or wals != list(range(wals[-1] + 1)):
            raise RecoveryError(
                f"every snapshot generation is corrupt "
                f"({sorted(corrupt)}) and the WAL history is "
                f"incomplete: cannot recover")

    if state is not None:
        database._restore_from_snapshot(state)
    replay_from = chosen if chosen is not None else 0

    replayed = 0
    truncated = 0
    replay_wals = [g for g in generations["wals"] if g >= replay_from]
    manager.replaying = True
    try:
        for generation in replay_wals:
            path = wal_path(directory, generation)
            size_before = path.stat().st_size
            if getattr(manager, "read_only", False):
                # Read-only openers must not repair the directory: a
                # torn tail is parsed around (lenient read) and left on
                # disk for the writing primary to truncate.
                try:
                    records, valid_length, _ = read_records(path)
                except WALCorruptError:
                    corrupt.append(generation)
                    continue
                truncated += max(0, size_before - valid_length)
            else:
                try:
                    wal, records = WriteAheadLog.open(
                        path, fsync=manager.fsync,
                        opener=manager.wal_opener)
                except WALCorruptError:
                    # A WAL whose very header is damaged contributes
                    # nothing; the snapshot for its generation already
                    # holds everything earlier.
                    corrupt.append(generation)
                    continue
                truncated += max(0, size_before - wal.size_bytes)
                wal.close()
            for record in records:
                database._replay_record(record)
                replayed += 1
    finally:
        manager.replaying = False

    # Never reuse a generation number that exists on disk in any form:
    # a new checkpoint must not sit beside (or behind) a corrupt file
    # with the same number.
    highest = max(
        [replay_from] + generations["snapshots"] + generations["wals"]
        + corrupt)
    manager.generation = highest
    if getattr(manager, "read_only", False):
        manager.wal = None  # log() stays a no-op; directory untouched
    else:
        current = wal_path(directory, highest)
        manager.wal, _ = WriteAheadLog.open(
            current, fsync=manager.fsync, opener=manager.wal_opener)

    if database.debug_checks:
        for document in list(database.documents.values()):
            database.verify_derived(document)

    return {
        "snapshot_generation": chosen,
        "corrupt_generations": sorted(corrupt),
        "wal_records_replayed": replayed,
        "wal_bytes_truncated": truncated,
    }

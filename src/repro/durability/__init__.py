"""Durability: on-disk snapshots + write-ahead log with crash recovery.

Layers (bottom up):

* :mod:`repro.durability.format` — checksummed object encoding and the
  per-section framing shared by snapshots and the WAL;
* :mod:`repro.durability.wal` — the append-only logical log with
  fsync-before-apply semantics and torn-tail truncation;
* :mod:`repro.durability.snapshot` — the whole-database snapshot
  container whose load path bypasses XML parsing and
  ``rebuild_derived`` entirely;
* :mod:`repro.durability.checkpoint` — atomic snapshot publication,
  WAL rotation and generation pruning;
* :mod:`repro.durability.recovery` — newest-valid-snapshot selection
  with corruption fallback, plus WAL replay;
* :mod:`repro.durability.manager` — the policy object a durable
  :class:`~repro.engine.database.Database` owns.
"""

from repro.durability.manager import DurabilityManager
from repro.durability.snapshot import (
    model_tree_from_succinct,
    read_snapshot,
    write_snapshot,
)
from repro.durability.wal import WriteAheadLog, read_records
from repro.durability.checkpoint import list_generations, snapshot_path, \
    wal_path

__all__ = [
    "DurabilityManager",
    "WriteAheadLog",
    "read_records",
    "write_snapshot",
    "read_snapshot",
    "model_tree_from_succinct",
    "list_generations",
    "snapshot_path",
    "wal_path",
]

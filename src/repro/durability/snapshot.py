"""The snapshot container: a whole database state in one checksummed file.

Layout::

    RXSNAP01 [u32 version]
    section "meta"            load epoch, default uri, document count
    per document i:
      section "doc<i>:header"        uri + update generation
      section "doc<i>:succinct"      BP bits, tags, kinds, symbols, content
      section "doc<i>:interval"      post/end/level/parent label columns
      section "doc<i>:tagindex"      tag -> [pre...] postings
      section "doc<i>:statistics"    every cost-model counter + generation
      section "doc<i>:valueindex"    string-index entries + tombstone state
      section "doc<i>:numericindex"  numeric-index entries + tombstone state
    section "end"             (empty; a file without it is truncated)

Every section carries its own CRC32 (see
:mod:`repro.durability.format`), so corruption anywhere is detected on
load and recovery can fall back to the previous snapshot generation.

Loading a snapshot **bypasses XML parsing and** ``rebuild_derived``:
every derived structure — tag index, statistics, both value indexes —
is restored *verbatim* through the storage classes' ``from_snapshot`` /
``restore`` constructors.  The only thing rebuilt is the model tree
(reference semantics need live :mod:`repro.xml.model` objects), and that
is reconstructed from the succinct store by :func:`
model_tree_from_succinct` — a plain pre-order walk, no tokenizer.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Union

from repro.errors import SnapshotCorruptError
from repro.xml import model
from repro.storage.succinct import (
    KIND_ATTRIBUTE,
    KIND_COMMENT,
    KIND_DOCUMENT,
    KIND_ELEMENT,
    KIND_PI,
    KIND_TEXT,
    SuccinctDocument,
)
from repro.durability.format import pack_obj, unpack_obj, write_section, \
    read_sections

__all__ = ["write_snapshot", "read_snapshot", "model_tree_from_succinct",
           "materialise_tree", "SNAPSHOT_MAGIC", "SNAPSHOT_VERSION"]

SNAPSHOT_MAGIC = b"RXSNAP01"
SNAPSHOT_VERSION = 1

_DOC_SECTIONS = ("header", "succinct", "interval", "tagindex",
                 "statistics", "valueindex", "numericindex")


def write_snapshot(out: BinaryIO, database) -> dict:
    """Serialize every loaded document of ``database`` into ``out``.

    The caller holds the database's write lock (checkpoints are
    exclusive), so the state cannot move underneath the serializers.
    Returns ``{"documents": n, "bytes": total}``.
    """
    total = out.write(SNAPSHOT_MAGIC + struct.pack(">I", SNAPSHOT_VERSION))
    meta = {
        "load_epoch": database._load_epoch,
        "default_uri": database._default_uri,
        "documents": len(database.documents),
    }
    total += write_section(out, "meta", pack_obj(meta))
    for index, (uri, document) in enumerate(database.documents.items()):
        parts = {
            "header": {"uri": uri, "generation": document.generation},
            "succinct": document.succinct.to_snapshot(),
            "interval": document.interval.to_snapshot(),
            "tagindex": document.tag_index.postings_snapshot(),
            "statistics": document.statistics.to_snapshot(),
            "valueindex": document.value_index.to_snapshot(),
            "numericindex": document.numeric_index.to_snapshot(),
        }
        for kind in _DOC_SECTIONS:
            total += write_section(out, f"doc{index}:{kind}",
                                   pack_obj(parts[kind]))
    total += write_section(out, "end", b"")
    return {"documents": len(database.documents), "bytes": total}


def read_snapshot(source: Union[str, Path, bytes]) -> dict:
    """Parse and validate a snapshot file (path or raw bytes).

    Returns the decoded state::

        {"load_epoch": int, "default_uri": str | None,
         "documents": [{"header": ..., "succinct": ..., ...}, ...]}

    Raises :class:`SnapshotCorruptError` on any structural damage: bad
    magic, unknown version, truncated or CRC-failing section, missing
    ``end`` marker, or a document missing one of its sections.
    """
    if isinstance(source, (str, Path)):
        data = Path(source).read_bytes()
    else:
        data = source
    prefix = len(SNAPSHOT_MAGIC) + 4
    if len(data) < prefix or data[:len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise SnapshotCorruptError("not a snapshot file (bad magic)")
    (version,) = struct.unpack_from(">I", data, len(SNAPSHOT_MAGIC))
    if version != SNAPSHOT_VERSION:
        raise SnapshotCorruptError(f"unsupported snapshot version "
                                   f"{version}")
    meta = None
    documents: dict[int, dict] = {}
    saw_end = False
    for kind, payload in read_sections(data, prefix):
        if kind == "meta":
            meta = unpack_obj(payload)
        elif kind == "end":
            saw_end = True
        elif kind.startswith("doc") and ":" in kind:
            doc_part, section = kind.split(":", 1)
            if not doc_part[3:].isdigit():
                raise SnapshotCorruptError(
                    f"malformed section kind {kind!r}")
            doc_index = int(doc_part[3:])
            documents.setdefault(doc_index, {})[section] = \
                unpack_obj(payload)
        else:
            raise SnapshotCorruptError(f"unknown section kind {kind!r}")
    if meta is None:
        raise SnapshotCorruptError("snapshot has no meta section")
    if not saw_end:
        raise SnapshotCorruptError("snapshot is missing its end marker "
                                   "(truncated write)")
    if len(documents) != meta["documents"]:
        raise SnapshotCorruptError(
            f"snapshot advertises {meta['documents']} documents but "
            f"holds {len(documents)}")
    ordered = []
    for doc_index in sorted(documents):
        parts = documents[doc_index]
        missing = [s for s in _DOC_SECTIONS if s not in parts]
        if missing:
            raise SnapshotCorruptError(
                f"document {doc_index} is missing sections {missing}")
        ordered.append(parts)
    return {
        "load_epoch": meta["load_epoch"],
        "default_uri": meta["default_uri"],
        "documents": ordered,
    }


def materialise_tree(interval, uri: str
                     ) -> tuple[model.Document, list]:
    """Model tree **and** storage node list from restored interval
    records — the recovery fast path.

    The interval records already carry everything the model needs
    (kind, tag, value, parent) in exact storage pre-order, so one flat
    loop attaches each node to its (already materialised) parent via
    the bulk ``adopt`` constructors — no BP navigation, no per-node
    accessor calls, no separate :func:`storage_node_list` walk.
    Returns ``(document, node_list)`` where ``node_list[pre]`` is the
    model node for storage pre-order id ``pre``.
    """
    records = interval.nodes
    if not records or records[0].kind != KIND_DOCUMENT:
        raise SnapshotCorruptError(
            "interval records do not start with a document node")
    document = model.Document(uri=uri)
    node_list: list = [document]
    attach = node_list.append
    for record in records[1:]:
        parent = node_list[record.parent]
        kind = record.kind
        if kind == KIND_ELEMENT:
            node = model.Element(record.tag)
            parent.adopt(node)
        elif kind == KIND_TEXT:
            node = parent.adopt(model.Text(record.value or ""))
        elif kind == KIND_ATTRIBUTE:
            node = parent.adopt_attribute(record.tag[1:],
                                          record.value or "")
        elif kind == KIND_COMMENT:
            node = parent.adopt(model.Comment(record.value or ""))
        elif kind == KIND_PI:
            node = parent.adopt(model.ProcessingInstruction(
                record.tag[1:], record.value or ""))
        else:
            raise SnapshotCorruptError(f"unknown node kind {kind}")
        attach(node)
    return document, node_list


def model_tree_from_succinct(succinct: SuccinctDocument,
                             uri: str) -> model.Document:
    """Reconstruct the reference model tree from the succinct store.

    One pre-order scan, no XML tokenizer: elements, attributes, merged
    text runs, comments and processing instructions are materialised in
    exactly the order the storage scheme keeps them, so the resulting
    tree is node-for-node aligned with the storage pre-order (which is
    what :func:`repro.engine.mapping.storage_node_list` requires).
    """
    document = model.Document(uri=uri)
    parents: list = [document]
    pushed: list[bool] = []
    for event, preorder in succinct.scan(0):
        if event == "end":
            if pushed.pop():
                parents.pop()
            continue
        kind = succinct.kind(preorder)
        if kind == KIND_DOCUMENT:
            pushed.append(False)
            continue
        top = parents[-1]
        if kind == KIND_ELEMENT:
            element = model.Element(succinct.tag(preorder))
            top.append(element)
            parents.append(element)
            pushed.append(True)
            continue
        text = succinct.text_of(preorder) or ""
        if kind == KIND_ATTRIBUTE:
            top.set_attribute(succinct.tag(preorder)[1:], text)
        elif kind == KIND_TEXT:
            top.append(model.Text(text))
        elif kind == KIND_COMMENT:
            top.append(model.Comment(text))
        elif kind == KIND_PI:
            top.append(model.ProcessingInstruction(
                succinct.tag(preorder)[1:], text))
        else:  # pragma: no cover - exhaustive over KIND_*
            raise SnapshotCorruptError(f"unknown node kind {kind}")
        pushed.append(False)
    return document

"""The durability policy object owned by a durable Database.

A :class:`DurabilityManager` ties the pieces together: it owns the
directory, the current WAL and generation counter, decides *when* to
checkpoint (every ``checkpoint_every`` logged operations), and exposes
the injectable file openers that the crash-injection harness uses to
make writes fail at chosen byte offsets.

The manager itself is not locked: every entry point is called by the
Database while it holds its exclusive writer lock, which serializes
logging, checkpointing and recovery against each other (queries are
lock-free MVCC snapshot reads and never conflict).  Ordering contract
per update: the WAL record is appended + fsynced *before* the writer
builds its copy-on-write version, and ``maybe_checkpoint`` runs only
*after* the new snapshot is published — a checkpoint serializes
``database.documents``, so it always captures exactly the state the
log explains.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import BinaryIO, Callable, Optional

from repro.durability.checkpoint import (
    DEFAULT_PIN_TTL_SECONDS,
    write_checkpoint,
)
from repro.durability.recovery import recover

__all__ = ["DurabilityManager"]

# Signature of an injectable opener: (path, mode) -> file object.
Opener = Callable[[Path, str], BinaryIO]


def _default_opener(path: Path, mode: str) -> BinaryIO:
    return open(path, mode)


class DurabilityManager:
    """Snapshots + WAL + checkpoint policy for one database directory.

    Parameters
    ----------
    directory:
        Where ``snapshot-*.snap`` and ``wal-*.log`` files live (created
        if missing).
    checkpoint_every:
        Auto-checkpoint after this many logged operations (0 disables
        automatic checkpoints; explicit ``db.checkpoint()`` still
        works).
    fsync:
        Pass ``False`` to skip fsync calls (benchmarks only — crash
        safety requires the default).
    keep_generations:
        Snapshot/WAL generations retained after a checkpoint; 2 gives
        recovery one complete fallback if the newest snapshot is
        corrupt on disk.
    wal_opener / snapshot_opener:
        Injectable file openers (the crash harness substitutes
        :class:`~tests.durability.faults.FaultingFile` factories).
    read_only:
        Recover without mutating the directory: the WAL suffix is
        replayed in memory but torn tails are left on disk untouched
        and no WAL is opened for appending (``log`` stays a no-op).
        Used by server worker processes sharing a primary's directory.
    """

    def __init__(self, directory, *, checkpoint_every: int = 256,
                 fsync: bool = True, keep_generations: int = 2,
                 wal_opener: Optional[Opener] = None,
                 snapshot_opener: Optional[Opener] = None,
                 read_only: bool = False):
        self.directory = Path(directory)
        self.read_only = read_only
        if not read_only:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = checkpoint_every
        self.fsync = fsync
        self.keep_generations = max(1, keep_generations)
        self.wal_opener = wal_opener
        self.snapshot_opener = snapshot_opener or _default_opener
        self.generation = 0
        self.wal = None
        self.replaying = False
        self.ops_since_checkpoint = 0
        self.checkpoints_written = 0
        self.records_logged = 0
        self.bytes_logged = 0  # cumulative across WAL rotations
        self.last_recovery: Optional[dict] = None
        self.last_checkpoint: Optional[dict] = None
        # Replication-cursor pins older than this are abandoned and
        # ignored by checkpoint pruning (see durability/checkpoint.py).
        self.retention_pin_ttl_seconds = DEFAULT_PIN_TTL_SECONDS
        # Optional: set by the owning Database so WAL appends and
        # checkpoints show up as spans in its trace buffer.
        self.tracer = None

    # -- file plumbing ------------------------------------------------------------

    def open_snapshot_file(self, path: Path) -> BinaryIO:
        """Open the temp snapshot file for writing (injectable so the
        crash harness can kill the write mid-snapshot)."""
        return self.snapshot_opener(path, "wb")

    # -- lifecycle ----------------------------------------------------------------

    def attach(self, database) -> dict:
        """Recover ``database`` from the directory and open the current
        WAL.  Called once from :meth:`Database.open` under the write
        lock; returns the recovery report."""
        self.last_recovery = recover(self, database)
        return self.last_recovery

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()
            self.wal = None

    # -- logging ------------------------------------------------------------------

    def log(self, record: dict) -> None:
        """Append one logical record and fsync it.  The caller mutates
        in-memory state only after this returns — that ordering *is*
        the write-ahead invariant."""
        if self.replaying or self.wal is None:
            return
        # Stamp the append wall-clock: replicas tailing this WAL derive
        # their staleness bound from it (replay ignores unknown keys).
        if "ts" not in record:
            record = dict(record, ts=time.time())
        if self.tracer is not None:
            with self.tracer.span("wal.append",
                                  op=record.get("op")) as span:
                frame_bytes = self.wal.append(record)
                if span.is_recording:
                    span.set(bytes=frame_bytes)
        else:
            frame_bytes = self.wal.append(record)
        self.bytes_logged += frame_bytes or 0
        self.records_logged += 1
        self.ops_since_checkpoint += 1

    # -- checkpointing ------------------------------------------------------------

    def maybe_checkpoint(self, database) -> Optional[dict]:
        """Checkpoint when the policy says so (returns the report)."""
        if self.replaying or self.checkpoint_every <= 0:
            return None
        if self.ops_since_checkpoint < self.checkpoint_every:
            return None
        return self.checkpoint(database)

    def checkpoint(self, database) -> dict:
        """Write the next snapshot generation and rotate the WAL."""
        if self.tracer is not None:
            with self.tracer.span("checkpoint") as span:
                report = write_checkpoint(self, database)
                if span.is_recording:
                    span.set(generation=report.get("generation"),
                             elapsed_seconds=report.get(
                                 "elapsed_seconds"))
        else:
            report = write_checkpoint(self, database)
        self.last_checkpoint = report
        return report

    # -- reporting ----------------------------------------------------------------

    def report(self) -> dict:
        return {
            "directory": str(self.directory),
            "generation": self.generation,
            "checkpoint_every": self.checkpoint_every,
            "fsync": self.fsync,
            "keep_generations": self.keep_generations,
            "records_logged": self.records_logged,
            "bytes_logged": self.bytes_logged,
            "ops_since_checkpoint": self.ops_since_checkpoint,
            "checkpoints_written": self.checkpoints_written,
            "wal_bytes": 0 if self.wal is None else self.wal.size_bytes,
            "last_recovery": self.last_recovery,
        }

    def __repr__(self) -> str:
        return (f"<DurabilityManager gen={self.generation} "
                f"dir={os.fspath(self.directory)!r}>")

"""Query compilation & result caching — the serving layer.

The seed engine treated every :meth:`Database.query` call as a batch job:
lex → parse → backward-translate → rewrite → plan → run, with nothing
remembered between calls.  Repeated-query traffic (the ROADMAP's
"millions of users" workload) re-pays the whole front half of that
pipeline per call even though it is a pure function of the query text.

Three caches fix that:

:class:`PlanCache`
    A size-bounded LRU mapping *normalized query text* to the compiled
    logical plan (``rewrite_plan(backward_translate(parse_xquery(q)))``).
    Plans are immutable after compilation, so one compiled plan serves
    any number of concurrent executions, strategies, and documents.

:class:`ResultCache`
    A size-bounded LRU of fully materialised result sequences for
    *read-only* executions, keyed by (normalized text, strategy, target
    document) and stamped with the pinned snapshot's **version
    vector** — the load epoch plus every loaded document's unique
    ``version_id`` (precomputed on each
    :class:`~repro.engine.database.DatabaseSnapshot`).  Any
    ``insert``/``delete``/``load``/``rebuild_derived`` publishes new
    version ids, so stale hits are structurally impossible: a stamp
    mismatch is treated as a miss and the dead entry is dropped.
    Queries with external variable bindings bypass this cache (bindings
    are not part of the key).

Strategy memo (wired in :class:`repro.physical.planner.PhysicalPlanner`)
    ``auto``-mode strategy choice is memoized per document, keyed on the
    pattern signature and the statistics generation, so a hot query does
    not re-cost every strategy on every call.

Every cache exposes hit/miss/eviction counters; the database aggregates
them in :meth:`Database.cache_report` and per-query in
``QueryResult.stats["cache"]``.

All three caches are **thread-safe**: every :class:`LRUCache` operation
holds an internal RLock, and the result cache's compound
stamp-check-then-promote runs under that same lock, so the serving
layer's concurrent readers (see :mod:`repro.engine.concurrency`) can
share them without external synchronization.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Optional

__all__ = ["CacheStats", "LRUCache", "PlanCache", "ResultCache",
           "PreparedQuery", "normalize_query"]


def _scan_string_literal(text: str, start: int) -> int:
    """The index one past the string literal opening at ``start``.

    Follows the lexer's rules: single- or double-quoted, with a doubled
    quote as the escape (``"a""b"`` is one literal).  An unterminated
    literal swallows the rest of the text (the lexer will reject the
    query anyway; the key just has to be deterministic).
    """
    quote = text[start]
    position = start + 1
    length = len(text)
    while position < length:
        if text[position] == quote:
            if position + 1 < length and text[position + 1] == quote:
                position += 2  # doubled-quote escape, still inside
                continue
            return position + 1
        position += 1
    return length


def normalize_query(text: str) -> str:
    """The cache key for a query text: whitespace-collapsed *outside*
    string literals.

    Only runs of whitespace between tokens are folded (to one space,
    with the ends stripped), so two texts normalize equal only when
    they tokenize identically.  Whitespace **inside** ``"…"``/``'…'``
    literals is significant — ``//book[title="a  b"]`` and
    ``//book[title="a b"]`` are different queries and must not collide
    on one plan-cache/result-cache key — so literal bodies are copied
    through verbatim (doubled-quote escapes included).
    """
    parts: list[str] = []
    position = 0
    length = len(text)
    while position < length:
        character = text[position]
        if character in ("'", '"'):
            end = _scan_string_literal(text, position)
            parts.append(text[position:end])
            position = end
        elif character.isspace():
            end = position
            while end < length and text[end].isspace():
                end += 1
            if parts and end < length:
                parts.append(" ")  # neither leading nor trailing
            position = end
        else:
            end = position
            while end < length and not text[end].isspace() \
                    and text[end] not in ("'", '"'):
                end += 1
            parts.append(text[position:end])
            position = end
    return "".join(parts)


class CacheStats:
    """Hit/miss/eviction/invalidation counters for one cache."""

    __slots__ = ("hits", "misses", "evictions", "invalidations")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup) — the figure the
        observability layer's cache panel exports."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class LRUCache:
    """A size-bounded, **thread-safe** LRU map with counter accounting.

    ``capacity <= 0`` disables the cache entirely (every lookup is a
    recorded miss, nothing is stored) — that is the documented way to
    switch a cache off.

    Every operation holds ``self.lock`` (an :class:`threading.RLock`),
    so entries, LRU order, and the hit/miss/eviction counters stay
    mutually consistent under concurrent readers.  Compound operations
    that need several steps to be atomic (e.g. the result cache's
    stamp-check-then-promote) take the same lock around the sequence —
    the RLock makes the nested method calls free.
    """

    def __init__(self, capacity: int, stats: Optional[CacheStats] = None):
        self.capacity = capacity
        self.stats = stats if stats is not None else CacheStats()
        self.lock = threading.RLock()
        self._entries: OrderedDict[Any, Any] = OrderedDict()

    def get(self, key: Any) -> Any:
        """The cached value, or ``None`` on a miss (counted)."""
        with self.lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def peek(self, key: Any) -> Any:
        """Like :meth:`get` but without touching LRU order or counters."""
        with self.lock:
            return self._entries.get(key)

    def put(self, key: Any, value: Any) -> None:
        """Store ``value``, evicting the LRU entry beyond capacity."""
        if self.capacity <= 0:
            return
        with self.lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, key: Any) -> None:
        """Drop one entry (counted as an invalidation if present)."""
        with self.lock:
            if self._entries.pop(key, None) is not None:
                self.stats.invalidations += 1

    def clear(self) -> int:
        """Drop everything; returns the number of entries dropped."""
        with self.lock:
            dropped = len(self._entries)
            self.stats.invalidations += dropped
            self._entries.clear()
            return dropped

    def __len__(self) -> int:
        with self.lock:
            return len(self._entries)

    def report(self) -> dict[str, int]:
        """Counters plus occupancy, for :meth:`Database.cache_report`."""
        with self.lock:
            report = self.stats.snapshot()
            report["entries"] = len(self._entries)
            report["capacity"] = self.capacity
            report["hit_rate"] = self.stats.hit_rate
            return report


class PlanCache:
    """LRU of compiled logical plans keyed by normalized query text."""

    def __init__(self, capacity: int = 128):
        self._lru = LRUCache(capacity)

    def get_or_compile(self, text: str,
                       compiler: Callable[[str], Any]) -> tuple[Any, bool]:
        """``(plan, was_hit)`` — compiles (and stores) on a miss.

        Compilation runs *outside* the cache lock: holding it would
        serialize every concurrent compile behind the slowest one.  Two
        threads racing on the same cold key may both compile; plans are
        pure values, so the last ``put`` winning is harmless.
        """
        key = normalize_query(text)
        plan = self._lru.get(key)
        if plan is not None:
            return plan, True
        plan = compiler(text)
        self._lru.put(key, plan)
        return plan, False

    def clear(self) -> int:
        return self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    def report(self) -> dict[str, int]:
        return self._lru.report()


class ResultCache:
    """Version-stamped LRU of materialised read-only results.

    Entries are ``(stamp, items, strategy)``, the stamp being the
    pinned snapshot's version vector; a lookup whose stamp does not
    exactly match the current snapshot's drops the entry and reports a
    miss, so results can never survive a snapshot publish (update,
    load, or derived rebuild) on any loaded document.
    """

    def __init__(self, capacity: int = 256):
        self._lru = LRUCache(capacity)

    @staticmethod
    def key(text: str, strategy: str, uri: Optional[str]) -> tuple:
        return (normalize_query(text), strategy, uri)

    def lookup(self, key: tuple, stamp: tuple) -> Optional[tuple]:
        """``(items, strategy)`` on a fresh hit, else ``None``.

        The returned ``items`` list is a **copy**: ``store`` copies on
        the way in, so returning the cached list by reference would let
        one caller's ``result.items`` mutation corrupt every later hit.
        The stamp-check / invalidate / LRU-promote sequence holds the
        cache lock so a concurrent ``store`` or ``clear`` cannot
        interleave between the peek and the promote.
        """
        with self._lru.lock:
            entry = self._lru.peek(key)
            if entry is None:
                self._lru.stats.misses += 1
                return None
            cached_stamp, items, strategy = entry
            if cached_stamp != stamp:
                self._lru.invalidate(key)
                self._lru.stats.misses += 1
                return None
            # Re-record as a genuine hit (peek skipped the counters).
            self._lru.get(key)
            return list(items), strategy

    def store(self, key: tuple, stamp: tuple, items: list,
              strategy: Optional[str]) -> None:
        self._lru.put(key, (stamp, list(items), strategy))

    def clear(self) -> int:
        return self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    def report(self) -> dict[str, int]:
        return self._lru.report()


class PreparedQuery:
    """A pre-compiled query bound to a database — the serving-path API.

    Obtained from :meth:`Database.prepare`; holds the compiled logical
    plan so repeated :meth:`run` calls skip the whole compilation
    pipeline (and still benefit from the result cache)::

        hot = db.prepare("//item[price > 50]/name")
        for _ in range(10_000):
            result = hot.run()
    """

    __slots__ = ("database", "text", "plan")

    def __init__(self, database, text: str, plan):
        self.database = database
        self.text = text
        self.plan = plan

    def run(self, strategy: str = "auto", uri: Optional[str] = None,
            variables: Optional[dict] = None,
            timeout_seconds: Optional[float] = None):
        """Execute; same contract as :meth:`Database.query`."""
        return self.database._run_compiled(
            self.text, self.plan, plan_hit=True, strategy=strategy,
            uri=uri, variables=variables,
            timeout_seconds=timeout_seconds)

    __call__ = run

    def explain(self, strategy: str = "auto",
                uri: Optional[str] = None) -> str:
        """The plan + strategy explanation for this prepared query."""
        return self.database.explain(self.text, strategy=strategy, uri=uri)

    def __repr__(self) -> str:
        return f"<PreparedQuery {normalize_query(self.text)!r}>"

"""The query engine: databases, planning, execution, EXPLAIN.

:class:`~repro.engine.database.Database` is the public facade: load
documents (text, files, or trees), pick an execution strategy, run XPath
and XQuery, inspect EXPLAIN output and per-query metrics.
"""

from repro.engine.cache import PlanCache, PreparedQuery, ResultCache
from repro.engine.concurrency import RWLock
from repro.engine.database import Database, QueryResult
from repro.engine.mapping import storage_preorder_map

__all__ = ["Database", "PlanCache", "PreparedQuery", "QueryResult",
           "ResultCache", "RWLock", "storage_preorder_map"]

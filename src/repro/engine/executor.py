"""Plan execution with physical lowering.

:func:`run_plan` executes a logical plan exactly like
:func:`repro.algebra.plan.execute_plan`, except that every **τ** node is
dispatched to the physical planner — NoK scan, partitioned NoK + joins,
structural joins, PathStack, TwigStack, navigational, or index-scan —
against the loaded document's storage, and the resulting pre-order ids are
materialised back to model nodes so the rest of the plan (list operators,
FLWOR machinery, γ) is storage-agnostic.

Patterns whose output set the join strategies cannot produce (multiple
output vertices) run through the NoK binding machinery.

Thread contract: one :class:`PhysicalExecutionContext` belongs to one
query execution on one thread — contexts are cheap and never shared
across threads (``Database.query_many`` builds one per query).  A
context carries the query's pinned ``DatabaseSnapshot``: every document
version it touches is immutable, so execution needs no lock at all; the
remaining shared mutable structures (the caches, the page manager, the
per-version strategy memo) take their own internal locks, so any number
of contexts may execute concurrently — including while a writer builds
and publishes new versions.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import ExecutionError, QueryTimeoutError
from repro.xml import model
from repro.algebra.plan import (
    ExecutionContext,
    PlanNode,
    Scan,
    Tau,
    execute_plan,
)
from repro.observability.tracing import NULL_SPAN
from repro.physical.base import OperatorStats

__all__ = ["PhysicalExecutionContext", "run_plan"]


class PhysicalExecutionContext(ExecutionContext):
    """Execution context that lowers τ nodes onto the storage engine."""

    def __init__(self, database, documents, context_node=None,
                 strategy: str = "auto", variables: Optional[dict] = None,
                 snapshot=None, deadline: Optional[float] = None):
        super().__init__(documents, variables=variables,
                         context_node=context_node)
        self.database = database
        # The pinned DatabaseSnapshot this execution runs against; τ
        # nodes resolve documents through it so a long-running query
        # keeps one consistent version of everything even while writers
        # publish successors.  None = resolve in the current snapshot.
        self.snapshot = snapshot
        self.strategy = strategy
        # Wall-clock deadline (time.monotonic() reference) after which
        # execution must abort with QueryTimeoutError.  Checked
        # cooperatively between τ batches — see check_deadline() — so a
        # server-side timeout stops a runaway structural join instead of
        # leaking the worker thread.  None = no deadline.
        self.deadline = deadline
        # Shared across with_variables() copies so sub-plan executions
        # (FLWOR clause sources) report into the same query record.
        self._shared = {"last_strategy": None}
        self.accumulated_stats = OperatorStats()
        # EXPLAIN ANALYZE hook: when the database sets this to a list,
        # run_tau appends one OperatorRecord per executed τ (estimates
        # from the cost model next to measured rows/pages/time).
        self.analyze_records: Optional[list] = None

    @property
    def last_strategy(self) -> Optional[str]:
        return self._shared["last_strategy"]

    @last_strategy.setter
    def last_strategy(self, value: Optional[str]) -> None:
        self._shared["last_strategy"] = value

    def with_variables(self, variables: dict) -> "PhysicalExecutionContext":
        child = PhysicalExecutionContext.__new__(PhysicalExecutionContext)
        child.documents = self.documents
        child.variables = variables
        child.context_node = self.context_node
        child.interpreter = self.interpreter
        child.database = self.database
        child.snapshot = self.snapshot
        child.strategy = self.strategy
        child.deadline = self.deadline
        child._shared = self._shared
        child.accumulated_stats = self.accumulated_stats
        child.analyze_records = self.analyze_records
        return child

    def check_deadline(self) -> None:
        """Abort with :class:`QueryTimeoutError` once the deadline has
        passed.  Called between τ batches (every run_plan dispatch, τ
        entry, and periodically inside the construct loop), so FLWOR
        iterations and multi-τ plans abort within one batch of the
        deadline instead of running to completion."""
        if self.deadline is not None \
                and time.monotonic() >= self.deadline:
            raise QueryTimeoutError(
                "query exceeded its wall-clock deadline "
                "(aborted cooperatively between tau batches)")

    # -- physical tau ------------------------------------------------------------

    def run_tau(self, plan: Tau) -> list:
        """Execute a τ over the loaded storage; returns model nodes."""
        self.check_deadline()
        scan = plan.inputs[0]
        if not isinstance(scan, Scan):
            raise ExecutionError("tau input must be a document scan")
        tree = execute_plan(scan, self)
        if self.snapshot is not None:
            loaded = self.snapshot.version_for_tree(tree)
        else:
            loaded = self.database.loaded_for_tree(tree)
        if loaded is None:
            raise ExecutionError(
                f"document {getattr(tree, 'uri', '?')!r} has no storage "
                "(loaded outside the database?)")
        analyzing = self.analyze_records is not None
        observability = getattr(self.database, "observability", None)
        tracer = observability.tracer if observability is not None \
            else None
        # The planner carries the document's persistent strategy memo:
        # repeated executions of a hot pattern skip the cost model.
        with (tracer.span("plan") if tracer is not None else NULL_SPAN):
            planner = self.database.planner_for(loaded)
        outputs = plan.pattern.output_vertices()
        span = (tracer.span("execute.tau") if tracer is not None
                else NULL_SPAN)
        if analyzing:
            io_before = self.database.pages.thread_snapshot()
            tau_started = time.perf_counter()
        with span:
            if len(outputs) == 1:
                matches, stats, used = planner.match(
                    plan.pattern, loaded.runtime, root=0,
                    strategy=self.strategy)
            else:
                bindings, stats = planner.match_bindings(
                    plan.pattern, loaded.runtime, root=0)
                matches = sorted({node for binding in bindings
                                  for node in binding.values()})
                used = "nok"
            if span.is_recording:
                span.set(strategy=used, rows=len(matches),
                         pattern=_tau_label(plan.pattern))
        self.last_strategy = used
        self.accumulated_stats.merge(stats)
        self.accumulated_stats.solutions += stats.solutions
        if analyzing:
            self._record_analysis(plan, planner, loaded, stats, used,
                                  len(matches), io_before, tau_started)
        # "construct": pre-order ids become model nodes for the rest of
        # the (storage-agnostic) plan.
        with (tracer.span("construct") if tracer is not None
              else NULL_SPAN):
            if self.deadline is None or len(matches) <= 4096:
                return [loaded.node_for(preorder) for preorder in matches]
            nodes = []
            for start in range(0, len(matches), 4096):
                self.check_deadline()
                nodes.extend(loaded.node_for(preorder)
                             for preorder in matches[start:start + 4096])
            return nodes

    def _record_analysis(self, plan: Tau, planner, loaded, stats,
                         used: str, rows: int, io_before: dict,
                         tau_started: float) -> None:
        """Append one EXPLAIN ANALYZE record for an executed τ."""
        from repro.observability.analyze import OperatorRecord

        elapsed = time.perf_counter() - tau_started
        io_after = self.database.pages.thread_snapshot()
        cost_model = planner.cost_model
        est_rows = 0.0
        est_pages = None
        if cost_model is not None:
            try:
                est_rows = cost_model.result_cardinality(plan.pattern)
                for estimate in cost_model.all_costs(
                        plan.pattern, include_columnar=True):
                    if estimate.strategy == used:
                        est_pages = estimate.pages
                        break
            except Exception:
                pass  # estimates are best-effort; actuals still matter
        self.analyze_records.append(OperatorRecord(
            operator=_tau_label(plan.pattern),
            strategy=used,
            est_rows=est_rows,
            est_pages=est_pages,
            actual_rows=rows,
            nodes_visited=stats.nodes_visited,
            postings_scanned=stats.postings_scanned,
            intermediate_results=stats.intermediate_results,
            structural_joins=stats.structural_joins,
            pages_read=(io_after.get("page_reads", 0)
                        - io_before.get("page_reads", 0)),
            pool_hits=(io_after.get("pool_hits", 0)
                       - io_before.get("pool_hits", 0)),
            elapsed_seconds=elapsed,
            detail=dict(stats.detail),
        ))


def _tau_label(pattern) -> str:
    """A one-line operator name for spans and EXPLAIN ANALYZE rows."""
    try:
        outputs = [v for v in pattern.vertices.values() if v.output]
        label = outputs[0].label_text() if outputs else "?"
    except Exception:
        label = "?"
    return (f"tau[{label}; {len(pattern.vertices)}v"
            f"/{len(pattern.edges)}e]")


def run_plan(plan: PlanNode, context: PhysicalExecutionContext):
    """Execute ``plan`` with physical τ lowering; other node types reuse
    the logical executor (which calls back into this function for
    sub-plans through the EnvBuild machinery)."""
    context.check_deadline()
    if isinstance(plan, Tau) and plan.inputs \
            and isinstance(plan.inputs[0], Scan):
        return context.run_tau(plan)
    value = execute_plan(plan, context)
    return _normalise(value)


def _normalise(value):
    from repro.algebra.nested import NestedList

    if isinstance(value, NestedList):
        return value.flatten()
    if isinstance(value, model.Document):
        return list(value.children())
    if isinstance(value, list):
        return value
    return [value]

"""Plan execution with physical lowering.

:func:`run_plan` executes a logical plan exactly like
:func:`repro.algebra.plan.execute_plan`, except that every **τ** node is
dispatched to the physical planner — NoK scan, partitioned NoK + joins,
structural joins, PathStack, TwigStack, navigational, or index-scan —
against the loaded document's storage, and the resulting pre-order ids are
materialised back to model nodes so the rest of the plan (list operators,
FLWOR machinery, γ) is storage-agnostic.

Patterns whose output set the join strategies cannot produce (multiple
output vertices) run through the NoK binding machinery.

Thread contract: one :class:`PhysicalExecutionContext` belongs to one
query execution on one thread — contexts are cheap and never shared
across threads (``Database.query_many`` builds one per query).  The
shared structures a context touches (documents, caches, tag/value
indexes, the page manager, the per-document strategy memo) are protected
by the database's reader-writer lock and their own internal locks, so
any number of contexts may execute concurrently.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ExecutionError
from repro.xml import model
from repro.algebra.plan import (
    ExecutionContext,
    PlanNode,
    Scan,
    Tau,
    execute_plan,
)
from repro.physical.base import OperatorStats

__all__ = ["PhysicalExecutionContext", "run_plan"]


class PhysicalExecutionContext(ExecutionContext):
    """Execution context that lowers τ nodes onto the storage engine."""

    def __init__(self, database, documents, context_node=None,
                 strategy: str = "auto", variables: Optional[dict] = None):
        super().__init__(documents, variables=variables,
                         context_node=context_node)
        self.database = database
        self.strategy = strategy
        # Shared across with_variables() copies so sub-plan executions
        # (FLWOR clause sources) report into the same query record.
        self._shared = {"last_strategy": None}
        self.accumulated_stats = OperatorStats()

    @property
    def last_strategy(self) -> Optional[str]:
        return self._shared["last_strategy"]

    @last_strategy.setter
    def last_strategy(self, value: Optional[str]) -> None:
        self._shared["last_strategy"] = value

    def with_variables(self, variables: dict) -> "PhysicalExecutionContext":
        child = PhysicalExecutionContext.__new__(PhysicalExecutionContext)
        child.documents = self.documents
        child.variables = variables
        child.context_node = self.context_node
        child.interpreter = self.interpreter
        child.database = self.database
        child.strategy = self.strategy
        child._shared = self._shared
        child.accumulated_stats = self.accumulated_stats
        return child

    # -- physical tau ------------------------------------------------------------

    def run_tau(self, plan: Tau) -> list:
        """Execute a τ over the loaded storage; returns model nodes."""
        scan = plan.inputs[0]
        if not isinstance(scan, Scan):
            raise ExecutionError("tau input must be a document scan")
        tree = execute_plan(scan, self)
        loaded = self.database.loaded_for_tree(tree)
        if loaded is None:
            raise ExecutionError(
                f"document {getattr(tree, 'uri', '?')!r} has no storage "
                "(loaded outside the database?)")
        # The planner carries the document's persistent strategy memo:
        # repeated executions of a hot pattern skip the cost model.
        planner = self.database.planner_for(loaded)
        outputs = plan.pattern.output_vertices()
        if len(outputs) == 1:
            matches, stats, used = planner.match(
                plan.pattern, loaded.runtime, root=0,
                strategy=self.strategy)
        else:
            bindings, stats = planner.match_bindings(
                plan.pattern, loaded.runtime, root=0)
            matches = sorted({node for binding in bindings
                              for node in binding.values()})
            used = "nok"
        self.last_strategy = used
        self.accumulated_stats.merge(stats)
        self.accumulated_stats.solutions += stats.solutions
        return [loaded.node_for(preorder) for preorder in matches]


def run_plan(plan: PlanNode, context: PhysicalExecutionContext):
    """Execute ``plan`` with physical τ lowering; other node types reuse
    the logical executor (which calls back into this function for
    sub-plans through the EnvBuild machinery)."""
    if isinstance(plan, Tau) and plan.inputs \
            and isinstance(plan.inputs[0], Scan):
        return context.run_tau(plan)
    value = execute_plan(plan, context)
    return _normalise(value)


def _normalise(value):
    from repro.algebra.nested import NestedList

    if isinstance(value, NestedList):
        return value.flatten()
    if isinstance(value, model.Document):
        return list(value.children())
    if isinstance(value, list):
        return value
    return [value]

"""Concurrency primitives for the serving layer.

The ROADMAP's workload is read-mostly: many pattern queries served
against a document store that changes comparatively rarely (the
XML-tree-pattern survey's setting, and RadegastXDB's concurrent request
loop in PAPERS.md).  Since the engine moved to MVCC snapshot reads
(:mod:`repro.engine.database`), queries never touch this lock at all —
they pin an immutable :class:`~repro.engine.database.DatabaseSnapshot`
and run against it.  :class:`RWLock` survives as the **writer mutex**:

* ``load`` / ``insert`` / ``delete`` / ``rebuild_derived`` acquire the
  *write* side — exactly one structural change builds its copy-on-write
  version and publishes it at a time;
* the *read* side remains available (tests, external callers embedding
  the engine, tools that need a writer-quiescent window), with the
  original shared-reader semantics.

:class:`RWLock` is **writer-preferring**: once a writer is waiting, new
first-entry readers queue behind it, so a continuous stream of read
sections cannot starve an update.  Both sides are reentrant within one
thread, and a writer may enter read sections it already covers (the
update paths resolve their targets through ``query``); upgrading a read
lock to a write lock is refused because it deadlocks two upgraders.

Timeouts are **deadlines**: ``acquire_read``/``acquire_write`` with a
``timeout`` spend at most that long in total, however many times the
internal condition wakes them, and a writer that gives up re-notifies
the condition so readers queued behind its writer preference are never
stranded.

The module is dependency-free (``threading`` only) so every layer —
engine, storage, physical — can use it without import cycles.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["RWLock"]


class RWLock:
    """A writer-preferring, reentrant reader-writer lock.

    Invariants:

    * any number of threads may hold the read side concurrently;
    * at most one thread holds the write side, and never while any other
      thread holds the read side;
    * a thread holding the write side may freely enter read sections
      (they are treated as nested sections of the exclusive region);
    * a thread already in a read section may re-enter read sections, and
      bypasses writer preference while doing so (blocking a re-entrant
      read behind a waiting writer would deadlock: the writer waits for
      the reader's outermost release);
    * a thread in a read section that asks for the write side gets a
      ``RuntimeError`` — lock upgrades deadlock as soon as two threads
      attempt them, so they are refused outright.

    Use the :meth:`read_locked` / :meth:`write_locked` context managers;
    the raw ``acquire_*``/``release_*`` pairs exist for tests and for
    callers that need ``timeout`` (which makes ``acquire_*`` return
    ``False`` instead of blocking forever).
    """

    def __init__(self, observer=None):
        self._cond = threading.Condition()
        self._active_readers = 0       # threads in a read section
        self._waiting_writers = 0      # threads blocked in acquire_write
        self._writer_ident = None      # ident of the active writer
        self._writer_depth = 0         # writer reentrancy depth
        self._local = threading.local()  # per-thread read depth
        # Optional wait-time observer: ``observer(mode, waited_seconds)``
        # with mode in ("read", "write"), called after every successful
        # acquisition — first-level and reentrant alike, so acquisition
        # *counts* stay meaningful even when reentrant fast paths wait
        # ~0s (outside the internal condition, so the callback may
        # itself take locks).  The engine wires this to the
        # ``repro_lock_wait_seconds`` histogram.
        self.observer = observer

    # -- per-thread bookkeeping ------------------------------------------------

    def _read_depth(self) -> int:
        return getattr(self._local, "read_depth", 0)

    def _set_read_depth(self, depth: int) -> None:
        self._local.read_depth = depth

    def _wait(self, deadline: float | None) -> bool:
        """One condition wait bounded by the caller's absolute deadline
        (``perf_counter`` seconds); ``False`` means the deadline passed.

        The caller's loop re-enters with the *remaining* time after
        every wakeup, so the total blocked time can never exceed the
        requested timeout — passing the original timeout to each
        iteration (the old behaviour) let repeated notifies push the
        total wait arbitrarily far past the deadline.
        """
        if deadline is None:
            self._cond.wait()
            return True
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            return False
        return self._cond.wait(remaining)

    # -- read side -------------------------------------------------------------

    def acquire_read(self, timeout: float | None = None) -> bool:
        """Enter a read section; returns ``False`` only on timeout."""
        depth = self._read_depth()
        if depth > 0:
            # Re-entrant read: no blocking (a waiting writer waits for
            # our outermost release, so queueing here would deadlock).
            self._set_read_depth(depth + 1)
            if self.observer is not None:
                self.observer("read", 0.0)
            return True
        me = threading.get_ident()
        started = time.perf_counter()
        deadline = None if timeout is None else started + timeout
        waited = None
        with self._cond:
            if self._writer_ident == me:
                # A read section nested in our own exclusive section:
                # free pass, not counted as a shared reader.
                self._local.counted = False
                self._set_read_depth(1)
                waited = 0.0 if self.observer is not None else None
            else:
                # First-level entry: writer preference applies.
                while self._writer_ident is not None \
                        or self._waiting_writers > 0:
                    if not self._wait(deadline):
                        return False
                self._active_readers += 1
                self._local.counted = True
                self._set_read_depth(1)
                if self.observer is not None:
                    waited = time.perf_counter() - started
        if waited is not None:
            self.observer("read", waited)
        return True

    def release_read(self) -> None:
        """Leave the innermost read section."""
        depth = self._read_depth()
        if depth <= 0:
            raise RuntimeError("release_read without acquire_read")
        self._set_read_depth(depth - 1)
        if depth > 1:
            return
        if not getattr(self._local, "counted", False):
            return  # the free pass inside our own write section
        self._local.counted = False
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    # -- write side ------------------------------------------------------------

    def acquire_write(self, timeout: float | None = None) -> bool:
        """Enter the exclusive section; returns ``False`` on timeout."""
        me = threading.get_ident()
        started = time.perf_counter()
        deadline = None if timeout is None else started + timeout
        waited = None
        with self._cond:
            if self._writer_ident == me:
                self._writer_depth += 1
                waited = 0.0 if self.observer is not None else None
            else:
                if self._read_depth() > 0:
                    raise RuntimeError(
                        "cannot upgrade a read lock to a write lock "
                        "(two upgraders deadlock); release the read side "
                        "first")
                self._waiting_writers += 1
                try:
                    while self._active_readers > 0 \
                            or self._writer_ident is not None:
                        if not self._wait(deadline):
                            return False
                    self._writer_ident = me
                    self._writer_depth = 1
                finally:
                    self._waiting_writers -= 1
                    if self._writer_ident != me:
                        # Giving up (timeout or an exception) after
                        # having queued readers behind our writer
                        # preference: wake them, or a timed-out lone
                        # writer strands every queued reader until some
                        # unrelated notify happens.
                        self._cond.notify_all()
                if self.observer is not None:
                    waited = time.perf_counter() - started
        if waited is not None:
            self.observer("write", waited)
        return True

    def release_write(self) -> None:
        """Leave the innermost write section."""
        with self._cond:
            if self._writer_ident != threading.get_ident():
                raise RuntimeError("release_write by a non-owner thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer_ident = None
                self._cond.notify_all()

    # -- context managers --------------------------------------------------------

    @contextmanager
    def read_locked(self):
        """``with lock.read_locked(): ...`` — a shared read section."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked(): ...`` — the exclusive section."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # -- introspection (tests / monitoring) ---------------------------------------

    @property
    def active_readers(self) -> int:
        """Number of threads currently in a read section."""
        with self._cond:
            return self._active_readers

    @property
    def waiting_writers(self) -> int:
        """Number of threads blocked waiting for the write side."""
        with self._cond:
            return self._waiting_writers

    @property
    def write_held(self) -> bool:
        """Whether any thread currently holds the write side."""
        with self._cond:
            return self._writer_ident is not None

    def holders(self) -> dict:
        """One consistent snapshot of who holds/awaits the lock — the
        lock-contention panel of ``Database.observability_report()``."""
        with self._cond:
            return {
                "active_readers": self._active_readers,
                "waiting_writers": self._waiting_writers,
                "writer_held": self._writer_ident is not None,
            }

    def held_by_me(self) -> str:
        """``"write"``, ``"read"``, or ``""`` for the calling thread."""
        if self._writer_ident == threading.get_ident():
            return "write"
        if self._read_depth() > 0:
            return "read"
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RWLock readers={self._active_readers} "
                f"waiting_writers={self._waiting_writers} "
                f"writer={'held' if self._writer_ident else 'free'}>")

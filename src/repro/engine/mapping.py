"""Model-tree ↔ storage pre-order alignment.

The storage layer numbers nodes in the order the event stream delivers
them: document, then per element — the element, its attributes, then its
content with *adjacent text runs merged into one node*.  The model tree
does not include attributes in its own pre-order and may (rarely) hold
adjacent text siblings, so this module provides the explicit mapping both
the engine (residual checks, result materialisation) and the differential
tests rely on.
"""

from __future__ import annotations

from repro.xml import model

__all__ = ["storage_preorder_map", "storage_node_list"]


def storage_preorder_map(document: model.Document) -> dict[int, int]:
    """``model node_id -> storage pre-order id``.

    Adjacent model text siblings map to the same (merged) storage node.
    """
    mapping: dict[int, int] = {}
    for preorder, nodes in enumerate(_storage_groups(document)):
        for node in nodes:
            mapping[node.node_id] = preorder
    return mapping


def storage_node_list(document: model.Document) -> list[model.Node]:
    """``storage pre-order id -> model node`` (first of a merged text
    run)."""
    return [nodes[0] for nodes in _storage_groups(document)]


def _storage_groups(document: model.Document):
    """Model nodes grouped per storage node, in storage pre-order."""
    yield [document]
    for child in document.children():
        yield from _walk(child)


def _walk(node: model.Node):
    if isinstance(node, model.Element):
        yield [node]
        for attribute in node.attributes():
            yield [attribute]
        text_run: list[model.Node] = []
        for child in node.children():
            if isinstance(child, model.Text):
                text_run.append(child)
                continue
            if text_run:
                yield text_run
                text_run = []
            yield from _walk(child)
        if text_run:
            yield text_run
    else:
        yield [node]

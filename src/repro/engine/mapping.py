"""Model-tree ↔ storage pre-order alignment.

The storage layer numbers nodes in the order the event stream delivers
them: document, then per element — the element, its attributes, then its
content with *adjacent text runs merged into one node*.  The model tree
does not include attributes in its own pre-order and may (rarely) hold
adjacent text siblings, so this module provides the explicit mapping both
the engine (residual checks, result materialisation) and the differential
tests rely on.
"""

from __future__ import annotations

from repro.xml import model

__all__ = ["storage_preorder_map", "storage_node_list",
           "apply_insert_mapping", "apply_delete_mapping"]


def storage_preorder_map(document: model.Document) -> dict[int, int]:
    """``model node_id -> storage pre-order id``.

    Adjacent model text siblings map to the same (merged) storage node.
    """
    mapping: dict[int, int] = {}
    for preorder, nodes in enumerate(_storage_groups(document)):
        for node in nodes:
            mapping[node.node_id] = preorder
    return mapping


def storage_node_list(document: model.Document) -> list[model.Node]:
    """``storage pre-order id -> model node`` (first of a merged text
    run)."""
    return [nodes[0] for nodes in _storage_groups(document)]


def apply_insert_mapping(node_list: list, preorder_map: dict,
                         subtree: model.Element, insert_pre: int,
                         count: int) -> None:
    """Apply a subtree insertion to the mapping structures in place.

    The inserted ``subtree`` (already attached to the model tree) is
    walked with the same grouping rules as a full rebuild; its groups
    splice into ``node_list`` at ``insert_pre`` and every existing map
    entry at or after the splice point shifts by ``count``.  The shift is
    one light pass over the map — no tree walk, no re-shredding.
    """
    groups = list(_walk(subtree))
    if len(groups) != count:
        raise ValueError(
            f"model subtree yields {len(groups)} storage nodes, "
            f"stores spliced {count}")
    for node_id in list(preorder_map):
        if preorder_map[node_id] >= insert_pre:
            preorder_map[node_id] += count
    for offset, nodes in enumerate(groups):
        for node in nodes:
            preorder_map[node.node_id] = insert_pre + offset
    node_list[insert_pre:insert_pre] = [nodes[0] for nodes in groups]


def apply_delete_mapping(node_list: list, preorder_map: dict,
                         delete_pre: int, count: int) -> None:
    """Apply a subtree deletion to the mapping structures in place:
    drop entries inside ``[delete_pre, delete_pre + count)`` and shift
    the survivors after the gap down by ``count``."""
    del node_list[delete_pre:delete_pre + count]
    doomed = []
    limit = delete_pre + count
    for node_id, preorder in preorder_map.items():
        if preorder >= limit:
            preorder_map[node_id] = preorder - count
        elif preorder >= delete_pre:
            doomed.append(node_id)
    for node_id in doomed:
        del preorder_map[node_id]


def _storage_groups(document: model.Document):
    """Model nodes grouped per storage node, in storage pre-order."""
    yield [document]
    for child in document.children():
        yield from _walk(child)


def _walk(node: model.Node):
    if isinstance(node, model.Element):
        yield [node]
        for attribute in node.attributes():
            yield [attribute]
        text_run: list[model.Node] = []
        for child in node.children():
            if isinstance(child, model.Text):
                text_run.append(child)
                continue
            if text_run:
                yield text_run
                text_run = []
            yield from _walk(child)
        if text_run:
            yield text_run
    else:
        yield [node]

"""The Database facade — the library's main entry point.

Typical use::

    from repro import Database

    db = Database()
    db.load(xml_text, uri="bib.xml")
    result = db.query("/bib/book[price > 50]/title")
    for node in result.items:
        print(node.string_value())
    print(result.strategy, result.stats, result.io)

A loaded document materialises the full storage stack: the model tree
(reference semantics, residual checks), the succinct store (NoK), the
interval store + tag index (join strategies), the content B+ tree
(index-scan), one-pass statistics (cost model), all charging I/O to the
database's page manager.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ExecutionError
from repro.xml import model
from repro.xml.parser import parse
from repro.xml.serializer import serialize
from repro.xpath.semantics import Context, sequence_boolean
from repro.storage.btree import BPlusTree
from repro.storage.interval import IntervalDocument
from repro.storage.pages import PageManager
from repro.storage.stats import DocumentStatistics
from repro.storage.succinct import SuccinctDocument
from repro.storage.tagindex import TagIndex
from repro.algebra.backward import backward_translate
from repro.algebra.cost import CostModel
from repro.algebra.plan import explain_plan
from repro.algebra.rewrite import rewrite_plan
from repro.engine.executor import PhysicalExecutionContext, run_plan
from repro.engine.mapping import storage_node_list, storage_preorder_map
from repro.physical.base import MatchRuntime
from repro.physical.planner import STRATEGIES, PhysicalPlanner
from repro.xquery.parser import parse_xquery

__all__ = ["Database", "QueryResult", "LoadedDocument"]


@dataclass
class LoadedDocument:
    """Everything the engine keeps per document."""

    uri: str
    tree: model.Document
    succinct: SuccinctDocument
    interval: IntervalDocument
    tag_index: TagIndex
    statistics: DocumentStatistics
    value_index: BPlusTree
    numeric_index: BPlusTree
    runtime: MatchRuntime
    node_list: list            # storage pre-order id -> model node
    preorder_map: dict         # model node_id -> storage pre-order id

    def node_for(self, preorder: int) -> model.Node:
        """The model node behind a storage pre-order id."""
        return self.node_list[preorder]


@dataclass
class QueryResult:
    """A query's result sequence plus its execution report."""

    items: list
    strategy: Optional[str] = None
    elapsed_seconds: float = 0.0
    stats: dict = field(default_factory=dict)
    io: dict = field(default_factory=dict)

    def values(self) -> list:
        """String values of nodes / raw atomics — handy in examples."""
        return [item.string_value() if isinstance(item, model.Node)
                else item for item in self.items]

    def serialize(self, indent: Optional[str] = None) -> str:
        """The result sequence as XML text."""
        parts = []
        for item in self.items:
            if isinstance(item, model.Node):
                parts.append(serialize(item, indent=indent))
            else:
                parts.append(str(item))
        return "\n".join(parts)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)


class Database:
    """An in-memory XML database with pluggable execution strategies."""

    def __init__(self, page_size: int = 4096, pool_pages: int = 256):
        self.pages = PageManager(page_size=page_size, pool_pages=pool_pages)
        self.documents: dict[str, LoadedDocument] = {}
        self._default_uri: Optional[str] = None

    # -- loading ---------------------------------------------------------------

    def load(self, text: str, uri: str = "doc.xml",
             keep_whitespace: bool = False) -> LoadedDocument:
        """Parse and load XML text under ``uri``."""
        return self.load_tree(parse(text, keep_whitespace=keep_whitespace,
                                    uri=uri), uri=uri)

    def load_file(self, path, uri: Optional[str] = None) -> LoadedDocument:
        """Load an XML file (``uri`` defaults to the path)."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.load(handle.read(), uri=uri or str(path))

    def load_tree(self, tree: model.Document,
                  uri: str = "doc.xml") -> LoadedDocument:
        """Load an already-built model tree."""
        succinct = SuccinctDocument.from_document(tree)
        interval = IntervalDocument.from_document(tree)
        tag_index = TagIndex(interval, pages=self.pages)
        statistics = DocumentStatistics(interval)
        value_segment = self.pages.segment(f"value-btree:{uri}")
        value_index = BPlusTree.bulk_load(succinct.content.sorted_entries(),
                                          segment=value_segment)
        # A second, typed index for numeric range predicates: string
        # order is wrong for numbers ("9" > "10"), so values that parse
        # as numbers are indexed by their float key too.
        numeric_pairs = []
        for _, value, owner in succinct.content:
            try:
                numeric_pairs.append((float(value), owner))
            except ValueError:
                continue
        numeric_pairs.sort(key=lambda pair: pair[0])
        numeric_index = BPlusTree.bulk_load(
            numeric_pairs,
            segment=self.pages.segment(f"numeric-btree:{uri}"))
        node_list = storage_node_list(tree)
        preorder_map = storage_preorder_map(tree)
        document = LoadedDocument(
            uri=uri, tree=tree, succinct=succinct, interval=interval,
            tag_index=tag_index, statistics=statistics,
            value_index=value_index, numeric_index=numeric_index,
            runtime=None,  # type: ignore[arg-type]
            node_list=node_list, preorder_map=preorder_map)
        document.runtime = MatchRuntime(
            succinct, interval, tag_index, pages=self.pages,
            residual_check=self._residual_checker(document),
            value_index=value_index, numeric_index=numeric_index,
            statistics=statistics)
        self.documents[uri] = document
        if self._default_uri is None:
            self._default_uri = uri
        return document

    def _residual_checker(self, document: LoadedDocument):
        from repro.xpath.semantics import XPathEvaluator

        evaluator = XPathEvaluator()

        def check(vertex, preorder: int) -> bool:
            node = document.node_for(preorder)
            for expr in vertex.residual:
                value = evaluator.evaluate(expr, Context(node))
                if not sequence_boolean(value):
                    return False
            return True

        return check

    def document(self, uri: Optional[str] = None) -> LoadedDocument:
        """The loaded document for ``uri`` (default: first loaded)."""
        target = uri or self._default_uri
        if target is None or target not in self.documents:
            raise ExecutionError(f"document {target!r} is not loaded")
        return self.documents[target]

    # -- querying ---------------------------------------------------------------

    def query(self, text: str, strategy: str = "auto",
              uri: Optional[str] = None,
              variables: Optional[dict] = None) -> QueryResult:
        """Run an XPath/XQuery expression.

        ``strategy`` selects the physical pattern-matching strategy (one
        of ``repro.physical.planner.STRATEGIES``); ``auto`` uses the cost
        model.  ``uri`` picks the context document for absolute paths.
        ``variables`` provides external bindings, e.g.
        ``db.query("//book[title = $t]", variables={"t": ["TCP/IP"]})``.
        """
        if strategy not in STRATEGIES:
            raise ExecutionError(
                f"unknown strategy {strategy!r}; pick one of {STRATEGIES}")
        expr = parse_xquery(text)
        # Backward (output-to-input) analysis prunes dead let-bindings
        # from comprehensions before the forward translation (Section 6).
        plan = rewrite_plan(backward_translate(expr))
        context = self._execution_context(uri, strategy,
                                          variables=variables)
        self.pages.counters.reset()
        started = time.perf_counter()
        items = run_plan(plan, context)
        elapsed = time.perf_counter() - started
        return QueryResult(
            items=items,
            strategy=context.last_strategy,
            elapsed_seconds=elapsed,
            stats=context.accumulated_stats.snapshot(),
            io=self.pages.counters.snapshot(),
        )

    def xpath(self, text: str, strategy: str = "auto",
              uri: Optional[str] = None) -> QueryResult:
        """Alias of :meth:`query` (the XPath fragment is a subset)."""
        return self.query(text, strategy=strategy, uri=uri)

    def reference_query(self, text: str,
                        uri: Optional[str] = None) -> list:
        """Evaluate with the reference interpreter only (ground truth)."""
        from repro.xquery.interpreter import evaluate_xquery

        trees = {loaded_uri: doc.tree
                 for loaded_uri, doc in self.documents.items()}
        context_node = None
        if uri is not None:
            context_node = self.document(uri).tree
        elif self._default_uri is not None:
            context_node = self.document().tree
        return evaluate_xquery(text, documents=trees,
                               context_node=context_node)

    def explain(self, text: str, strategy: str = "auto",
                uri: Optional[str] = None) -> str:
        """The logical plan, the chosen physical strategy per τ, and the
        cost estimates."""
        expr = parse_xquery(text)
        plan = rewrite_plan(backward_translate(expr))
        lines = [explain_plan(plan)]
        document = self.document(uri)
        cost_model = CostModel(document.statistics)
        planner = PhysicalPlanner(cost_model)
        from repro.algebra.plan import PlanNode, Tau

        def walk(node: PlanNode) -> None:
            if isinstance(node, Tau):
                chosen = (strategy if strategy != "auto"
                          else planner.choose(node.pattern))
                estimate = cost_model.result_cardinality(node.pattern)
                lines.append("")
                lines.append(f"tau strategy: {chosen} "
                             f"(est. {estimate:.1f} matches)")
                lines.append(node.pattern.describe())
                if chosen == "partitioned":
                    from repro.physical.partition import partition_pattern
                    partitions = partition_pattern(node.pattern)
                    cuts = ", ".join(p.cut_edge.relation
                                     for p in partitions[1:])
                    lines.append(
                        f"partitions: {len(partitions)} NoK units over "
                        f"one shared scan; joins on cut edges [{cuts}]")
            for child in node.inputs:
                walk(child)

        walk(plan)
        return "\n".join(lines)

    # -- helpers ------------------------------------------------------------------

    def _execution_context(self, uri: Optional[str], strategy: str,
                           variables: Optional[dict] = None
                           ) -> PhysicalExecutionContext:
        document = self.document(uri)
        trees = {loaded_uri: doc.tree
                 for loaded_uri, doc in self.documents.items()}
        return PhysicalExecutionContext(
            database=self, documents=trees,
            context_node=document.tree, strategy=strategy,
            variables=variables)

    # -- updates -------------------------------------------------------------------

    def insert(self, parent_path: str, fragment: str,
               position: Optional[int] = None,
               uri: Optional[str] = None) -> dict:
        """Insert an XML ``fragment`` as a child of the (single) element
        ``parent_path`` selects, keeping every storage structure aligned.

        The succinct and interval stores are spliced in place (their
        update metrics are returned); the derived structures (tag index,
        statistics, value indexes, pre-order maps) are rebuilt — they are
        indexes over the stores, not primary data.
        """
        document = self.document(uri)
        targets = self.query(parent_path, uri=uri).items
        if len(targets) != 1 or not isinstance(targets[0], model.Element):
            raise ExecutionError(
                f"insert target {parent_path!r} must select exactly one "
                f"element (got {len(targets)} items)")
        parent = targets[0]
        fragment_tree = parse(f"<wrap>{fragment}</wrap>")
        children = list(fragment_tree.root.children())
        if len(children) != 1 or not isinstance(children[0], model.Element):
            raise ExecutionError(
                "fragment must contain exactly one element")
        subtree = fragment_tree.root.remove(children[0])

        element_children = [c for c in parent.children()]
        if position is None:
            position = len(element_children)
        if position < 0 or position > len(element_children):
            raise ExecutionError(f"child position {position} out of range")

        # Primary stores: local splices, with the paper's cost metrics.
        parent_pre = document.preorder_map[parent.node_id]
        succinct_metrics = document.succinct.insert_subtree(
            parent_pre, position, subtree)
        interval_metrics = document.interval.insert_subtree(
            parent_pre, position, subtree)
        # The model tree mirrors the change (it owns reference semantics).
        parent.insert(position if position < len(element_children)
                      else len(element_children), subtree)

        self._rebuild_derived(document)
        return {"succinct": succinct_metrics, "interval": interval_metrics}

    def delete(self, path: str, uri: Optional[str] = None) -> dict:
        """Delete the (single) element ``path`` selects, keeping every
        storage structure aligned.  Returns the stores' update metrics.
        """
        document = self.document(uri)
        targets = self.query(path, uri=uri).items
        if len(targets) != 1 or not isinstance(targets[0], model.Element):
            raise ExecutionError(
                f"delete target {path!r} must select exactly one element "
                f"(got {len(targets)} items)")
        victim = targets[0]
        if victim.parent is None:
            raise ExecutionError("cannot delete the document element's "
                                 "parent")
        preorder = document.preorder_map[victim.node_id]
        succinct_metrics = document.succinct.delete_subtree(preorder)
        interval_metrics = document.interval.delete_subtree(preorder)
        victim.parent.remove(victim)
        self._rebuild_derived(document)
        return {"succinct": succinct_metrics, "interval": interval_metrics}

    def _rebuild_derived(self, document: LoadedDocument) -> None:
        """Refresh the structures derived from the primary stores."""
        document.tag_index = TagIndex(document.interval, pages=self.pages)
        document.statistics = DocumentStatistics(document.interval)
        document.value_index = BPlusTree.bulk_load(
            document.succinct.content.sorted_entries(),
            segment=self.pages.segment(f"value-btree:{document.uri}"))
        numeric_pairs = []
        for _, value, owner in document.succinct.content:
            try:
                numeric_pairs.append((float(value), owner))
            except ValueError:
                continue
        numeric_pairs.sort(key=lambda pair: pair[0])
        document.numeric_index = BPlusTree.bulk_load(
            numeric_pairs,
            segment=self.pages.segment(f"numeric-btree:{document.uri}"))
        document.node_list = storage_node_list(document.tree)
        document.preorder_map = storage_preorder_map(document.tree)
        document.runtime = MatchRuntime(
            document.succinct, document.interval, document.tag_index,
            pages=self.pages,
            residual_check=self._residual_checker(document),
            value_index=document.value_index,
            numeric_index=document.numeric_index,
            statistics=document.statistics)

    def loaded_for_tree(self, tree: model.Document
                        ) -> Optional[LoadedDocument]:
        """The LoadedDocument wrapping ``tree`` (identity match)."""
        for document in self.documents.values():
            if document.tree is tree:
                return document
        return None

    def storage_report(self, uri: Optional[str] = None) -> dict:
        """Byte accounting of every storage structure (experiment E1)."""
        document = self.document(uri)
        succinct_sizes = document.succinct.size_bytes()
        interval_sizes = document.interval.size_bytes()
        return {
            "nodes": document.succinct.node_count,
            "succinct": succinct_sizes,
            "interval": interval_sizes,
            "tag_index_bytes": document.tag_index.size_bytes(),
            "value_index_bytes": document.value_index.size_bytes(),
        }
